"""E1 — colouring completion time grows like log n (Lemmas 4.4 / 6.2).

Regenerates the rounds-to-completion series for the basic static colouring and
for DColor under 1% edge churn, and reports the ratio to log₂ n (paper claim:
bounded as n grows).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e01.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e01_coloring_convergence(benchmark):
    rows = regenerate_from_config(benchmark, "e01")
    # Shape check: the measured rounds stay within a constant multiple of log2(n).
    assert all(row["rounds_over_log2n"] <= 4.0 for row in rows)
