"""E1 — colouring completion time grows like log n (Lemmas 4.4 / 6.2).

Regenerates the rounds-to-completion series for the basic static colouring and
for DColor under 1% edge churn, for n = 32 … 512, and reports the ratio to
log₂ n (paper claim: bounded as n grows).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e01_coloring_convergence
from bench_utils import regenerate


def test_e01_coloring_convergence(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e01_coloring_convergence,
        "E1: colouring rounds-to-completion vs n (claim: O(log n))",
        sizes=(32, 64, 128, 256, 512),
        seeds=bench_seeds,
        flip_prob=0.01,
    )
    # Shape check: the measured rounds stay within a constant multiple of log2(n).
    assert all(row["rounds_over_log2n"] <= 4.0 for row in rows)
