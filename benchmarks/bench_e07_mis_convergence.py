"""E7 — DMis completion time and DynamicMIS validity (Lemma 5.4 / Corollary 1.3).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e07.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e07_mis_convergence(benchmark):
    rows = regenerate_from_config(benchmark, "e07")
    assert all(row["rounds_over_log2n"] <= 4.0 for row in rows)
    assert all(row["valid_fraction_mean"] >= 0.9 for row in rows)
