"""E7 — DMis completion time and DynamicMIS sliding-window validity (Lemma 5.4, Corollary 1.3).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e07_mis_convergence
from bench_utils import regenerate


def test_e07_mis_convergence(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e07_mis_convergence,
        "E7: DMis rounds-to-completion vs n and DynamicMIS validity (claim: O(log n), valid w.h.p.)",
        sizes=(32, 64, 128, 256),
        seeds=bench_seeds,
        flip_prob=0.01,
        validity_rounds_factor=3,
    )
    assert all(row["rounds_over_log2n"] <= 4.0 for row in rows)
    assert all(row["valid_fraction_mean"] >= 0.9 for row in rows)
