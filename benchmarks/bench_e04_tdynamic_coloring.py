"""E4 — sliding-window validity of the combined colouring, per churn rate (Theorem 1.1(1)).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e04.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e04_tdynamic_coloring(benchmark):
    rows = regenerate_from_config(benchmark, "e04")
    assert all(row["valid_fraction_mean"] >= 0.99 for row in rows)
