"""E4 — T-dynamic validity of the combined colouring across churn rates (Theorem 1.1(1) + Cor. 1.2).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e04_tdynamic_coloring
from bench_utils import regenerate


def test_e04_tdynamic_coloring(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e04_tdynamic_coloring,
        "E4: T-dynamic colouring validity vs churn rate (claim: valid every round)",
        n=128,
        flip_probs=(0.001, 0.01, 0.05, 0.1),
        seeds=bench_seeds,
    )
    assert all(row["valid_fraction_mean"] >= 0.99 for row in rows)
