"""Engine throughput: snapshot path vs delta path, rounds per second.

Measures the raw round engine (adversary step → topology materialisation →
compose/deliver → trace record) with a no-op algorithm so the numbers isolate
engine cost, not algorithm cost.  Each workload runs twice on identical
seeds — once with adversaries forced onto the legacy snapshot path
(``emit_deltas=False``, per-round snapshot storage) and once on the delta path
(the default) — and the two traces are verified to be byte-identical before
any timing is reported.

Workload grid: small/medium/large ``n`` × sparse/dense churn on an expected-
degree-8 Gnp base graph.  "Sparse" churns ~1 % of the base edges per round
(the paper's "frequent but local changes" regime), "dense" ~20 %.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --json out.json

The full grid writes ``benchmarks/results/BENCH_engine.json`` by default; the
committed baseline tracks the trajectory across PRs.  ``--smoke`` runs tiny
sizes and *asserts* the engine invariants (identical rows, delta ≥ snapshot
throughput) so CI fails on an engine regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.dynamics import generators
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.churn import MarkovEdgeChurn
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.simulator import Simulator

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_engine.json"

#: (label, n, rounds) for the full grid; smoke mode uses its own tiny grid.
SIZES = (("small", 200, 400), ("medium", 800, 200), ("large", 2000, 120))
SMOKE_SIZES = (("small", 64, 120), ("medium", 128, 80))

#: (label, per-round flip probability of each base edge).
CHURN_RATES = (("sparse", 0.01), ("dense", 0.2))


class NullAlgorithm(DistributedAlgorithm):
    """No-op algorithm: isolates engine cost from algorithm cost."""

    name = "null"

    def on_wake(self, v):
        pass

    def compose(self, v):
        return None

    def deliver(self, v, inbox):
        pass

    def output(self, v):
        return 0


def _run(n: int, churn_prob: float, rounds: int, seed: int, emit_deltas: bool):
    """One timed run; returns (rounds/sec, trace, base edge count)."""
    base = generators.gnp(n, min(1.0, 8.0 / max(n - 1, 1)), np.random.default_rng(seed))
    adversary = ChurnAdversary(
        n,
        MarkovEdgeChurn(base, p_off=churn_prob, p_on=churn_prob),
        np.random.default_rng(seed + 1),
        emit_deltas=emit_deltas,
    )
    sim = Simulator(n=n, algorithm=NullAlgorithm(), adversary=adversary, seed=seed)
    start = time.perf_counter()
    sim.run(rounds)
    elapsed = time.perf_counter() - start
    return rounds / elapsed, sim.trace, base.num_edges


def _trace_rows(trace) -> List[tuple]:
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in trace
    ]


def run_grid(
    sizes, *, seed: int = 1, verify: bool = True, repeats: int = 1
) -> List[Dict[str, float]]:
    """Run the workload grid; returns one result row per (size, churn) cell.

    ``repeats > 1`` re-times each path and keeps the best rounds/sec — the
    smoke gate uses this to absorb scheduler noise on tiny CI workloads.
    """
    rows: List[Dict[str, float]] = []
    for size_label, n, rounds in sizes:
        for churn_label, churn_prob in CHURN_RATES:
            snapshot_rps, snapshot_trace, m = _run(n, churn_prob, rounds, seed, False)
            delta_rps, delta_trace, _ = _run(n, churn_prob, rounds, seed, True)
            if verify and _trace_rows(snapshot_trace) != _trace_rows(delta_trace):
                raise AssertionError(
                    f"delta and snapshot traces differ for n={n}, churn={churn_label}"
                )
            for _ in range(repeats - 1):
                snapshot_rps = max(snapshot_rps, _run(n, churn_prob, rounds, seed, False)[0])
                delta_rps = max(delta_rps, _run(n, churn_prob, rounds, seed, True)[0])
            churn_per_round = delta_trace.graph.churn_per_round()
            rows.append(
                {
                    "workload": f"{size_label}-{churn_label}",
                    "n": n,
                    "base_edges": m,
                    "rounds": rounds,
                    "mean_churn_per_round": round(
                        float(np.mean(churn_per_round[1:])) if len(churn_per_round) > 1 else 0.0, 2
                    ),
                    "snapshot_rps": round(snapshot_rps, 1),
                    "delta_rps": round(delta_rps, 1),
                    "speedup": round(delta_rps / snapshot_rps, 2),
                }
            )
            print(
                f"{rows[-1]['workload']:<16} n={n:<5} m={m:<6} "
                f"churn/round={rows[-1]['mean_churn_per_round']:<8} "
                f"snapshot={snapshot_rps:8.1f} r/s  delta={delta_rps:8.1f} r/s  "
                f"speedup={rows[-1]['speedup']:.2f}x"
            )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes; assert identical rows and delta >= snapshot throughput",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path for the result JSON (default: {RESULTS_PATH} in full mode)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    rows = run_grid(sizes, repeats=3 if args.smoke else 1)

    if args.smoke:
        # The CI gate: identical rows were already asserted inside run_grid;
        # the delta path must additionally never be slower than the snapshot
        # path.  Best-of-3 timing plus a small tolerance absorbs scheduler
        # noise on these deliberately tiny workloads.
        slow = [row for row in rows if row["speedup"] < 0.9]
        if slow:
            print(f"FAIL: delta path slower than snapshot path on {slow}")
            return 1
        print(f"smoke ok: {len(rows)} workloads, identical rows, delta path >= snapshot path")
        return 0

    payload = {
        "benchmark": "engine-throughput",
        "unit": "rounds/sec",
        "algorithm": "null (engine cost only)",
        "rows": rows,
    }
    out_path = args.json or RESULTS_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    large_sparse = [row for row in rows if row["workload"] == "large-sparse"]
    if large_sparse and large_sparse[0]["speedup"] < 2.0:
        print(f"FAIL: large-sparse speedup {large_sparse[0]['speedup']} < 2.0x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
