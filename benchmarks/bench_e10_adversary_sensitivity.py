"""E10 — adversary sensitivity (2-oblivious vs adaptive; remarks after Lemma 5.2 / §4.3).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e10_adversary_sensitivity
from bench_utils import regenerate


def test_e10_adversary_sensitivity(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e10_adversary_sensitivity,
        "E10: DMis under oblivious churn vs adaptive attackers (paper analyses assume 2-oblivious)",
        n=128,
        seeds=bench_seeds,
        attacks_per_round=4,
    )
    assert len(rows) == 3
    # Under the oblivious adversary every run completes within the horizon.
    oblivious = next(row for row in rows if "oblivious" in row["setting"])
    assert oblivious["completed_mean"] == 1.0
