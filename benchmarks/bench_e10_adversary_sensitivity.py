"""E10 — DMis under oblivious churn vs adaptive attackers (the analyses assume 2-oblivious).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e10.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e10_adversary_sensitivity(benchmark):
    rows = regenerate_from_config(benchmark, "e10")
    assert len(rows) == 3
    # Under the oblivious adversary every run completes within the horizon.
    oblivious = next(row for row in rows if "oblivious" in row["setting"])
    assert oblivious["completed_mean"] == 1.0
