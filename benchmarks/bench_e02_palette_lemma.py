"""E2 — colour-or-shrink (Lemma 4.3 / 6.1).

Regenerates the per-round statistics: conditioned on a node's palette *not*
shrinking by ≥ 1/4, the node must be coloured with probability ≥ 1/64.

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e02_palette_lemma
from bench_utils import regenerate


def test_e02_palette_lemma(benchmark):
    rows = regenerate(
        benchmark,
        experiment_e02_palette_lemma,
        "E2: colour-or-shrink rate (paper lower bound 1/64)",
        n=192,
        seeds=(0, 1, 2, 3),
        rounds=40,
    )
    assert all(row["satisfies_bound"] == 1.0 for row in rows)
