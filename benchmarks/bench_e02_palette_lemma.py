"""E2 — the colour-or-shrink lemma (Lemmas 4.3 / 6.1).

Regenerates the per-round statistics: conditioned on a node's palette *not*
shrinking by ≥ 1/4, the node must be coloured with probability ≥ 1/64.

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e02.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e02_palette_lemma(benchmark):
    rows = regenerate_from_config(benchmark, "e02")
    assert all(row["satisfies_bound"] == 1.0 for row in rows)
