"""Shared helpers for the benchmark modules.

Every benchmark regenerates one E1–E13 experiment from its *committed config*
(``configs/experiments/<id>.json``) — the same file ``repro experiments`` and
the CI drift gate execute — using the config's benchmark-scale parameter set
and title.  The seed replications and sweep points inside an experiment are
independent work units, so they run on the parallel batch executor by default
— set ``REPRO_BENCH_SERIAL=1`` to force the (row-identical) serial path.

The execution backend is selectable without touching the benchmark modules:
``REPRO_BENCH_BACKEND`` (``process`` default / ``thread`` /
``local-cluster``), ``REPRO_BENCH_CHUNK_SIZE`` and ``REPRO_BENCH_WORKERS``
map onto an :class:`repro.exec.ExecutionPolicy` installed for the duration of
the run — every backend produces byte-identical rows, so the regenerated
tables are the same whichever transport computed them.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List

from repro.analysis.experiments.catalog import run_experiment
from repro.analysis.report import format_table
from repro.exec import ExecutionPolicy, use_policy
from repro.scenarios.configs import ExperimentConfig, load_config

__all__ = ["CONFIGS_DIR", "RESULTS_DIR", "regenerate_from_config"]

#: The committed experiment configs the benchmarks are driven by.
CONFIGS_DIR = pathlib.Path(__file__).resolve().parent.parent / "configs" / "experiments"

#: Directory in which every benchmark appends the table it regenerated, so the
#: experiment tables survive pytest's output capturing (see EXPERIMENTS.md).
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def regenerate_from_config(
    benchmark, experiment_id: str, *, scale: str = "bench"
) -> List[Dict[str, float]]:
    """Run one committed experiment config under pytest-benchmark.

    The experiment is executed exactly once (``pedantic(rounds=1)``): the
    quantity of interest is the regenerated table, not the harness's wall
    time, and a single execution keeps the whole benchmark suite laptop-sized.
    The table is printed (visible with ``-s``) and appended to
    ``benchmarks/results/tables.txt``.
    """
    config = load_config(CONFIGS_DIR / f"{experiment_id}.json")
    assert isinstance(config, ExperimentConfig)
    params = config.params_for(scale)
    parallel = os.environ.get("REPRO_BENCH_SERIAL") != "1"
    chunk_size = os.environ.get("REPRO_BENCH_CHUNK_SIZE")
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    policy = ExecutionPolicy(
        backend=os.environ.get("REPRO_BENCH_BACKEND", "process" if parallel else "serial"),
        chunk_size=int(chunk_size) if chunk_size else None,
        max_workers=int(workers) if workers else None,
    )

    def _regenerate() -> List[Dict[str, float]]:
        with use_policy(policy):
            return run_experiment(experiment_id, params, parallel=parallel)

    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    table = format_table(rows, title=config.title, columns=config.columns)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "tables.txt", "a", encoding="utf-8") as handle:
        handle.write(table + "\n")
    benchmark.extra_info["experiment"] = config.title
    benchmark.extra_info["config"] = str(config.path)
    benchmark.extra_info["rows"] = json.loads(json.dumps(rows, default=str))
    return rows
