"""Shared helpers for the benchmark modules.

Every benchmark regenerates one experiment through the declarative scenario
API (:mod:`repro.scenarios`).  The seed replications and sweep points inside
an experiment are independent work units, so :func:`regenerate` runs them on
the parallel batch executor by default — set ``REPRO_BENCH_SERIAL=1`` to
force the (row-identical) serial path.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable, Dict, List, Sequence

from repro.analysis.report import format_table

__all__ = ["regenerate", "RESULTS_DIR"]

#: Directory in which every benchmark appends the table it regenerated, so the
#: experiment tables survive pytest's output capturing (see EXPERIMENTS.md).
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def regenerate(
    benchmark,
    experiment: Callable[..., List[Dict[str, float]]],
    title: str,
    *,
    columns: Sequence[str] | None = None,
    **kwargs,
) -> List[Dict[str, float]]:
    """Run ``experiment(**kwargs)`` under pytest-benchmark and print its table.

    The experiment is executed exactly once (``pedantic(rounds=1)``): the
    quantity of interest is the regenerated table, not the harness's wall
    time, and a single execution keeps the whole benchmark suite laptop-sized.
    The table is printed (visible with ``-s``) and appended to
    ``benchmarks/results/tables.txt``.

    Seed replications fan out across cores through the scenario batch
    executor unless ``REPRO_BENCH_SERIAL=1`` (both paths produce identical
    rows; the parallel one is just faster).
    """
    kwargs.setdefault("parallel", os.environ.get("REPRO_BENCH_SERIAL") != "1")
    rows = benchmark.pedantic(lambda: experiment(**kwargs), rounds=1, iterations=1)
    table = format_table(rows, title=title, columns=columns)
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "tables.txt", "a", encoding="utf-8") as handle:
        handle.write(table + "\n")
    benchmark.extra_info["experiment"] = title
    benchmark.extra_info["rows"] = json.loads(json.dumps(rows, default=str))
    return rows
