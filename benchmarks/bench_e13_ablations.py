"""E13 — what breaks when one design choice is removed.

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e13.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e13_ablations(benchmark):
    rows = regenerate_from_config(benchmark, "e13")
    by_variant = {row["variant"]: row for row in rows}
    # (a) Lemma 4.2's palette invariant never fails for the paper's DColor.
    assert by_variant["dcolor"]["palette_invariant_violation_fraction_mean"] == 0.0
    # (b) Removing the un-decide rules destroys the per-round partial-solution property.
    b1 = {
        variant: row["b1_violation_fraction_mean"]
        for variant, row in by_variant.items()
        if "b1_violation_fraction_mean" in row
    }
    assert b1["scolor"] < b1["scolor-no-uncolor"]
    assert b1["smis"] < b1["smis-no-undecide"]
    # (c) Removing the SAlg backbone destroys stability on a static graph.
    assert by_variant["dynamic-coloring"]["mean_changes_mean"] < 1.0
    assert by_variant["coloring-no-backbone"]["mean_changes_mean"] > 10.0
