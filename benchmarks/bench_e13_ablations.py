"""E13 — ablations of the paper's design choices (intersection graph, un-decide rules, backbone).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e13_ablations
from bench_utils import regenerate


def test_e13_ablations(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e13_ablations,
        "E13: what breaks when one design choice is removed",
        n=96,
        seeds=bench_seeds,
        rounds_factor=4,
    )
    by_variant = {row["variant"]: row for row in rows}
    # (a) Lemma 4.2's palette invariant never fails for the paper's DColor.
    assert by_variant["dcolor"]["palette_invariant_violation_fraction_mean"] == 0.0
    # (b) Removing the un-decide rules destroys the per-round partial-solution property.
    assert by_variant["scolor"]["b1_violation_fraction_mean"] < by_variant["scolor-no-uncolor"]["b1_violation_fraction_mean"]
    assert by_variant["smis"]["b1_violation_fraction_mean"] < by_variant["smis-no-undecide"]["b1_violation_fraction_mean"]
    # (c) Removing the SAlg backbone destroys stability on a static graph.
    assert by_variant["dynamic-coloring"]["mean_changes_mean"] < 1.0
    assert by_variant["coloring-no-backbone"]["mean_changes_mean"] > 10.0
