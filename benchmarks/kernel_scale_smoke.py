"""CI gate for the large-n kernel path: throughput, memory, shm hygiene.

Three assertions, sized for CI hardware:

1. **Throughput floor.**  A reduced version of the committed
   ``smis-dense-100k`` benchmark row (same n, fewer rounds) must clear a
   minimum rounds/sec.  The committed baseline on the benchmark host is
   ~9.5 r/s (``benchmarks/results/BENCH_kernel.json``); the gate here is
   2.0 r/s — loose enough for shared CI runners, tight enough that a
   return to the pre-kernel-tightening ~1.6 r/s fails the build.
2. **Memory ceiling.**  The run executes under ``trace_retention="stats"``
   and peak RSS (``resource.getrusage``) must stay under a cap that a
   full-retention trace of the same workload would blow through.
3. **shm lifecycle.**  A pooled batch that publishes shared-memory
   topology segments must leave ``/dev/shm`` clean when it returns, and
   ``repro audit``'s stale-segment scan must agree.

Usage::

    PYTHONPATH=src python benchmarks/kernel_scale_smoke.py
"""

from __future__ import annotations

import os
import resource
import sys
import time

import numpy as np

from repro.dynamics import generators
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.churn import MarkovEdgeChurn
from repro.runtime.simulator import Simulator, delivery_mode
from repro.algorithms.mis.smis import SMis

#: the reduced smis-dense-100k row: same n and churn as the committed
#: benchmark, fewer rounds (CI measures a floor, not a baseline).
N, ROUNDS, CHURN, SEED = 100_000, 10, 0.2, 1

MIN_ROUNDS_PER_SEC = 2.0

#: peak-RSS cap in MiB.  The stats-retention run peaks around 550 MiB
#: (dominated by the adversary's edge bookkeeping and the CSR arrays), so
#: a trace-memory regression trips this long before the gate gets flaky.
MAX_PEAK_RSS_MIB = 2048


def _peak_rss_mib() -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss / 1024.0 if sys.platform != "darwin" else rss / (1024.0 * 1024.0)


def _shm_segments() -> list:
    try:
        return sorted(x for x in os.listdir("/dev/shm") if x.startswith("repro-shm-"))
    except OSError:
        return []


def gate_throughput_and_rss() -> None:
    base = generators.gnp(N, 12.0 / (N - 1), np.random.default_rng(SEED))
    adversary = ChurnAdversary(
        N, MarkovEdgeChurn(base, p_off=CHURN, p_on=CHURN), np.random.default_rng(SEED + 1)
    )
    with delivery_mode("kernel"):
        sim = Simulator(
            n=N, algorithm=SMis(), adversary=adversary, seed=SEED, trace_retention="stats"
        )
    start = time.perf_counter()
    sim.run(ROUNDS)
    elapsed = time.perf_counter() - start
    rps = ROUNDS / elapsed
    peak = _peak_rss_mib()
    print(f"kernel-scale: n={N} rounds={ROUNDS} -> {rps:.2f} r/s, peak RSS {peak:.0f} MiB")
    assert sim.trace.num_rounds == ROUNDS, "scale run stopped early"
    assert rps >= MIN_ROUNDS_PER_SEC, (
        f"kernel throughput floor broken: {rps:.2f} r/s < {MIN_ROUNDS_PER_SEC} r/s"
    )
    assert peak <= MAX_PEAK_RSS_MIB, (
        f"peak RSS {peak:.0f} MiB exceeds {MAX_PEAK_RSS_MIB} MiB "
        "(stats retention no longer bounding trace memory?)"
    )


def gate_shm_lifecycle() -> None:
    from repro.exec.policy import ExecutionPolicy
    from repro.exec.runner import run_units
    from repro.exec.shm import stale_segments
    from repro.scenarios.spec import ScenarioSpec, component

    def spec(algorithm):
        return ScenarioSpec(
            n=64,
            algorithm=component(algorithm),
            adversary=component("markov-churn", p_off=0.1, p_on=0.1),
            topology=component("gnp", p=0.1),
            rounds=6,
            seeds=(1, 2),
            metrics=(),
            name=f"scale-smoke-{algorithm}",
        )

    from repro.exec.units import units_for_spec

    units = units_for_spec(spec("smis")) + units_for_spec(spec("dmis"))
    serial = run_units(units, ExecutionPolicy(backend="serial", progress=False))
    pooled = run_units(units, ExecutionPolicy(backend="process", max_workers=2, progress=False))
    assert serial == pooled, "pooled rows diverged from serial rows"
    leaked = _shm_segments()
    assert not leaked, f"shm segments leaked after pooled batch: {leaked}"
    assert not stale_segments(), "audit scan reports stale shm segments"
    print(f"kernel-scale: shm lifecycle clean ({len(units)} units, pooled == serial)")


def main() -> int:
    gate_throughput_and_rss()
    gate_shm_lifecycle()
    print("kernel-scale smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
