"""Array-kernel throughput: vectorized kernel path vs incremental path, rounds/sec.

Measures the fourth leg of the delta stool (after PR 5's dirty-set
incremental loop): the array-native round kernel that runs
compose/deliver/output over CSR adjacency in numpy for ``pure``
algorithms.  Each workload runs on identical seeds once per path, and the
kernel trace is byte-compared against the legacy full path (the
authoritative reference) before any timing is reported.

Workload grid: the four kernel-eligible algorithms (basic-coloring,
scolor, smis, dmis) on an expected-degree-12 Gnp base graph under dense
Markov churn (each base edge flips on/off with p=0.2 per round — most of
the graph stays dirty every round, the regime the kernel exists for),
plus a sparse-churn guard row and n=10^5 / n=10^6 dense-churn scale rows
that only the kernel path can complete in reasonable time (the 10^6 row
under ``trace_retention="stats"``).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py           # full grid
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_kernel.py --json out.json

The full grid writes ``benchmarks/results/BENCH_kernel.json`` and fails
unless every dense n=2000 workload clears a 10x kernel-vs-incremental
speedup and the sparse guard row stays >= 0.95x.  ``--smoke`` runs tiny
sizes and asserts byte-identical rows everywhere plus kernel >=
incremental on the dense workloads.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.dynamics import generators
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.churn import MarkovEdgeChurn
from repro.runtime.simulator import Simulator, delivery_mode
from repro.algorithms.coloring.basic_static import BasicColoring
from repro.algorithms.coloring.scolor import SColor
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.smis import SMis

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_kernel.json"

#: expected degree of the Gnp base graph (denser than BENCH_delivery's 8:
#: per-inbox python cost is exactly what the kernel vectorises away).
EXPECTED_DEGREE = 12.0

#: (label, per-round on/off probability of each base edge).
CHURN_RATES = (("sparse", 0.002), ("dense", 0.2))

ALGORITHMS = (
    ("basic-coloring", BasicColoring),
    ("scolor", SColor),
    ("smis", SMis),
    ("dmis", DMis),
)

#: n=2000 x 300 rounds is long enough that the converged steady state (the
#: regime the paper's self-stabilising algorithms live in) dominates the
#: cold-start rounds where every node is still undecided.
GRID_N, GRID_ROUNDS = 2000, 300
SMOKE_N, SMOKE_ROUNDS = 96, 60

#: the scale rows: dense churn at n=10^5 and n=10^6, kernel path only (the
#: python paths would need hours for the same workloads).  The 10^6 row runs
#: with ``trace_retention="stats"`` — per-round full output vectors at a
#: million nodes exist only to be diffed, exactly what the stats retention
#: mode stores as O(#changes) updates instead.
SCALE_ROWS = (
    ("smis-dense-100k", 100_000, 30, "full"),
    ("smis-dense-1m", 1_000_000, 5, "stats"),
)


def _run(
    algorithm_cls,
    n: int,
    churn_prob: float,
    rounds: int,
    seed: int,
    mode: str,
    trace_retention: str = "full",
):
    """One timed run; returns (rounds/sec, trace)."""
    base = generators.gnp(
        n, min(1.0, EXPECTED_DEGREE / max(n - 1, 1)), np.random.default_rng(seed)
    )
    adversary = ChurnAdversary(
        n,
        MarkovEdgeChurn(base, p_off=churn_prob, p_on=churn_prob),
        np.random.default_rng(seed + 1),
    )
    with delivery_mode(mode):
        sim = Simulator(
            n=n,
            algorithm=algorithm_cls(),
            adversary=adversary,
            seed=seed,
            trace_retention=trace_retention,
        )
    start = time.perf_counter()
    sim.run(rounds)
    elapsed = time.perf_counter() - start
    return rounds / elapsed, sim.trace


def _trace_rows(trace) -> List[tuple]:
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in trace
    ]


def _verify(algorithm_cls, label: str, n: int, churn_prob: float, rounds: int, seed: int):
    """Byte-compare the kernel trace against the authoritative full path."""
    _, full_trace = _run(algorithm_cls, n, churn_prob, rounds, seed, "full")
    _, kernel_trace = _run(algorithm_cls, n, churn_prob, rounds, seed, "kernel")
    if _trace_rows(full_trace) != _trace_rows(kernel_trace):
        raise AssertionError(
            f"kernel and full traces differ for {label}, n={n}, churn={churn_prob}"
        )
    del full_trace, kernel_trace
    gc.collect()


def _timed_paired(algorithm_cls, n, churn_prob, rounds, seed, repeats):
    """``(best incremental r/s, best kernel r/s, median pairwise speedup)``.

    Both paths are timed back to back inside each repeat (a *pair*) so both
    legs see the same machine conditions; the reported speedup is the median
    of the per-pair ratios, robust to host frequency/load drift.  Traces are
    released and collected between runs — a live multi-hundred-round trace
    inflates GC pressure enough to skew the comparison.
    """
    best = {"incremental": 0.0, "kernel": 0.0}
    ratios = []
    for _ in range(repeats):
        pair = {}
        for mode in ("incremental", "kernel"):
            gc.collect()
            rps, trace = _run(algorithm_cls, n, churn_prob, rounds, seed, mode)
            del trace
            pair[mode] = rps
            best[mode] = max(best[mode], rps)
        ratios.append(pair["kernel"] / pair["incremental"])
    ratios.sort()
    mid = len(ratios) // 2
    median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2.0
    return best["incremental"], best["kernel"], median


def run_grid(n, rounds, *, seed: int = 1, repeats: int = 3) -> List[Dict[str, float]]:
    """One row per (algorithm, churn) cell: verify byte-identity, then time."""
    rows: List[Dict[str, float]] = []
    for churn_label, churn_prob in CHURN_RATES:
        for algo_label, algorithm_cls in ALGORITHMS:
            # the sparse guard only needs one representative algorithm
            if churn_label == "sparse" and algo_label != "smis":
                continue
            _verify(algorithm_cls, algo_label, n, churn_prob, rounds, seed)
            inc_rps, kernel_rps, speedup = _timed_paired(
                algorithm_cls, n, churn_prob, rounds, seed, repeats
            )
            rows.append(
                {
                    "workload": f"{algo_label}-{churn_label}",
                    "algorithm": algo_label,
                    "n": n,
                    "rounds": rounds,
                    "churn_prob": churn_prob,
                    "incremental_rps": round(inc_rps, 1),
                    "kernel_rps": round(kernel_rps, 1),
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"{rows[-1]['workload']:<28} n={n:<6} "
                f"incremental={inc_rps:8.1f} r/s  kernel={kernel_rps:8.1f} r/s  "
                f"speedup={rows[-1]['speedup']:.2f}x"
            )
    return rows


def run_scale_row(
    label: str, n: int, rounds: int, retention: str, *, seed: int = 1
) -> Dict[str, float]:
    """One dense-churn completion row (kernel path only)."""
    rps, trace = _run(
        SMis, n, CHURN_RATES[1][1], rounds, seed, "kernel", trace_retention=retention
    )
    num_rounds = trace.num_rounds
    del trace
    gc.collect()
    if num_rounds != rounds:
        raise AssertionError(f"scale workload stopped early: {num_rounds}/{rounds} rounds")
    row = {
        "workload": label,
        "algorithm": "smis",
        "n": n,
        "rounds": rounds,
        "churn_prob": CHURN_RATES[1][1],
        "incremental_rps": None,
        "kernel_rps": round(rps, 2),
        "speedup": None,
        "trace_retention": retention,
    }
    print(f"{row['workload']:<28} n={n:<7} kernel={rps:8.2f} r/s  (completion row)")
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes; assert identical rows and kernel >= incremental on dense churn",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path for the result JSON (default: {RESULTS_PATH} in full mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows = run_grid(SMOKE_N, SMOKE_ROUNDS, repeats=3)
        # Identity was already asserted per cell; on the dense workloads (the
        # regime the kernel exists for) the kernel must additionally never be
        # slower than the incremental path, even at smoke sizes.
        slow = [
            row
            for row in rows
            if row["churn_prob"] == CHURN_RATES[1][1] and row["speedup"] < 1.0
        ]
        if slow:
            print(f"FAIL: kernel path slower than incremental path on {slow}")
            return 1
        print(
            f"smoke ok: {len(rows)} workloads, identical rows, "
            "kernel >= incremental on dense churn"
        )
        return 0

    rows = run_grid(GRID_N, GRID_ROUNDS, repeats=3)
    for label, n, rounds, retention in SCALE_ROWS:
        rows.append(run_scale_row(label, n, rounds, retention))

    payload = {
        "benchmark": "array-kernel",
        "unit": "rounds/sec",
        "note": (
            "incremental vs array-kernel delivery on identical seeds; kernel "
            "traces byte-identical to the full path"
        ),
        "rows": rows,
    }
    out_path = args.json or RESULTS_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    for row in rows:
        if row["speedup"] is None:
            if not row["kernel_rps"]:
                failures.append(f"{row['workload']} did not complete")
        elif row["churn_prob"] == CHURN_RATES[1][1] and row["speedup"] < 10.0:
            failures.append(f"{row['workload']} speedup {row['speedup']} < 10.0x")
        elif row["churn_prob"] == CHURN_RATES[0][1] and row["speedup"] < 0.95:
            failures.append(f"{row['workload']} regressed: {row['speedup']} < 0.95x")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
