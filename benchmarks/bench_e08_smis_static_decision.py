"""E8 — SMis decides quickly once the graph (and hence every 2-neighbourhood) freezes (Lemma 5.6).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e08_smis_freeze_decision
from bench_utils import regenerate


def test_e08_smis_freeze_decision(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e08_smis_freeze_decision,
        "E8: SMis rounds to all-decided after the graph freezes (claim: O(log n), then no changes)",
        sizes=(64, 128, 256),
        seeds=bench_seeds,
        churn_rounds=20,
        flip_prob=0.05,
    )
    assert all(row["changes_after_decided_mean"] == 0.0 for row in rows)
    assert all(row["rounds_over_log2n"] <= 6.0 for row in rows)
