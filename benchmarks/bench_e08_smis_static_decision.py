"""E8 — SMis decides within O(log n) rounds once the graph freezes (Lemma 5.6).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e08.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e08_smis_freeze_decision(benchmark):
    rows = regenerate_from_config(benchmark, "e08")
    assert all(row["changes_after_decided_mean"] == 0.0 for row in rows)
    assert all(row["rounds_over_log2n"] <= 6.0 for row in rows)
