"""E11 — guarantees are preserved under asynchronous wake-up (Sections 2 / 7.2).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e11_async_wakeup
from bench_utils import regenerate


def test_e11_async_wakeup(benchmark):
    rows = regenerate(
        benchmark,
        experiment_e11_async_wakeup,
        "E11: T-dynamic validity under gradual wake-up schedules (claim: unchanged)",
        n=128,
        seeds=(0, 1),
        rounds_factor=6,
    )
    coloring = [row for row in rows if row["algorithm"] == "dynamic-coloring"]
    mis = [row for row in rows if row["algorithm"] == "dynamic-mis"]
    assert all(row["valid_fraction_mean"] >= 0.99 for row in coloring)
    assert all(row["valid_fraction_mean"] >= 0.9 for row in mis)
