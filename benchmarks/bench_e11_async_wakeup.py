"""E11 — the guarantees survive gradual wake-up schedules (Sections 2 / 7.2).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e11.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e11_async_wakeup(benchmark):
    rows = regenerate_from_config(benchmark, "e11")
    coloring = [row for row in rows if row["algorithm"] == "dynamic-coloring"]
    mis = [row for row in rows if row["algorithm"] == "dynamic-mis"]
    assert all(row["valid_fraction_mean"] >= 0.99 for row in coloring)
    assert all(row["valid_fraction_mean"] >= 0.9 for row in mis)
