"""Incremental delivery throughput: full path vs dirty-set path, rounds/sec.

Measures the third leg of the delta stool (after PR 2's topology deltas and
PR 4's delta-aware windows): the quiescence-aware round loop that runs
compose/deliver/output-recording only for the dirty frontier.  Each workload
runs twice on identical seeds — once with delivery forced to the legacy full
path and once on the incremental path — and the two traces are verified to be
byte-identical before any timing is reported.

Workload grid: medium/large ``n`` × sparse/dense churn on an expected-degree-8
Gnp base graph, × two algorithms:

* ``pure-null`` — a constant-message pure algorithm, so the numbers isolate
  *engine* cost exactly like ``bench_engine_throughput``;
* ``smis`` — a real paper algorithm (Algorithm 5) whose undecided nodes stay
  volatile until they converge, i.e. the realistic "converged region goes
  quiescent" profile.

"Sparse" flips each base edge with probability 0.002 per round, touching
~1–2 % of the nodes — the paper's "frequent but local changes" regime the
ROADMAP targets; "dense" flips 20 % and keeps most of the graph dirty, which
bounds the incremental path's bookkeeping overhead (the ≥1x no-regression
gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_delivery.py           # full grid
    PYTHONPATH=src python benchmarks/bench_incremental_delivery.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_incremental_delivery.py --json out.json

The full grid writes ``benchmarks/results/BENCH_delivery.json`` and fails
unless the large-sparse engine speedup is ≥ 3x and no dense workload
regresses below 1x.  ``--smoke`` runs tiny sizes and asserts identical rows
everywhere plus incremental ≥ full on the sparse workloads.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.dynamics import generators
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.churn import MarkovEdgeChurn
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.simulator import Simulator, delivery_mode
from repro.algorithms.mis.smis import SMis

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_delivery.json"

#: (label, n, rounds) for the full grid; smoke mode uses its own tiny grid.
SIZES = (("medium", 800, 300), ("large", 2000, 150))
SMOKE_SIZES = (("small", 64, 150), ("medium", 128, 100))

#: (label, per-round flip probability of each base edge).
CHURN_RATES = (("sparse", 0.002), ("dense", 0.2))


class PureNullAlgorithm(DistributedAlgorithm):
    """Constant-message pure algorithm: isolates engine cost, maximal quiescence."""

    name = "pure-null"
    message_stability = "pure"

    def on_wake(self, v):
        pass

    def compose(self, v):
        return None

    def compose_fingerprint(self, v):
        return None

    def deliver(self, v, inbox):
        pass

    def output(self, v):
        return 0


ALGORITHMS = (("null", PureNullAlgorithm), ("smis", SMis))


def _run(algorithm_cls, n: int, churn_prob: float, rounds: int, seed: int, mode: str):
    """One timed run; returns (rounds/sec, trace, mean dirty-frontier size)."""
    base = generators.gnp(n, min(1.0, 8.0 / max(n - 1, 1)), np.random.default_rng(seed))
    adversary = ChurnAdversary(
        n,
        MarkovEdgeChurn(base, p_off=churn_prob, p_on=churn_prob),
        np.random.default_rng(seed + 1),
    )
    with delivery_mode(mode):
        sim = Simulator(n=n, algorithm=algorithm_cls(), adversary=adversary, seed=seed)
    active_total = 0
    start = time.perf_counter()
    sim.run(rounds)
    elapsed = time.perf_counter() - start
    active_total = sim.last_round_activity.num_active if sim.last_round_activity else 0
    return rounds / elapsed, sim.trace, active_total


def _trace_rows(trace) -> List[tuple]:
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in trace
    ]


def _timed_paired(algorithm_cls, n, churn_prob, rounds, seed, repeats):
    """``(best full r/s, best incremental r/s, median pairwise speedup)``.

    The two paths are timed back to back inside each repeat (a *pair*), so
    both legs of a pair see the same machine conditions; the reported
    speedup is the median of the per-pair ratios, which is robust to the
    tens-of-percent frequency/load drift a shared host shows across seconds.
    Each run's trace is released (and garbage collected) before the next
    timing starts — a live multi-hundred-round trace inflates GC pressure
    enough to skew the comparison.
    """
    best = {"full": 0.0, "incremental": 0.0}
    ratios = []
    for _ in range(repeats):
        pair = {}
        for mode in ("full", "incremental"):
            gc.collect()
            rps, trace, _ = _run(algorithm_cls, n, churn_prob, rounds, seed, mode)
            del trace
            pair[mode] = rps
            best[mode] = max(best[mode], rps)
        ratios.append(pair["incremental"] / pair["full"])
    ratios.sort()
    mid = len(ratios) // 2
    median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2.0
    return best["full"], best["incremental"], median


def run_grid(
    sizes, *, seed: int = 1, verify: bool = True, repeats: int = 2
) -> List[Dict[str, float]]:
    """Run the workload grid; one result row per (algorithm, size, churn) cell.

    Every cell first runs both paths once untimed and byte-compares the
    traces (the equivalence gate), then times each path best-of-``repeats``
    on fresh runs.
    """
    rows: List[Dict[str, float]] = []
    for algo_label, algorithm_cls in ALGORITHMS:
        for size_label, n, rounds in sizes:
            for churn_label, churn_prob in CHURN_RATES:
                _, full_trace, _ = _run(algorithm_cls, n, churn_prob, rounds, seed, "full")
                _, inc_trace, last_active = _run(
                    algorithm_cls, n, churn_prob, rounds, seed, "incremental"
                )
                if verify and _trace_rows(full_trace) != _trace_rows(inc_trace):
                    raise AssertionError(
                        f"incremental and full traces differ for {algo_label}, "
                        f"n={n}, churn={churn_label}"
                    )
                del full_trace, inc_trace
                # Dense cells compare two near-identical costs; give their
                # median more pairs to cancel host frequency/load swings.
                cell_repeats = repeats if churn_label == "sparse" else 2 * repeats - 1
                full_rps, inc_rps, speedup = _timed_paired(
                    algorithm_cls, n, churn_prob, rounds, seed, cell_repeats
                )
                rows.append(
                    {
                        "workload": f"{algo_label}-{size_label}-{churn_label}",
                        "algorithm": algo_label,
                        "n": n,
                        "rounds": rounds,
                        "churn_prob": churn_prob,
                        "last_round_active": last_active,
                        "full_rps": round(full_rps, 1),
                        "incremental_rps": round(inc_rps, 1),
                        "speedup": round(speedup, 2),
                    }
                )
                print(
                    f"{rows[-1]['workload']:<24} n={n:<5} "
                    f"active(last)={last_active:<6} "
                    f"full={full_rps:8.1f} r/s  incremental={inc_rps:8.1f} r/s  "
                    f"speedup={rows[-1]['speedup']:.2f}x"
                )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes; assert identical rows and incremental >= full on sparse churn",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path for the result JSON (default: {RESULTS_PATH} in full mode)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    rows = run_grid(sizes, repeats=3 if args.smoke else 4)

    if args.smoke:
        # The CI gate: identical rows were already asserted inside run_grid;
        # on the sparse workloads (the regime this engine exists for) the
        # incremental path must additionally never be slower than the full
        # path.  Dense smoke cells are identity-checked only — at n=64 the
        # dirty frontier is the whole graph and the comparison is pure noise.
        slow = [
            row
            for row in rows
            if row["churn_prob"] == CHURN_RATES[0][1] and row["speedup"] < 1.0
        ]
        if slow:
            print(f"FAIL: incremental path slower than full path on {slow}")
            return 1
        print(
            f"smoke ok: {len(rows)} workloads, identical rows, "
            "incremental >= full on sparse churn"
        )
        return 0

    payload = {
        "benchmark": "incremental-delivery",
        "unit": "rounds/sec",
        "note": "full vs incremental delivery on identical seeds; traces byte-identical",
        "rows": rows,
    }
    out_path = args.json or RESULTS_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    for row in rows:
        if row["workload"] == "null-large-sparse" and row["speedup"] < 3.0:
            failures.append(f"large-sparse engine speedup {row['speedup']} < 3.0x")
        # Dense cells sit at parity by design (the engine falls back to
        # full-frontier processing); the gate allows scheduler noise on the
        # multi-second runs but catches any real bookkeeping regression.
        if "dense" in row["workload"] and row["speedup"] < 0.95:
            failures.append(f"{row['workload']} regressed: {row['speedup']} < 0.95x")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
