"""E9 — the framework vs restart / repair baselines under continuous churn (Section 1).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e09.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e09_baseline_comparison(benchmark):
    rows = regenerate_from_config(benchmark, "e09")
    by_name = {row["algorithm"]: row for row in rows}
    coloring, restart_coloring = by_name["dynamic-coloring"], by_name["restart-coloring"]
    mis, restart_mis = by_name["dynamic-mis"], by_name["restart-mis"]
    # The combined algorithms must dominate the restart baselines on validity …
    assert coloring["valid_fraction_mean"] > restart_coloring["valid_fraction_mean"]
    assert mis["valid_fraction_mean"] > restart_mis["valid_fraction_mean"]
    # … and churn their output far less.
    assert coloring["mean_changes_mean"] < restart_coloring["mean_changes_mean"]
    assert mis["mean_changes_mean"] < restart_mis["mean_changes_mean"]
