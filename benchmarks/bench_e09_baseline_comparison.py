"""E9 — framework vs recovery-style baselines under continuous churn (Section 1 motivation).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e09_baseline_comparison
from bench_utils import regenerate


def test_e09_baseline_comparison(benchmark):
    rows = regenerate(
        benchmark,
        experiment_e09_baseline_comparison,
        "E9: sliding-window validity and output churn — framework vs restart/repair baselines",
        n=128,
        seeds=(0, 1),
        flip_prob=0.02,
        rounds_factor=5,
    )
    by_name = {row["algorithm"]: row for row in rows}
    # The combined algorithms must dominate the restart baselines on validity …
    assert by_name["dynamic-coloring"]["valid_fraction_mean"] > by_name["restart-coloring"]["valid_fraction_mean"]
    assert by_name["dynamic-mis"]["valid_fraction_mean"] > by_name["restart-mis"]["valid_fraction_mean"]
    # … and churn their output far less.
    assert by_name["dynamic-coloring"]["mean_changes_mean"] < by_name["restart-coloring"]["mean_changes_mean"]
    assert by_name["dynamic-mis"]["mean_changes_mean"] < by_name["restart-mis"]["mean_changes_mean"]
