"""E6 — two-round decay of undecided-undecided intersection edges (Lemma 5.2).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e06.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e06_mis_edge_decay(benchmark):
    rows = regenerate_from_config(benchmark, "e06")
    assert rows[0]["mean_two_round_ratio"] <= rows[0]["paper_upper_bound"] + 0.05
