"""E6 — DMis undecided-edge decay (Lemma 5.2: E[|E(H_{r+2})|] <= (2/3)·|E(H_r)|).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e06_mis_edge_decay
from bench_utils import regenerate


def test_e06_mis_edge_decay(benchmark):
    rows = regenerate(
        benchmark,
        experiment_e06_mis_edge_decay,
        "E6: two-round decay of undecided-undecided intersection edges (claim: <= 2/3)",
        n=192,
        seeds=(0, 1, 2, 3, 4, 5),
        rounds=30,
    )
    assert rows[0]["mean_two_round_ratio"] <= rows[0]["paper_upper_bound"] + 0.05
