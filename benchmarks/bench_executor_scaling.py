"""Executor scaling: chunked backend dispatch vs the PR-1 per-unit executor.

The workload class that motivated the ``repro.exec`` subsystem is the
*many-tiny-unit sweep*: adversary × algorithm × seed grids and
tail-statistics replication studies explode into hundreds or thousands of
``(spec, seed)`` work units that each run for milliseconds.  There, per-unit
dispatch cost — one IPC round-trip, one payload pickle (including the full
spec dict, seeds list and all) and one ``ScenarioSpec.from_dict`` re-parse
per unit — rivals the simulation itself.

This benchmark times four executors over the same unit batches:

* ``serial`` — the in-process reference loop (and byte-identity yardstick);
* ``pr1-unchunked`` — a faithful re-implementation of the PR-1 batch engine:
  ``ProcessPoolExecutor.map`` at chunksize 1, one ``(spec-dict, seed)``
  payload and one spec re-parse per unit;
* ``process`` — the new chunked process backend (spec sent once per chunk,
  parsed once per worker via the spec cache);
* ``thread`` / ``local-cluster`` / ``remote`` — the other registered
  backends, for coverage (the GIL caps ``thread`` on CPU-bound units;
  ``local-cluster`` pays a JSON round-trip for its distribution-ready
  contract; ``remote`` adds the loopback-transport dispatcher on top —
  heartbeats, deadlines and adaptive sizing included in its number).

Workloads:

* ``replication-tail`` — one tiny scenario (ring, n=8, 1 round), 1000 seed
  replications: the pattern of estimating convergence-time tails.
* ``grid-matrix`` — a registered-adversary × seed grid on n=32: the pattern
  of the ROADMAP's scenario-matrix expansion.

Every path's rows are asserted byte-identical to ``serial`` before any
timing is reported.  Worker pools are started and warmed before the clock
runs, so the numbers measure steady-state dispatch throughput, not process
start-up.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_executor_scaling.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_executor_scaling.py --json out.json

Full mode writes ``benchmarks/results/BENCH_exec.json`` and *asserts* the
acceptance bar: chunked ``process`` dispatch at least 2x the rows/sec of
``pr1-unchunked`` on the many-tiny-unit workload.  ``--smoke`` runs a small
batch and asserts byte-identity plus chunked >= unchunked (with tolerance
for CI scheduler noise).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import build_chunks, make_backend, units_for_spec
from repro.exec.backends import LocalClusterBackend
from repro.exec.units import WorkUnit, auto_chunk_size
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.executor import run_scenario_seed
from repro.scenarios.store import canonical_json

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_exec.json"

#: Worker count for every pooled path (identical across paths for fairness).
WORKERS = 2

#: The acceptance bar of the full run (chunked process vs pr1-unchunked).
TARGET_SPEEDUP = 2.0

#: Adversaries of the grid workload (registered names, default parameters).
GRID_ADVERSARIES = (
    "static",
    "flip-churn",
    "markov-churn",
    "burst-churn",
    "edge-insertion",
    "locally-static",
)


def _replication_spec(n_seeds: int) -> ScenarioSpec:
    """The many-tiny-unit workload: 1-round ring scenarios, one per seed."""
    return ScenarioSpec(
        n=8,
        topology="ring",
        algorithm="ghaffari-mis",
        adversary="static",
        rounds=1,
        seeds=tuple(range(n_seeds)),
        metrics=(component("trace-summary"),),
        name="replication-tail",
    )


def _grid_units(seeds_per_point: int) -> List[WorkUnit]:
    """The adversary-matrix workload: one spec per registered adversary."""
    base = ScenarioSpec(
        n=32,
        topology="gnp_degree",
        algorithm="dynamic-coloring",
        rounds="T1",
        seeds=tuple(range(seeds_per_point)),
        metrics=(component("validity", problem="coloring"),),
        name="grid-matrix",
    )
    units: List[WorkUnit] = []
    for adversary in GRID_ADVERSARIES:
        units.extend(units_for_spec(base.with_overrides({"adversary.name": adversary})))
    return units


# ---------------------------------------------------------------------------
# the executors under test
# ---------------------------------------------------------------------------


def _pr1_execute_payload(payload: Tuple[Dict, int]) -> Dict[str, float]:
    """The PR-1 work-unit entry point: re-parse the spec for every unit."""
    spec_dict, seed = payload
    return run_scenario_seed(ScenarioSpec.from_dict(spec_dict), seed)


def _run_pr1_unchunked(units: Sequence[WorkUnit]) -> Tuple[List[Dict], float]:
    """The PR-1 batch engine, verbatim: per-unit payloads, map chunksize 1."""
    payloads = [(unit.spec_dict, unit.seed) for unit in units]
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        list(pool.map(_pr1_execute_payload, payloads[:WORKERS]))  # warm the pool
        started = time.perf_counter()
        rows = list(pool.map(_pr1_execute_payload, payloads))
        elapsed = time.perf_counter() - started
    return rows, elapsed


def _run_backend(
    name: str, units: Sequence[WorkUnit], chunk_size: Optional[int]
) -> Tuple[List[Dict], float]:
    """One registered backend over ``units``, warm, rows in batch order."""
    chunks = build_chunks(units, chunk_size or auto_chunk_size(len(units), WORKERS))
    backend = make_backend(name, WORKERS)
    with backend:
        if isinstance(backend, LocalClusterBackend):
            backend.wait_ready()
        warm = build_chunks(units[:WORKERS], 1)  # exercise import + spec cache
        for _ in backend.submit_batch(warm):
            pass
        rows: List[Optional[Dict]] = [None] * len(units)
        started = time.perf_counter()
        for index, chunk_rows in backend.submit_batch(chunks):
            chunk = chunks[index]
            rows[chunk.start : chunk.start + len(chunk_rows)] = chunk_rows
        elapsed = time.perf_counter() - started
    return rows, elapsed


def run_workload(
    label: str, units: Sequence[WorkUnit], *, chunk_size: Optional[int] = None
) -> Dict[str, object]:
    """Time every executor on ``units``; returns one result row."""
    serial_started = time.perf_counter()
    serial_rows = [run_scenario_seed(ScenarioSpec.from_dict(u.spec_dict), u.seed) for u in units]
    serial_elapsed = time.perf_counter() - serial_started
    reference = canonical_json(serial_rows)

    timings: Dict[str, float] = {"serial": len(units) / serial_elapsed}
    identical: Dict[str, bool] = {"serial": True}

    pr1_rows, pr1_elapsed = _run_pr1_unchunked(units)
    timings["pr1_unchunked"] = len(units) / pr1_elapsed
    identical["pr1_unchunked"] = canonical_json(pr1_rows) == reference

    for backend in ("process", "thread", "local-cluster", "remote"):
        rows, elapsed = _run_backend(backend, units, chunk_size)
        timings[backend.replace("-", "_")] = len(units) / elapsed
        identical[backend.replace("-", "_")] = canonical_json(rows) == reference

    row: Dict[str, object] = {
        "workload": label,
        "units": len(units),
        "chunk_size": chunk_size or auto_chunk_size(len(units), WORKERS),
        "workers": WORKERS,
        "rows_per_sec": {k: round(v, 1) for k, v in timings.items()},
        "speedup_chunked_vs_unchunked": round(timings["process"] / timings["pr1_unchunked"], 2),
        "identical_to_serial": identical,
    }
    print(
        f"{label:<18} units={len(units):<5} "
        f"serial={timings['serial']:7.1f} r/s  "
        f"pr1-unchunked={timings['pr1_unchunked']:7.1f} r/s  "
        f"process-chunked={timings['process']:7.1f} r/s  "
        f"thread={timings['thread']:7.1f} r/s  "
        f"local-cluster={timings['local_cluster']:7.1f} r/s  "
        f"remote={timings['remote']:7.1f} r/s  "
        f"speedup={row['speedup_chunked_vs_unchunked']}x"
    )
    mismatched = [name for name, same in identical.items() if not same]
    if mismatched:
        raise AssertionError(f"{label}: rows differ from serial on {mismatched}")
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batches; assert byte-identity and chunked >= unchunked",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help=f"output path for the result JSON (default: {RESULTS_PATH} in full mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows = [
            run_workload("replication-tail", units_for_spec(_replication_spec(160))),
            run_workload("grid-matrix", _grid_units(4)),
        ]
        # CI gate: identity is already asserted inside run_workload; chunked
        # dispatch must additionally not be slower than per-unit dispatch
        # (0.9 tolerance absorbs scheduler noise on small CI batches).
        headline = rows[0]["speedup_chunked_vs_unchunked"]
        if headline < 0.9:
            print(f"FAIL: chunked dispatch slower than unchunked ({headline}x)")
            return 1
        print(f"smoke ok: all backends byte-identical; chunked/unchunked = {headline}x")
        return 0

    rows = [
        run_workload("replication-tail", units_for_spec(_replication_spec(1000))),
        run_workload("grid-matrix", _grid_units(25)),
    ]
    payload = {
        "benchmark": "executor-scaling",
        "unit": "rows/sec",
        "workers": WORKERS,
        "target": f"process chunked >= {TARGET_SPEEDUP}x pr1-unchunked on replication-tail",
        "rows": rows,
    }
    out_path = args.json or RESULTS_PATH
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    headline = rows[0]["speedup_chunked_vs_unchunked"]
    if headline < TARGET_SPEEDUP:
        print(f"FAIL: replication-tail speedup {headline}x < {TARGET_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(None))
