"""E3 — conflicts from adversarially inserted edges resolve within T1 (Corollary 1.2).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e03.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e03_conflict_resolution(benchmark):
    rows = regenerate_from_config(benchmark, "e03")
    assert all(row["max_duration_max"] <= row["window_T1"] for row in rows)
