"""E3 — conflicts from adversarially inserted edges resolve within the window (Corollary 1.2).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e03_conflict_resolution
from bench_utils import regenerate


def test_e03_conflict_resolution(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e03_conflict_resolution,
        "E3: conflict duration after adversarial edge insertion (claim: <= T1 = O(log n))",
        sizes=(64, 128, 256),
        seeds=bench_seeds,
        attacks_per_round=2,
    )
    assert all(row["max_duration_max"] <= row["window_T1"] for row in rows)
