"""E5 — locally static graph ⇒ locally static output (Theorem 1.1(2), Corollaries 1.2/1.3).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e05_local_stability
from bench_utils import regenerate


def test_e05_local_stability(benchmark, bench_seeds):
    rows = regenerate(
        benchmark,
        experiment_e05_local_stability,
        "E5: output changes inside a frozen ball vs the churned remainder (claim: 0 inside)",
        n=121,
        seeds=bench_seeds,
        flip_prob=0.05,
        protected_radius=3,
    )
    assert all(row["changes_protected_mean"] == 0.0 for row in rows)
    assert all(row["changes_control_mean"] > 0.0 for row in rows)
