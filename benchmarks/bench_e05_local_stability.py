"""E5 — locally static graph ⇒ locally static output (Theorem 1.1(2)).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e05.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e05_local_stability(benchmark):
    rows = regenerate_from_config(benchmark, "e05")
    assert all(row["changes_protected_mean"] == 0.0 for row in rows)
    assert all(row["changes_control_mean"] > 0.0 for row in rows)
