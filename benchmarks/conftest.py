"""Configuration for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Every benchmark regenerates one experiment from DESIGN.md §3 (E1–E13) and
prints the resulting table (visible with ``-s`` or in the captured output on
failure); the row data is also attached to the pytest-benchmark ``extra_info``
so it ends up in ``--benchmark-json`` exports.
"""

import pathlib

import pytest


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start every benchmark session with an empty ``results/tables.txt``."""
    results = pathlib.Path(__file__).resolve().parent / "results" / "tables.txt"
    if results.exists():
        results.unlink()
    yield
