"""E12 — message sizes stay polylogarithmic in n (Section 2 remark).

The experiment is declared and executed through the ``repro.scenarios``
registry/spec API; seed replications run on the parallel batch executor
(see ``bench_utils.regenerate``).
"""

from repro.analysis.experiments import experiment_e12_message_size
from bench_utils import regenerate


def test_e12_message_size(benchmark):
    rows = regenerate(
        benchmark,
        experiment_e12_message_size,
        "E12: maximum message size (bits) per algorithm vs n (claim: poly log n)",
        sizes=(32, 128, 512),
        rounds_factor=2,
    )
    # Single algorithms: O(log n) bits; combined algorithms: O(log^2 n) bits.
    for row in rows:
        assert row["bits_over_log2n_sq"] <= 64.0
