"""E12 — message sizes stay polylogarithmic (Section 2).

The workload — parameters, title, columns — comes from the committed config
``configs/experiments/e12.json`` (benchmark-scale parameter set), the same
file ``repro experiments`` and the CI drift gate execute; seed replications
run on the parallel batch executor (see ``bench_utils.regenerate_from_config``).
"""

from bench_utils import regenerate_from_config


def test_e12_message_size(benchmark):
    rows = regenerate_from_config(benchmark, "e12")
    # Single algorithms: O(log n) bits; combined algorithms: O(log^2 n) bits.
    for row in rows:
        assert row["bits_over_log2n_sq"] <= 64.0
