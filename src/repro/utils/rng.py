"""Deterministic random-number management.

Every stochastic component of the simulator (topology generators, churn
models, adversaries, and the per-node randomness of the algorithms) draws
from a :class:`numpy.random.Generator`.  To make every experiment row
reproducible bit-for-bit, all generators are derived from a single master
seed through *named streams*: the stream name is hashed together with the
master seed, so adding a new consumer never perturbs the randomness of
existing consumers (unlike sequential ``spawn()`` calls).

The paper requires that algorithms can use *fresh randomness in every round*
and that the adversary's knowledge of that randomness is limited by its
obliviousness (Section 2).  Using separate named streams per node and per
component gives exactly this independence.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RngFactory", "derive_seed", "spawn_generator"]

_MAX_SEED = 2**63 - 1


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a child seed from ``master_seed`` and a tuple of stream names.

    The derivation is a SHA-256 hash of the master seed and the stringified
    names, truncated to 63 bits.  It is stable across Python processes and
    platforms (unlike ``hash()``).

    Parameters
    ----------
    master_seed:
        The experiment-level seed.
    names:
        Arbitrary hashable/stringifiable identifiers, e.g.
        ``("adversary", "churn")`` or ``("node", 17)``.
    """
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode("utf-8"))
    for name in names:
        h.update(b"\x1f")
        h.update(repr(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & _MAX_SEED


def spawn_generator(master_seed: int, *names: object) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for the named stream."""
    return np.random.default_rng(derive_seed(master_seed, *names))


class RngFactory:
    """Factory of independent, named random streams derived from one seed.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> adversary_rng = factory.stream("adversary")
    >>> node_rng = factory.node_stream("dcolor", 12)
    >>> factory2 = RngFactory(seed=7)
    >>> float(factory2.stream("adversary").random()) == float(adversary_rng.random())
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, *names: object) -> np.random.Generator:
        """Return a generator for the stream identified by ``names``."""
        return spawn_generator(self._seed, *names)

    def node_stream(self, component: str, node: int) -> np.random.Generator:
        """Return the per-node generator of ``component`` for node ``node``."""
        return spawn_generator(self._seed, "node", component, int(node))

    def node_streams(self, component: str, nodes: Iterable[int]) -> dict[int, np.random.Generator]:
        """Return per-node generators for every node in ``nodes``."""
        return {int(v): self.node_stream(component, int(v)) for v in nodes}

    def child(self, *names: object) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one's."""
        return RngFactory(derive_seed(self._seed, "child", *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
