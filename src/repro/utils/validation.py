"""Small argument-validation helpers.

These helpers standardise the error type (:class:`~repro.errors.ConfigurationError`)
and the error messages used when components are constructed with invalid
parameters, keeping constructors short and uniform.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_type",
]


def check_positive(name: str, value: Any) -> int | float:
    """Validate that ``value`` is a strictly positive number and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: Any) -> int | float:
    """Validate that ``value`` is a non-negative number and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as a float."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= float(value) <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate that ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be an instance of {expected_names}, got {type(value).__name__}"
        )
    return value
