"""Utility helpers shared across the :mod:`repro` package."""

from repro.utils.rng import RngFactory, derive_seed, spawn_generator
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngFactory",
    "derive_seed",
    "spawn_generator",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
