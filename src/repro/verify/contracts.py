"""The confound-matrix contract suite behind ``repro verify``.

Two families of checks, both declared through the ``CONTRACTS`` registry
(mirroring the :mod:`repro.scenarios` registry idiom — ``repro components``
and :func:`repro.scenarios.registry.available` list them alongside the other
component families):

**Observational-equivalence contracts** run *paired* configurations on shared
base seeds and gate on byte-identical trace rows.  Sharing the seeds removes
seed variance from the comparison entirely, so any divergence is the
manipulation under test, not replication noise — the confound the
paired-run design exists to kill.

* ``delta-vs-snapshot`` — every registered adversary, delta emission on vs off;
* ``delivery-equivalence`` — full vs incremental vs kernel delivery;
* ``backend-equivalence`` — the serial loop vs every execution backend;
* ``scale-equivalence`` — halved churn rate vs doubled ``window_scale``
  (statistical: per-window exposure must be indistinguishable).

**Metamorphic properties** check invariances the simulator must honour
without a second implementation to compare against:

* ``relabel-isomorphism`` — permuting node labels permutes the trace and
  nothing else;
* ``time-scaling`` — ``window_scale`` reaches the engine proportionally;
* ``manipulation-exists`` — every spec override in the committed configs
  lands on a parameter a registered component actually accepts (the
  "manipulated knob silently doesn't exist" bug class).

Each contract is a callable ``(ctx: VerifyContext) -> Iterable[Verdict]``;
the harness (:mod:`repro.verify.harness`) drives them and stores the verdict
rows through the content-addressed results store.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import NodeId, canonical_edge
from repro.core.windows import default_window, window_for
from repro.dynamics.adversary import FULLY_OBLIVIOUS, Adversary, AdversaryView, delta_emission
from repro.dynamics.topology import Topology
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.messages import Message
from repro.runtime.simulator import Simulator, delivery_mode
from repro.scenarios.configs import load_config, validate_config
from repro.scenarios.executor import (
    _build_context,
    _comparable_trace_rows,
    _execute_seed,
    run_scenario,
)
from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    PROBES,
    REGISTRIES,
    STOP_CONDITIONS,
    TOPOLOGIES,
    WAKEUPS,
    Registry,
    suggestion_hint,
)
from repro.scenarios.spec import ComponentSpec, ScenarioSpec, component

__all__ = ["CONTRACTS", "Verdict", "VerifyContext"]

#: Validation contracts: ``(ctx: VerifyContext) -> Iterable[Verdict]``.
CONTRACTS = Registry("contract")

# The contract family joins the scenario discovery surface: `repro
# components` and available() list contracts next to adversaries etc.
REGISTRIES["contracts"] = CONTRACTS


@dataclass(frozen=True)
class Verdict:
    """One structured contract outcome (the row ``repro verify`` stores)."""

    contract: str
    case: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in ("pass", "fail", "skip"):
            raise ConfigurationError(f"verdict status must be pass/fail/skip, got {self.status!r}")

    def as_row(self) -> Dict[str, Any]:
        """JSON-safe row for the results store."""
        return {
            "contract": self.contract,
            "case": self.case,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class VerifyContext:
    """Everything a contract sees: which suite runs, and where configs live."""

    suite: str = "smoke"
    configs_dir: Path = Path("configs")

    @property
    def smoke(self) -> bool:
        """Whether the fast CI subset is running (``full`` unlocks more cases)."""
        return self.suite != "full"


def _passed(contract: str, case: str, detail: str = "") -> Verdict:
    return Verdict(contract=contract, case=case, status="pass", detail=detail)


def _failed(contract: str, case: str, detail: str) -> Verdict:
    return Verdict(contract=contract, case=case, status="fail", detail=detail)


def _skipped(contract: str, case: str, detail: str) -> Verdict:
    return Verdict(contract=contract, case=case, status="skip", detail=detail)


# ---------------------------------------------------------------------------
# shared pairing helpers
# ---------------------------------------------------------------------------


def _trace_fingerprint(sim: Simulator) -> List[tuple]:
    return _comparable_trace_rows(sim.trace)


def _first_divergence(rows_a: List[tuple], rows_b: List[tuple]) -> str:
    """Describe where two comparable-trace-row lists part ways."""
    if len(rows_a) != len(rows_b):
        return f"trace lengths differ ({len(rows_a)} vs {len(rows_b)} rounds)"
    for a, b in zip(rows_a, rows_b):
        if a != b:
            parts = []
            if a[1] != b[1]:
                parts.append("nodes")
            if a[2] != b[2]:
                parts.append("edges")
            if a[3] != b[3]:
                parts.append("outputs")
            if a[4] != b[4]:
                parts.append("metrics")
            return f"round {a[0]} differs in {', '.join(parts) or 'unknown fields'}"
    return "metric rows differ"


# ---------------------------------------------------------------------------
# delta-vs-snapshot: every registered adversary
# ---------------------------------------------------------------------------

# Default parameter sets for the built-in adversaries (mirrors the
# equivalence test matrix).  Adversaries registered later — plugins, test
# doubles — fall back to parameter-less construction and are skipped when
# that fails, so the contract always covers the *current* registry.
_ADVERSARY_DEFAULTS: Dict[str, ComponentSpec] = {
    "static": component("static"),
    "flip-churn": component("flip-churn", flip_prob=0.1),
    "markov-churn": component("markov-churn", p_off=0.05, p_on=0.05),
    "burst-churn": component("burst-churn", burst_prob=0.3, drop_fraction=0.5),
    "edge-insertion": component("edge-insertion", insertions_per_round=2, lifetime=2),
    "targeted-coloring": component("targeted-coloring", attacks_per_round=2, lifetime=4),
    "targeted-mis": component("targeted-mis", mode="cut_notification", attacks_per_round=3),
    "locally-static": component("locally-static", flip_prob=0.1, protected_radius=2),
    "freeze-after": component(
        "freeze-after",
        inner={"name": "flip-churn", "params": {"flip_prob": 0.2}},
        freeze_round=12,
    ),
    "mobility": component("mobility", radius=0.3, speed=0.05),
    "phase": component(
        "phase",
        phases=[
            [6, {"name": "flip-churn", "params": {"flip_prob": 0.2}}],
            [6, {"name": "edge-insertion", "params": {"insertions_per_round": 2, "lifetime": 2}}],
            [None, "static"],
        ],
    ),
    "composite-churn": component(
        "composite-churn",
        processes=[
            {"kind": "flip", "flip_prob": 0.1},
            {"kind": "edge-insertion", "insertions_per_round": 1, "lifetime": 3},
        ],
    ),
}

#: Adversaries that only make sense against a specific problem.
_ALGORITHM_FOR: Dict[str, str] = {
    "targeted-coloring": "dcolor",
    "targeted-mis": "smis",
}


@CONTRACTS.register("delta-vs-snapshot")
def _contract_delta_vs_snapshot(ctx: VerifyContext) -> Iterator[Verdict]:
    """Every registered adversary's delta path is byte-identical to its snapshot path."""
    name = "delta-vs-snapshot"
    n = 24 if ctx.smoke else 40
    rounds = 12 if ctx.smoke else 30
    seeds = (0, 1) if ctx.smoke else (0, 1, 2)
    for adversary_name in ADVERSARIES.available():
        adversary = _ADVERSARY_DEFAULTS.get(adversary_name, component(adversary_name))
        spec = ScenarioSpec(
            n=n,
            algorithm=_ALGORITHM_FOR.get(adversary_name, "dynamic-coloring"),
            adversary=adversary,
            rounds=rounds,
            seeds=seeds,
            # The classic full engine: the comparison isolates the
            # adversary's emission path from delivery-path effects.
            delivery="full",
        )
        try:
            verdict = _compare_emission_paths(name, adversary_name, spec)
        except TypeError as exc:
            verdict = _skipped(name, adversary_name, f"needs parameters ({exc})")
        yield verdict


def _compare_emission_paths(contract: str, case: str, spec: ScenarioSpec) -> Verdict:
    for seed in spec.seeds:
        with delta_emission(True):
            row_delta, sim_delta = _execute_seed(spec, seed)
        with delta_emission(False):
            row_snapshot, sim_snapshot = _execute_seed(spec, seed)
        rows_delta = _trace_fingerprint(sim_delta)
        rows_snapshot = _trace_fingerprint(sim_snapshot)
        if rows_delta != rows_snapshot or row_delta != row_snapshot:
            return _failed(
                contract,
                case,
                f"delta path diverges from snapshot path (seed {seed}): "
                + _first_divergence(rows_delta, rows_snapshot),
            )
    return _passed(contract, case, f"{len(spec.seeds)} shared seeds byte-identical")


# ---------------------------------------------------------------------------
# delivery-equivalence: full vs incremental vs kernel
# ---------------------------------------------------------------------------


@CONTRACTS.register("delivery-equivalence")
def _contract_delivery_equivalence(ctx: VerifyContext) -> Iterator[Verdict]:
    """Full, incremental and kernel delivery produce byte-identical traces."""
    name = "delivery-equivalence"
    n = 24 if ctx.smoke else 48
    rounds = 10 if ctx.smoke else 24
    seeds = (0, 1) if ctx.smoke else (0, 1, 2)
    cases: List[Tuple[str, ComponentSpec]] = [
        ("scolor", component("markov-churn", p_off=0.05, p_on=0.05)),
        ("smis", component("flip-churn", flip_prob=0.1)),
    ]
    for algorithm, adversary in cases:
        spec = ScenarioSpec(
            n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seeds=seeds
        )
        for path in ("incremental", "kernel"):
            case = f"{algorithm}/{adversary.name}:{path}"
            yield _compare_delivery(name, case, spec, path)


def _compare_delivery(contract: str, case: str, spec: ScenarioSpec, path: str) -> Verdict:
    for seed in spec.seeds:
        with delivery_mode("full"):
            row_full, sim_full = _execute_seed(spec, seed)
        with delivery_mode(path):
            row_fast, sim_fast = _execute_seed(spec, seed)
        if sim_fast.delivery != path:
            # Loud, not silent: the candidate path was refused (no pure
            # contract / no kernel) and the comparison would be vacuous.
            return _skipped(
                contract,
                case,
                f"{path!r} delivery unavailable for {spec.algorithm.name!r} "
                f"— engine degraded to {sim_fast.delivery!r}",
            )
        rows_full = _trace_fingerprint(sim_full)
        rows_fast = _trace_fingerprint(sim_fast)
        if rows_full != rows_fast or row_full != row_fast:
            return _failed(
                contract,
                case,
                f"{path} delivery diverges from the full path (seed {seed}): "
                + _first_divergence(rows_fast, rows_full),
            )
    return _passed(contract, case, f"{len(spec.seeds)} shared seeds byte-identical")


# ---------------------------------------------------------------------------
# backend-equivalence: serial vs every exec backend
# ---------------------------------------------------------------------------


@CONTRACTS.register("backend-equivalence")
def _contract_backend_equivalence(ctx: VerifyContext) -> Iterator[Verdict]:
    """Every execution backend reproduces the serial loop's rows byte for byte."""
    name = "backend-equivalence"
    spec = ScenarioSpec(
        n=20 if ctx.smoke else 32,
        algorithm="dynamic-coloring",
        adversary=component("flip-churn", flip_prob=0.1),
        rounds=10 if ctx.smoke else 20,
        seeds=(0, 1) if ctx.smoke else (0, 1, 2, 3),
        metrics=(component("stability"),),
    )
    reference = run_scenario(spec, execution="serial").rows
    backends = ["thread", "process"] if ctx.smoke else ["thread", "process", "local-cluster"]
    for backend in backends:
        rows = run_scenario(spec, execution=backend).rows
        if rows != reference:
            yield _failed(name, backend, f"{backend!r} rows differ from the serial loop")
        else:
            yield _passed(name, backend, f"{len(rows)} rows byte-identical to serial")
    # No silent caps: the remote backend needs transport endpoints this
    # harness does not own; the fabric-smoke CI job covers it end to end.
    yield _skipped(name, "remote", "needs transport endpoints — covered by the fabric-smoke job")


# ---------------------------------------------------------------------------
# relabel-isomorphism (metamorphic)
# ---------------------------------------------------------------------------


class _ReplayAdversary(Adversary):
    """Replays a prerecorded topology sequence (already relabeled)."""

    obliviousness = FULLY_OBLIVIOUS

    def __init__(self, topologies: Sequence[Topology]) -> None:
        self._topologies = list(topologies)

    def step(self, view: AdversaryView) -> Topology:
        return self._topologies[view.round_index - 1]

    def describe(self) -> str:
        return f"ReplayAdversary({len(self._topologies)} rounds)"


class _RelabeledAlgorithm(DistributedAlgorithm):
    """Runs ``inner`` under a node relabeling, translating at the API boundary.

    The simulator speaks permuted labels; the inner algorithm keeps the
    original ones (so its per-node random streams are untouched).  A
    conforming algorithm's behaviour may depend on node identity only through
    the opaque ids in its inboxes — never on the simulator's iteration order
    over the (now differently-hashed) awake sets — which is exactly the
    invariance this wrapper makes observable.
    """

    message_stability = "none"  # pin the classic full engine

    def __init__(self, inner: DistributedAlgorithm, to_original: Mapping[NodeId, NodeId]) -> None:
        super().__init__()
        self._inner = inner
        self._to_original = dict(to_original)

    def setup(self, setup) -> None:
        super().setup(setup)
        self._inner.setup(setup)

    def on_wake(self, v: NodeId) -> None:
        self._inner.wake(self._to_original[v])

    def begin_round(self, round_index: int) -> None:
        self._inner.begin_round(round_index)

    def compose(self, v: NodeId) -> Message:
        return self._inner.compose(self._to_original[v])

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        translated = {self._to_original[u]: message for u, message in inbox.items()}
        self._inner.deliver(self._to_original[v], translated)

    def end_round(self, round_index: int) -> None:
        self._inner.end_round(round_index)

    def output(self, v: NodeId):
        return self._inner.output(self._to_original[v])

    def metrics(self) -> Mapping[str, float]:
        return self._inner.metrics()

    def state_summary(self) -> Any:
        return self._inner.state_summary()


def _permute_rows(rows: List[tuple], mapping: Mapping[NodeId, NodeId]) -> List[tuple]:
    """Map comparable trace rows through a node relabeling."""
    permuted = []
    for round_index, nodes, edges, outputs, metrics in rows:
        permuted.append(
            (
                round_index,
                frozenset(mapping[v] for v in nodes),
                frozenset(canonical_edge(mapping[u], mapping[v]) for u, v in edges),
                {mapping[v]: value for v, value in outputs.items()},
                metrics,
            )
        )
    return permuted


@CONTRACTS.register("relabel-isomorphism")
def _contract_relabel_isomorphism(ctx: VerifyContext) -> Iterator[Verdict]:
    """Permuting node labels permutes the trace rows exactly — and nothing else."""
    name = "relabel-isomorphism"
    n = 20 if ctx.smoke else 32
    rounds = 10 if ctx.smoke else 20
    seeds = (0, 1) if ctx.smoke else (0, 1, 2)
    cases: List[Tuple[str, ComponentSpec]] = [
        ("dynamic-coloring", component("flip-churn", flip_prob=0.1)),
        ("smis", component("markov-churn", p_off=0.05, p_on=0.05)),
    ]
    for algorithm, adversary in cases:
        spec = ScenarioSpec(
            n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seeds=seeds
        )
        yield _compare_relabeled(name, f"{algorithm}/{adversary.name}", spec)


def _compare_relabeled(contract: str, case: str, spec: ScenarioSpec) -> Verdict:
    for seed in spec.seeds:
        base_ctx = _build_context(spec, seed)
        base_sim = Simulator(
            n=base_ctx.n,
            algorithm=base_ctx.algorithm,
            adversary=base_ctx.adversary,
            seed=base_ctx.seed,
            delivery="full",
        )
        base_sim.run(base_ctx.rounds)
        base_rows = _trace_fingerprint(base_sim)

        permutation = base_ctx.stream("verify", "relabel").permutation(spec.n)
        to_permuted = {v: int(permutation[v]) for v in range(spec.n)}
        to_original = {pv: v for v, pv in to_permuted.items()}

        relabeled_topologies = [
            Topology(
                (to_permuted[v] for v in record.topology.nodes),
                ((to_permuted[u], to_permuted[v]) for u, v in record.topology.edges),
            )
            for record in base_sim.trace
        ]
        # A second context from the same seed: the inner algorithm draws the
        # byte-identical per-node streams the base run consumed.
        replay_ctx = _build_context(spec, seed)
        relabeled_sim = Simulator(
            n=spec.n,
            algorithm=_RelabeledAlgorithm(replay_ctx.algorithm, to_original),
            adversary=_ReplayAdversary(relabeled_topologies),
            seed=seed,
            delivery="full",
        )
        relabeled_sim.run(len(relabeled_topologies))

        expected = _permute_rows(base_rows, to_permuted)
        actual = _trace_fingerprint(relabeled_sim)
        if actual != expected:
            return _failed(
                contract,
                case,
                f"relabeled trace is not the permuted base trace (seed {seed}): "
                + _first_divergence(actual, expected),
            )
    return _passed(contract, case, f"{len(spec.seeds)} seeds map back exactly")


# ---------------------------------------------------------------------------
# scale-equivalence: churn rate vs window scale (statistical)
# ---------------------------------------------------------------------------


def _per_window_exposure(sim: Simulator, T1: int) -> Tuple[float, float]:
    """(edge churn, output changes) per stability window, averaged over rounds.

    Round 1 is excluded: it wakes the whole graph at once, which is start-up,
    not churn.
    """
    records = list(sim.trace)
    churn_total = 0
    changes_total = 0
    previous_edges = records[0].topology.edges
    for record in records[1:]:
        churn_total += len(record.topology.edges ^ previous_edges)
        previous_edges = record.topology.edges
        changes_total += record.metrics.outputs_changed
    steady_rounds = max(1, len(records) - 1)
    return (
        churn_total / steady_rounds * T1,
        changes_total / steady_rounds * T1,
    )


@CONTRACTS.register("scale-equivalence")
def _contract_scale_equivalence(ctx: VerifyContext) -> Iterator[Verdict]:
    """Halving the churn rate while doubling ``window_scale`` preserves per-window exposure."""
    name = "scale-equivalence"
    n = 32
    flip = 0.08
    seeds = (0, 1, 2) if ctx.smoke else (0, 1, 2, 3, 4, 5)

    def build(flip_prob: float, scale: float) -> ScenarioSpec:
        return ScenarioSpec(
            n=n,
            algorithm="dynamic-coloring",
            adversary=component("flip-churn", flip_prob=flip_prob),
            rounds="4*T1",
            seeds=seeds,
            window_scale=scale,
        )

    spec_fast = build(flip, 1.0)
    spec_slow = build(flip / 2.0, 2.0)
    churn: Dict[str, List[float]] = {"fast": [], "slow": []}
    changes: Dict[str, List[float]] = {"fast": [], "slow": []}
    for label, spec in (("fast", spec_fast), ("slow", spec_slow)):
        T1 = spec.resolved_window()
        for seed in seeds:
            _, sim = _execute_seed(spec, seed)
            per_window_churn, per_window_changes = _per_window_exposure(sim, T1)
            churn[label].append(per_window_churn)
            changes[label].append(per_window_changes)

    def relative_gap(a: List[float], b: List[float]) -> float:
        mean_a = sum(a) / len(a)
        mean_b = sum(b) / len(b)
        return abs(mean_a - mean_b) / max(mean_a, mean_b, 1e-9)

    churn_gap = relative_gap(churn["fast"], churn["slow"])
    changes_gap = relative_gap(changes["fast"], changes["slow"])
    detail = (
        f"per-window edge churn gap {churn_gap:.2%}, "
        f"per-window output-change gap {changes_gap:.2%} over {len(seeds)} shared seeds"
    )
    # The environmental knob (adversarial churn per window) is what the
    # scaling must hold exactly in expectation; the algorithm's response is
    # gated loosely — it only guards against gross non-linearity.
    if churn_gap > 0.25:
        yield _failed(name, "edge-churn-per-window", detail)
    else:
        yield _passed(name, "edge-churn-per-window", detail)
    if changes_gap > 0.75:
        yield _failed(name, "output-changes-per-window", detail)
    else:
        yield _passed(name, "output-changes-per-window", detail)


# ---------------------------------------------------------------------------
# time-scaling (metamorphic)
# ---------------------------------------------------------------------------


@CONTRACTS.register("time-scaling")
def _contract_time_scaling(ctx: VerifyContext) -> Iterator[Verdict]:
    """``window``/``window_scale`` reach the engine: run lengths scale proportionally."""
    name = "time-scaling"
    n = 24
    adversary = component("flip-churn", flip_prob=0.05)
    for scale in (0.5, 2.0):
        case = f"window_scale={scale}"
        spec = ScenarioSpec(
            n=n,
            algorithm="dynamic-coloring",
            adversary=adversary,
            rounds="2*T1",
            seeds=(0,),
            window_scale=scale,
        )
        expected_window = window_for(n, scale)
        if spec.resolved_window() != expected_window:
            yield _failed(
                name,
                case,
                f"resolved_window() = {spec.resolved_window()}, expected {expected_window}",
            )
            continue
        build_ctx = _build_context(spec, 0)
        if build_ctx.T1 != expected_window or build_ctx.rounds != 2 * expected_window:
            yield _failed(
                name,
                case,
                f"context resolved T1={build_ctx.T1}, rounds={build_ctx.rounds}; "
                f"expected T1={expected_window}, rounds={2 * expected_window}",
            )
            continue
        _, sim = _execute_seed(spec, 0)
        if sim.trace.num_rounds != 2 * expected_window:
            yield _failed(
                name,
                case,
                f"engine simulated {sim.trace.num_rounds} rounds, "
                f"expected {2 * expected_window} — the window knob did not reach it",
            )
            continue
        yield _passed(name, case, f"T1={expected_window}, {sim.trace.num_rounds} rounds simulated")
    # The unscaled anchors the proportionality claim.
    base = ScenarioSpec(n=n, algorithm="dynamic-coloring", adversary=adversary, seeds=(0,))
    if base.resolved_window() != default_window(n):
        yield _failed(
            name,
            "default-window",
            f"resolved_window() = {base.resolved_window()}, expected {default_window(n)}",
        )
    else:
        yield _passed(name, "default-window", f"default_window({n}) = {default_window(n)}")
    explicit = base.replace(window=17)
    if explicit.resolved_window() != 17:
        yield _failed(
            name, "explicit-window", f"resolved_window() = {explicit.resolved_window()}, expected 17"
        )
    else:
        yield _passed(name, "explicit-window", "explicit window wins over defaults")


# ---------------------------------------------------------------------------
# manipulation-exists: every committed override reaches a component
# ---------------------------------------------------------------------------

_SPEC_FIELDS = frozenset(f.name for f in ScenarioSpec.__dataclass_fields__.values())

_COMPONENT_REGISTRY: Dict[str, Registry] = {
    "topology": TOPOLOGIES,
    "adversary": ADVERSARIES,
    "algorithm": ALGORITHMS,
    "wakeup": WAKEUPS,
    "probe": PROBES,
    "stop": STOP_CONDITIONS,
}


def _accepted_parameters(factory) -> Optional[frozenset]:
    """Keyword parameters a component factory accepts (``None`` = unverifiable).

    The leading context arguments (``ctx`` / ``n, rng``) are positional by
    convention; a spec's ``params`` arrive as keywords, so the accepted set is
    every keyword-only parameter plus positional-or-keyword parameters with
    defaults.  A ``**kwargs`` factory can absorb anything — unverifiable.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return None
    accepted = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind is inspect.Parameter.KEYWORD_ONLY:
            accepted.add(parameter.name)
        elif (
            parameter.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
            and parameter.default is not inspect.Parameter.empty
        ):
            accepted.add(parameter.name)
    return frozenset(accepted)


def _component_param_problems(role: str, registry: Registry, ref: Optional[ComponentSpec]):
    if ref is None or ref.name not in registry or not ref.params:
        return
    accepted = _accepted_parameters(registry.get(ref.name))
    if accepted is None:
        return
    for key in sorted(ref.params):
        if key not in accepted:
            hint = suggestion_hint(key, accepted)
            yield (
                f"{role} {ref.name!r} does not accept parameter {key!r}{hint} "
                f"(accepted: {sorted(accepted)}) — the manipulation silently doesn't exist"
            )


def _spec_param_problems(spec: ScenarioSpec) -> List[str]:
    problems: List[str] = []
    problems.extend(_component_param_problems("topology", TOPOLOGIES, spec.topology))
    problems.extend(_component_param_problems("adversary", ADVERSARIES, spec.adversary))
    problems.extend(_component_param_problems("algorithm", ALGORITHMS, spec.algorithm))
    problems.extend(_component_param_problems("wakeup", WAKEUPS, spec.wakeup))
    problems.extend(_component_param_problems("probe", PROBES, spec.probe))
    problems.extend(_component_param_problems("stop condition", STOP_CONDITIONS, spec.stop))
    for index, metric in enumerate(spec.metrics):
        problems.extend(_component_param_problems(f"metrics[{index}]", METRICS, metric))
    return problems


def _sweep_axis_problems(spec: ScenarioSpec, over: Mapping[str, Sequence[Any]]) -> List[str]:
    problems: List[str] = []
    for axis in over:
        parts = axis.split(".")
        if len(parts) == 1:
            if parts[0] not in _SPEC_FIELDS:
                hint = suggestion_hint(parts[0], _SPEC_FIELDS)
                problems.append(
                    f"sweep axis {axis!r} is not a ScenarioSpec field{hint} "
                    f"— the manipulation silently doesn't exist"
                )
            continue
        if len(parts) == 3 and parts[1] == "params" and parts[0] in _COMPONENT_REGISTRY:
            registry = _COMPONENT_REGISTRY[parts[0]]
            ref = getattr(spec, parts[0])
            if ref is None or ref.name not in registry:
                continue  # validate_config already reports the broken slot
            accepted = _accepted_parameters(registry.get(ref.name))
            if accepted is not None and parts[2] not in accepted:
                hint = suggestion_hint(parts[2], accepted)
                problems.append(
                    f"sweep axis {axis!r}: {parts[0]} {ref.name!r} does not accept "
                    f"parameter {parts[2]!r}{hint} (accepted: {sorted(accepted)})"
                )
    return problems


@CONTRACTS.register("manipulation-exists")
def _contract_manipulation_exists(ctx: VerifyContext) -> Iterator[Verdict]:
    """Every override in the committed configs reaches a registered component."""
    name = "manipulation-exists"
    configs_dir = Path(ctx.configs_dir)
    if not configs_dir.is_dir():
        yield _skipped(name, str(configs_dir), "configs directory does not exist")
        return
    paths = sorted(configs_dir.rglob("*.json"))
    if not paths:
        yield _skipped(name, str(configs_dir), "no JSON configs found")
        return
    for path in paths:
        case = str(path)
        try:
            config = load_config(path)
        except ConfigurationError as exc:
            yield _failed(name, case, f"does not load: {exc}")
            continue
        problems = list(validate_config(config))
        spec = getattr(config, "spec", None)
        if spec is not None:
            problems.extend(_spec_param_problems(spec))
        over = getattr(config, "over", None)
        if over:
            problems.extend(_sweep_axis_problems(spec, over))
        if problems:
            yield _failed(name, case, "; ".join(problems))
        else:
            yield _passed(name, case, "every override reaches a registered component")
