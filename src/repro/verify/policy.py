"""The :class:`VerificationPolicy`: *which* delivery paths are verified in-run.

The scenario executor can re-run any seed that executed on a fast delivery
path (``incremental`` / ``kernel``) on the authoritative full path and demand
byte-identical traces (see
:func:`repro.scenarios.executor.run_scenario_seed`).  Historically that gate
was switched on through two ad-hoc environment variables
(``REPRO_VERIFY_INCREMENTAL`` / ``REPRO_VERIFY_KERNEL``); this module
replaces them with a first-class policy object, mirroring how
:class:`repro.exec.policy.ExecutionPolicy` replaced ad-hoc execution knobs.

Policies come from three places, in increasing precedence:

1. the deprecated environment aliases (``REPRO_VERIFY_INCREMENTAL=1`` /
   ``REPRO_VERIFY_KERNEL=1`` — still honoured, with a
   :class:`DeprecationWarning`),
2. the canonical ``REPRO_VERIFY`` environment variable (a comma-separated
   subset of ``incremental,kernel``, or ``none``) — this is also the
   transport that carries an installed policy into pooled/spawned worker
   processes,
3. an ambient policy installed with :func:`use_verification` — which is how
   the CLI's ``--verify`` flag and a config's ``"verification"`` block reach
   every seed of a run.

:func:`active_verification` resolves that precedence; the executor calls it
once per seed, in whichever process the seed runs.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "VERIFY_ENV",
    "VERIFY_INCREMENTAL_ENV",
    "VERIFY_KERNEL_ENV",
    "VerificationPolicy",
    "active_verification",
    "current_verification",
    "parse_verify_spec",
    "use_verification",
    "verification_from_mapping",
]

#: Canonical environment variable: a comma-separated subset of the
#: verifiable paths (``"incremental,kernel"``), or ``"none"``.
VERIFY_ENV = "REPRO_VERIFY"

#: Deprecated alias: ``REPRO_VERIFY_INCREMENTAL=1`` ≙ ``--verify incremental``.
VERIFY_INCREMENTAL_ENV = "REPRO_VERIFY_INCREMENTAL"

#: Deprecated alias: ``REPRO_VERIFY_KERNEL=1`` ≙ ``--verify kernel``.
VERIFY_KERNEL_ENV = "REPRO_VERIFY_KERNEL"

#: The delivery paths an in-run equivalence gate exists for (the full path
#: is the reference, so there is nothing to verify it against).
VERIFIABLE_PATHS: Tuple[str, ...] = ("incremental", "kernel")

#: Keys a ``"verification"`` config block may contain.
_POLICY_KEYS = frozenset(VERIFIABLE_PATHS)

#: Tokens ``--verify`` / ``REPRO_VERIFY`` accept.
_SPEC_TOKENS: Tuple[str, ...] = VERIFIABLE_PATHS + ("none",)


@dataclass(frozen=True)
class VerificationPolicy:
    """Which delivery paths are re-verified against the full path in-run.

    Parameters
    ----------
    incremental:
        Re-run every seed that executed on the incremental delivery path on
        the full path and demand byte-identical traces (catches an algorithm
        whose declared ``"pure"`` message-stability contract is wrong).
    kernel:
        The same gate for the array-kernel path (catches a vectorised kernel
        drifting from its reference algorithm).
    """

    incremental: bool = False
    kernel: bool = False

    def __post_init__(self) -> None:
        for field_name in VERIFIABLE_PATHS:
            value = getattr(self, field_name)
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"verification flag {field_name!r} must be a boolean, got {value!r}"
                )

    @property
    def enabled(self) -> bool:
        """Whether any path is verified at all."""
        return self.incremental or self.kernel

    def modes(self) -> Tuple[str, ...]:
        """The verified paths, in canonical order (``()`` when disabled)."""
        return tuple(path for path in VERIFIABLE_PATHS if getattr(self, path))

    def wants(self, path: str) -> bool:
        """Whether a seed that ran on delivery ``path`` must be verified."""
        return path in VERIFIABLE_PATHS and bool(getattr(self, path))

    def to_spec(self) -> str:
        """The ``--verify`` / ``REPRO_VERIFY`` spelling of this policy."""
        return ",".join(self.modes()) or "none"

    def replace(self, **changes: Any) -> "VerificationPolicy":
        """Field-level copy-and-update."""
        return replace(self, **changes)


def _suggestion(name: object, candidates) -> str:
    from repro.scenarios.registry import suggestion_hint

    return suggestion_hint(name, candidates)


def parse_verify_spec(value: str, *, where: str = "--verify") -> VerificationPolicy:
    """Parse a ``--verify`` flag / ``REPRO_VERIFY`` value into a policy.

    Accepts a comma-separated subset of ``incremental,kernel`` or the single
    token ``none`` (an explicit "verify nothing", which beats the deprecated
    environment aliases).  Unknown tokens fail loudly with near-miss
    suggestions, matching the config-validation story.
    """
    if not isinstance(value, str):
        raise ConfigurationError(f"{where} must be a string, got {value!r}")
    tokens = [token.strip() for token in value.split(",") if token.strip()]
    if not tokens:
        raise ConfigurationError(
            f"{where} needs at least one of {', '.join(_SPEC_TOKENS)}; got {value!r}"
        )
    for token in tokens:
        if token not in _SPEC_TOKENS:
            hint = _suggestion(token, _SPEC_TOKENS)
            raise ConfigurationError(
                f"{where}: unknown verification mode {token!r}{hint}; "
                f"accepted: {', '.join(_SPEC_TOKENS)}"
            )
    if "none" in tokens:
        if len(tokens) > 1:
            raise ConfigurationError(
                f"{where}: 'none' cannot be combined with other modes, got {value!r}"
            )
        return VerificationPolicy()
    return VerificationPolicy(**{path: path in tokens for path in VERIFIABLE_PATHS})


def verification_from_mapping(
    data: Mapping[str, Any], *, where: str = "'verification' block"
) -> VerificationPolicy:
    """Build a policy from a config file's ``"verification"`` block.

    The block carries one boolean per verifiable path, e.g.
    ``{"kernel": true}``.  Unknown keys fail loudly with "did you mean …?"
    near-miss suggestions, exactly like the ``"execution"`` block.
    """
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{where} must be a JSON object, got {data!r}")
    unknown = set(data) - _POLICY_KEYS
    if unknown:
        hints = "".join(_suggestion(key, _POLICY_KEYS) for key in sorted(unknown))
        raise ConfigurationError(
            f"{where} has unknown keys {sorted(unknown)}{hints} "
            f"(accepted: {sorted(_POLICY_KEYS)})"
        )
    for key, value in data.items():
        if not isinstance(value, bool):
            raise ConfigurationError(f"{where}: {key!r} must be a boolean, got {value!r}")
    return VerificationPolicy(**{path: bool(data.get(path, False)) for path in VERIFIABLE_PATHS})


# ---------------------------------------------------------------------------
# the ambient policy
# ---------------------------------------------------------------------------

_CURRENT: ContextVar[Optional[VerificationPolicy]] = ContextVar(
    "repro_verification_policy", default=None
)


def current_verification() -> Optional[VerificationPolicy]:
    """The ambient policy installed by :func:`use_verification` (``None`` outside)."""
    return _CURRENT.get()


@contextmanager
def use_verification(policy: VerificationPolicy) -> Iterator[VerificationPolicy]:
    """Install ``policy`` as the ambient verification policy for the block.

    Besides the in-process context variable, the canonical ``REPRO_VERIFY``
    environment variable is set to the policy's spec for the duration of the
    block: worker processes of the pooled/spawned execution backends inherit
    the environment, so a ``--verify`` flag reaches every seed no matter
    which process it runs in (the same transport ``REPRO_DELIVERY`` uses).
    """
    token = _CURRENT.set(policy)
    previous = os.environ.get(VERIFY_ENV)
    os.environ[VERIFY_ENV] = policy.to_spec()
    try:
        yield policy
    finally:
        _CURRENT.reset(token)
        if previous is None:
            os.environ.pop(VERIFY_ENV, None)
        else:
            os.environ[VERIFY_ENV] = previous


def _flag(env: str) -> bool:
    return os.environ.get(env, "").strip() not in ("", "0")


def active_verification() -> VerificationPolicy:
    """The policy in force for the current seed execution.

    Precedence, highest first: the ambient :func:`use_verification` policy,
    the canonical ``REPRO_VERIFY`` environment variable, then the deprecated
    per-path aliases (which emit a :class:`DeprecationWarning` and map onto
    the equivalent policy — behaviourally identical to the old env gates).
    """
    ambient = current_verification()
    if ambient is not None:
        return ambient
    raw = os.environ.get(VERIFY_ENV, "").strip()
    if raw:
        return parse_verify_spec(raw, where=VERIFY_ENV)
    incremental = _flag(VERIFY_INCREMENTAL_ENV)
    kernel = _flag(VERIFY_KERNEL_ENV)
    if incremental or kernel:
        aliases = [
            env
            for env, set_ in (
                (VERIFY_INCREMENTAL_ENV, incremental),
                (VERIFY_KERNEL_ENV, kernel),
            )
            if set_
        ]
        policy = VerificationPolicy(incremental=incremental, kernel=kernel)
        verb = "is a deprecated alias" if len(aliases) == 1 else "are deprecated aliases"
        warnings.warn(
            f"{' and '.join(aliases)} {verb}; use the --verify "
            f"{policy.to_spec()} CLI flag, a config's \"verification\" block, or "
            f"{VERIFY_ENV}={policy.to_spec()} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return policy
    return VerificationPolicy()
