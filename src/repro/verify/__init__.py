"""Verification: the :class:`VerificationPolicy` API and the contract suite.

Two layers live here:

* :mod:`repro.verify.policy` — *in-run* verification: which delivery paths
  every seed execution re-checks against the authoritative full path
  (``--verify incremental,kernel``, the ``"verification"`` config block, the
  ``REPRO_VERIFY`` environment variable and its deprecated per-path aliases).
* :mod:`repro.verify.contracts` / :mod:`repro.verify.harness` — *offline*
  validation: the observational-equivalence contracts and metamorphic
  properties behind ``repro verify``.

The policy symbols are imported eagerly (the scenario executor needs them on
its hot path); the contract suite loads lazily on first attribute access so
importing :mod:`repro.scenarios` never drags in the full harness.
"""

from repro.verify.policy import (
    VERIFY_ENV,
    VERIFY_INCREMENTAL_ENV,
    VERIFY_KERNEL_ENV,
    VerificationPolicy,
    active_verification,
    current_verification,
    parse_verify_spec,
    use_verification,
    verification_from_mapping,
)

__all__ = [
    "CONTRACTS",
    "VERIFY_ENV",
    "VERIFY_INCREMENTAL_ENV",
    "VERIFY_KERNEL_ENV",
    "Verdict",
    "VerificationPolicy",
    "VerifyContext",
    "active_verification",
    "current_verification",
    "parse_verify_spec",
    "run_verify",
    "use_verification",
    "verification_from_mapping",
    "verify_store_target",
]

_LAZY = {
    "CONTRACTS": "repro.verify.contracts",
    "Verdict": "repro.verify.contracts",
    "VerifyContext": "repro.verify.contracts",
    "run_verify": "repro.verify.harness",
    "verify_store_target": "repro.verify.harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
