"""Drives the contract suite and shapes its verdicts for the results store.

:func:`run_verify` is the engine behind ``repro verify``: it resolves the
requested contracts against the ``CONTRACTS`` registry (unknown names fail
with near-miss suggestions, like every other registry lookup), runs each one,
and returns the flat verdict list.  A contract that crashes — as opposed to
one that *finds* a violation — is itself a failure: the harness converts the
exception into a ``fail`` verdict instead of aborting the sweep, so one
broken contract never hides another's result.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.verify.contracts import CONTRACTS, Verdict, VerifyContext

__all__ = ["run_verify", "verify_store_target"]

_SUITES = ("smoke", "full")


def run_verify(
    *,
    suite: str = "smoke",
    contracts: Optional[Sequence[str]] = None,
    configs_dir: Union[str, Path] = "configs",
    progress: bool = False,
    progress_stream: Any = None,
) -> List[Verdict]:
    """Run the validation contracts and return every verdict.

    ``suite`` selects the case sizes (``"smoke"`` is the fast CI subset,
    ``"full"`` widens seeds and node counts); ``contracts`` restricts the run
    to the named contracts (default: all registered ones, in sorted order).
    ``progress=True`` renders a live contract counter with a rate-derived
    ETA (``repro verify --suite full`` turns it on by default — the full
    suite runs for minutes and used to run silent).
    """
    from repro.errors import ConfigurationError
    from repro.exec.progress import ProgressReporter
    from repro.exec.stats import RateEstimator

    if suite not in _SUITES:
        raise ConfigurationError(f"unknown verify suite {suite!r} (expected one of {_SUITES})")
    names = list(contracts) if contracts is not None else list(CONTRACTS.available())
    factories = [(name, CONTRACTS.get(name)) for name in names]
    ctx = VerifyContext(suite=suite, configs_dir=Path(configs_dir))
    estimator = RateEstimator()
    reporter_kwargs: Dict[str, Any] = {} if progress_stream is None else {
        "stream": progress_stream
    }
    reporter = ProgressReporter(
        len(factories),
        label=f"verify[{suite}]",
        enabled=progress,
        rate_source=estimator,
        **reporter_kwargs,
    )
    verdicts: List[Verdict] = []
    for name, factory in factories:
        try:
            produced = list(factory(ctx))
        except Exception as exc:  # noqa: BLE001 - a crash is a finding, not an abort
            verdicts.append(
                Verdict(
                    contract=name,
                    case="(contract crashed)",
                    status="fail",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            estimator.observe_batch(1)
            reporter.update(1)
            continue
        if not produced:
            verdicts.append(
                Verdict(
                    contract=name,
                    case="(no cases)",
                    status="fail",
                    detail="contract produced no verdicts — a vacuous pass is not a pass",
                )
            )
            estimator.observe_batch(1)
            reporter.update(1)
            continue
        verdicts.extend(produced)
        estimator.observe_batch(1)
        reporter.update(1)
    reporter.finish()
    return verdicts


def verify_store_target(
    suite: str, contracts: Optional[Sequence[str]] = None
) -> Tuple[str, str, Dict[str, Any]]:
    """The results-store ``(kind, label, key)`` of one verify run.

    Single source of truth shared by ``repro verify``'s write path and
    ``repro gc``'s root set, mirroring the CLI's ``_store_target``.
    """
    return (
        "verify",
        f"verify-{suite}",
        {
            "kind": "verify",
            "suite": suite,
            "contracts": None if contracts is None else sorted(contracts),
        },
    )
