"""Per-round execution metrics.

The simulator records a :class:`RoundMetrics` per round: message counts and
sizes (for experiment E12), output-change counts (for the stability
experiments) and any algorithm-specific counters exposed through
:meth:`repro.runtime.algorithm.DistributedAlgorithm.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["RoundMetrics"]


@dataclass(frozen=True)
class RoundMetrics:
    """Aggregated statistics of a single simulated round.

    Attributes
    ----------
    round_index:
        The round these metrics belong to.
    num_awake:
        Number of awake nodes.
    num_edges:
        Number of edges in the round's communication graph.
    messages_sent:
        Number of (node, broadcast) messages composed (= awake nodes).
    messages_delivered:
        Total number of (sender, receiver) deliveries (= 2 · num_edges).
    max_message_bits:
        Estimated size of the largest message composed this round.
    total_message_bits:
        Sum of the estimated sizes of all composed messages.
    outputs_changed:
        Number of nodes whose output differs from the previous round
        (newly awake nodes count as changed when their first output is not ⊥).
    algorithm_counters:
        Extra counters reported by the algorithm.
    """

    round_index: int
    num_awake: int
    num_edges: int
    messages_sent: int
    messages_delivered: int
    max_message_bits: int
    total_message_bits: int
    outputs_changed: int
    algorithm_counters: Mapping[str, float] = field(default_factory=dict)

    @property
    def mean_message_bits(self) -> float:
        """Average composed-message size in bits (0 if no messages)."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_message_bits / self.messages_sent

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (used by the experiment report writer)."""
        base: Dict[str, float] = {
            "round": float(self.round_index),
            "num_awake": float(self.num_awake),
            "num_edges": float(self.num_edges),
            "messages_sent": float(self.messages_sent),
            "messages_delivered": float(self.messages_delivered),
            "max_message_bits": float(self.max_message_bits),
            "total_message_bits": float(self.total_message_bits),
            "mean_message_bits": self.mean_message_bits,
            "outputs_changed": float(self.outputs_changed),
        }
        for key, value in self.algorithm_counters.items():
            base[f"alg.{key}"] = float(value)
        return base
