"""Message typing and size accounting.

Messages are ordinary (small) Python objects — tuples of primitives in all
shipped algorithms.  The paper notes that all presented algorithms can be
implemented with ``poly log n`` bits per message; :func:`estimate_bits`
provides the size estimate that experiment E12 uses to verify this for the
implementations (colour values, random numbers, desire levels, marks).
"""

from __future__ import annotations

from typing import Any, Hashable

__all__ = ["Message", "estimate_bits"]

#: Anything hashable and small; ``None`` means "no message" (the node stays
#: silent this round — its neighbours still learn of its presence, which the
#: model allows since communication is by local broadcast).
Message = Hashable

#: Number of bits assumed for a floating-point payload (a double).
_FLOAT_BITS = 64
#: Per-character cost of a string payload.
_CHAR_BITS = 8
#: Structural overhead charged per container element (length/terminator).
_CONTAINER_OVERHEAD = 2


def estimate_bits(message: Any) -> int:
    """Estimate the number of bits needed to encode ``message``.

    The estimate is intentionally simple and conservative: integers cost
    their binary length (+1 sign bit), floats 64 bits, booleans and ``None``
    1 bit, strings 8 bits per character, and containers the sum of their
    elements plus a small structural overhead.  The absolute constants do not
    matter for experiment E12 — only the growth with ``n`` does.
    """
    if message is None or isinstance(message, bool):
        return 1
    if isinstance(message, int):
        return max(1, int(message).bit_length()) + 1
    if isinstance(message, float):
        return _FLOAT_BITS
    if isinstance(message, str):
        return _CHAR_BITS * max(1, len(message))
    if isinstance(message, (tuple, list, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(estimate_bits(item) for item in message)
    if isinstance(message, dict):
        return _CONTAINER_OVERHEAD + sum(
            estimate_bits(k) + estimate_bits(v) for k, v in message.items()
        )
    # Fallback for exotic payloads: charge the repr length.
    return _CHAR_BITS * max(1, len(repr(message)))
