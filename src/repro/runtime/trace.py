"""Execution traces: the complete record of a simulated run.

An :class:`ExecutionTrace` bundles the dynamic graph the adversary produced,
the per-round output vectors of the algorithm and the per-round metrics.  All
verification (T-dynamic validity, properties A.1/A.2/B.1/B.2, stability
claims) is carried out *on traces*, never on live algorithm state, so the
checkers cannot be fooled by an algorithm that misreports its own state.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.types import Assignment, Interval, NodeId, Round, Value
from repro.dynamics.dynamic_graph import DEFAULT_CHECKPOINT_INTERVAL, DynamicGraph
from repro.dynamics.topology import Topology, TopologyDelta
from repro.runtime.metrics import RoundMetrics

__all__ = ["RoundRecord", "ExecutionTrace"]


class RoundRecord:
    """Everything recorded about one round.

    The topology is not stored per record: rounds recorded through the delta
    path live in the trace's :class:`~repro.dynamics.dynamic_graph.DynamicGraph`
    as change sets plus periodic checkpoint snapshots, and :attr:`topology`
    materialises transparently (sequential scans cost one delta application
    per round).

    ``changed`` is the set of nodes whose output differs from the previous
    round (newly awake nodes included) — the simulator knows it as a
    byproduct of recording, so consumers get it in O(1) instead of
    re-scanning two output vectors (``None`` for records appended by legacy
    callers; :meth:`ExecutionTrace.changed_nodes` then falls back to the
    scan).  The array kernel hands it over as an int64 id array; the
    frozenset view materialises (and is cached) on first access.

    Under ``"stats"`` trace retention (see :class:`ExecutionTrace`) the
    record stores no output vector of its own: :attr:`outputs` reconstructs
    it on demand by replaying the per-round output *updates* the trace kept
    instead — O(total changes) for a sequential scan, bounded memory always.
    """

    __slots__ = ("round_index", "metrics", "_outputs", "_changed", "_graph", "_trace")

    def __init__(
        self,
        round_index: Round,
        outputs: Optional[Mapping[NodeId, Value]],
        metrics: RoundMetrics,
        graph: DynamicGraph,
        changed: Optional[Any] = None,
        trace: Optional["ExecutionTrace"] = None,
    ) -> None:
        self.round_index = round_index
        self._outputs = outputs
        self.metrics = metrics
        self._changed = changed
        self._graph = graph
        self._trace = trace

    @property
    def outputs(self) -> Mapping[NodeId, Value]:
        """The output vector at the end of this round (replayed under ``"stats"``)."""
        stored = self._outputs
        if stored is not None:
            return stored
        return self._trace._materialised_outputs(self.round_index)

    @property
    def changed(self) -> Optional[frozenset]:
        """Nodes whose output changed this round (lazy for array-backed records)."""
        stored = self._changed
        if stored is None or isinstance(stored, frozenset):
            return stored
        materialised = frozenset(stored.tolist())
        self._changed = materialised
        return materialised

    @property
    def topology(self) -> Topology:
        """``G_{round_index}`` (materialised on demand from the dynamic graph)."""
        return self._graph.topology(self.round_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundRecord(round={self.round_index})"


#: Valid trace retention modes (``ScenarioSpec`` validates against this).
RETENTION_MODES = ("full", "stats")


class ExecutionTrace:
    """The chronological record of a simulation run.

    ``checkpoint_interval`` controls how often the underlying dynamic graph
    materialises a full snapshot between delta-encoded rounds (see
    :class:`~repro.dynamics.dynamic_graph.DynamicGraph`).

    ``retention`` bounds the memory of the per-round output vectors:

    ``"full"`` (default)
        every round keeps its complete output dict — O(rounds × n) memory.

    ``"stats"``
        rounds recorded through :meth:`record_stats` (the array kernel
        engine) keep only the O(#changes) output *updates*; full vectors are
        reconstructed lazily by replaying updates forward, with a small
        rolling cache so the sequential scans of the metric/stability
        consumers stay O(total changes) overall.  Classic-path rounds
        (:meth:`record`) still store their vectors — the mode pays off on
        the array path, where million-node runs would otherwise hold
        hundreds of n-sized dicts.  All derived metrics are byte-identical
        to ``"full"`` (consumers only ever count/sort, and the replay is
        exact).
    """

    def __init__(
        self,
        n: int,
        algorithm_name: str,
        adversary_description: str,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        retention: str = "full",
    ) -> None:
        if retention not in RETENTION_MODES:
            raise ConfigurationError(
                f"trace retention must be one of {RETENTION_MODES}, got {retention!r}"
            )
        self._graph = DynamicGraph(n, checkpoint_interval=checkpoint_interval)
        self._records: List[RoundRecord] = []
        self._algorithm_name = algorithm_name
        self._adversary_description = adversary_description
        self._retention = retention
        #: per-round output updates (``"stats"`` mode only; index = round - 1)
        self._updates: Optional[List[Mapping[NodeId, Value]]] = (
            [] if retention == "stats" else None
        )
        #: rolling replay cache: round -> reconstructed full output vector
        self._replay_cache: Dict[int, Dict[NodeId, Value]] = {}

    @property
    def retention(self) -> str:
        """The retention mode of this trace (``"full"`` or ``"stats"``)."""
        return self._retention

    # -- recording (used by the simulator) ------------------------------------

    def record(
        self,
        topology: Topology,
        outputs: Mapping[NodeId, Value],
        metrics: RoundMetrics,
        *,
        delta: Optional[TopologyDelta] = None,
        changed_nodes: Optional[frozenset] = None,
    ) -> None:
        """Append one round's record (topology is validated by the dynamic graph).

        When ``delta`` is given it must be the exact change set from the
        previous round to ``topology``; the round is then stored incrementally
        (validation and storage cost O(#changes) instead of O(n + m)).
        ``changed_nodes`` is the exact set of nodes whose output differs from
        the previous round (the simulator computes it while recording
        outputs); storing it makes :meth:`changed_nodes` O(1).
        """
        if delta is not None:
            self._graph.append_delta(delta, topology)
        else:
            self._graph.append(topology)
        stored = dict(outputs)
        record = RoundRecord(
            round_index=self._graph.last_round,
            outputs=stored,
            metrics=metrics,
            graph=self._graph,
            changed=changed_nodes,
            trace=self,
        )
        self._records.append(record)
        if self._updates is not None:
            # keep the replay chain intact for stats-mode traces even when a
            # classic-path round lands in between (a full vector is a valid
            # update: it overwrites every key)
            self._updates.append(stored)

    def record_lazy(
        self,
        delta: TopologyDelta,
        outputs: Mapping[NodeId, Value],
        metrics: RoundMetrics,
        changed_nodes: Optional[Any] = None,
    ) -> None:
        """Append one round from the array kernel without materialising it.

        ``delta`` is stored as-is (see :meth:`DynamicGraph.append_lazy`) and
        ``outputs`` is stored *by reference*: the kernel engine transfers
        ownership of a dict it never mutates afterwards (it builds a fresh
        one whenever any output changes), so the per-round defensive copy of
        :meth:`record` would be pure overhead at kernel scale.
        ``changed_nodes`` may be a frozenset or an int64 id array (the
        :attr:`RoundRecord.changed` view materialises lazily).
        """
        self._graph.append_lazy(delta)
        record = RoundRecord(
            round_index=self._graph.last_round,
            outputs=outputs,
            metrics=metrics,
            graph=self._graph,
            changed=changed_nodes,
            trace=self,
        )
        self._records.append(record)
        if self._updates is not None:
            self._updates.append(outputs)

    def record_stats(
        self,
        delta: TopologyDelta,
        update: Mapping[NodeId, Value],
        metrics: RoundMetrics,
        changed_nodes: Optional[Any] = None,
    ) -> None:
        """Append one array-kernel round keeping only its output *update*.

        ``update`` maps exactly the nodes whose output changed this round to
        their new values (ownership transfers; never mutated afterwards).
        Requires ``retention="stats"``; the full vector of any round is
        reconstructed on demand by :meth:`RoundRecord.outputs`.
        """
        if self._updates is None:
            raise SimulationError('record_stats requires a retention="stats" trace')
        self._graph.append_lazy(delta)
        record = RoundRecord(
            round_index=self._graph.last_round,
            outputs=None,
            metrics=metrics,
            graph=self._graph,
            changed=changed_nodes,
            trace=self,
        )
        self._records.append(record)
        self._updates.append(update)

    def _materialised_outputs(self, r: Round) -> Dict[NodeId, Value]:
        """Replay the stored updates up to round ``r`` (stats retention).

        Keeps a rolling three-round cache window around the most recent
        request, so the dominant access patterns — strictly ascending scans,
        and the stability checker's ``outputs(r)`` / ``outputs(r - 1)``
        pairs — replay each update exactly once.  Cold random access deep
        into the trace replays from the nearest stored vector (worst case
        round 1) and costs O(total changes) once.
        """
        cache = self._replay_cache
        hit = cache.get(r)
        if hit is not None:
            return hit
        base_round = 0
        for cached_round in cache:
            if base_round < cached_round <= r:
                base_round = cached_round
        base: Mapping[NodeId, Value] = cache[base_round] if base_round else {}
        records = self._records
        for rr in range(r, base_round, -1):
            stored = records[rr - 1]._outputs
            if stored is not None:  # classic-path round: full vector on hand
                base_round, base = rr, stored
                break
        current = dict(base)
        updates = self._updates
        for rr in range(base_round + 1, r + 1):
            current.update(updates[rr - 1])
        cache[r] = current
        for stale in [k for k in cache if not r - 1 <= k <= r + 1]:
            del cache[stale]
        return current

    # -- identification ----------------------------------------------------------

    @property
    def n(self) -> int:
        """The node-count upper bound of the run."""
        return self._graph.n

    @property
    def algorithm_name(self) -> str:
        """Name of the algorithm that produced the outputs."""
        return self._algorithm_name

    @property
    def adversary_description(self) -> str:
        """One-line description of the adversary that produced the graphs."""
        return self._adversary_description

    # -- access -----------------------------------------------------------------

    @property
    def graph(self) -> DynamicGraph:
        """The recorded dynamic graph (round-indexed, with window queries)."""
        return self._graph

    @property
    def num_rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def record_at(self, r: Round) -> RoundRecord:
        """The full record of round ``r`` (1-based)."""
        if not 1 <= r <= len(self._records):
            raise SimulationError(f"round {r} not recorded (trace has {len(self._records)})")
        return self._records[r - 1]

    def topology(self, r: Round) -> Topology:
        """``G_r``."""
        return self._graph.topology(r)

    def outputs(self, r: Round) -> Assignment:
        """The output vector at the end of round ``r``."""
        return self.record_at(r).outputs

    def output_of(self, v: NodeId, r: Round) -> Value:
        """Output of node ``v`` at the end of round ``r`` (⊥ if not awake)."""
        return self.record_at(r).outputs.get(v)

    def output_series(self, v: NodeId) -> List[Value]:
        """Output of node ``v`` in every recorded round (⊥ while asleep)."""
        return [record.outputs.get(v) for record in self._records]

    def metrics(self, r: Round) -> RoundMetrics:
        """Metrics of round ``r``."""
        return self.record_at(r).metrics

    def metric_series(self, key: str) -> List[float]:
        """A single metric across all rounds (see :meth:`RoundMetrics.as_dict`)."""
        return [record.metrics.as_dict().get(key, float("nan")) for record in self._records]

    # -- convenience analyses --------------------------------------------------

    def rounds(self) -> Sequence[Round]:
        """All recorded round indices (1-based)."""
        return range(1, len(self._records) + 1)

    def changed_nodes(self, r: Round) -> frozenset[NodeId]:
        """Nodes whose output at round ``r`` differs from round ``r - 1``.

        O(1) for simulator-recorded rounds (the engine stores the change set
        it computed anyway); falls back to the two-vector scan for records
        appended without one.
        """
        record = self.record_at(r)
        if record.changed is not None:
            return record.changed
        current = record.outputs
        previous: Mapping[NodeId, Value]
        previous = self.record_at(r - 1).outputs if r > 1 else {}
        changed = {
            v
            for v in current
            if v not in previous or previous[v] != current[v]
        }
        return frozenset(changed)

    def output_changes_in(self, v: NodeId, interval: Interval) -> int:
        """Number of rounds in ``interval`` (excluding its first round) where ``v``'s output changed."""
        changes = 0
        for r in range(max(2, interval.start + 1), interval.end + 1):
            if self.output_of(v, r) != self.output_of(v, r - 1):
                changes += 1
        return changes

    def first_round_where(self, predicate) -> Optional[Round]:
        """First round ``r`` with ``predicate(record)`` true, or ``None``."""
        for record in self._records:
            if predicate(record):
                return record.round_index
        return None

    def summary(self) -> Dict[str, float]:
        """Coarse summary used by reports."""
        if not self._records:
            return {"rounds": 0.0}
        last = self._records[-1]
        return {
            "rounds": float(len(self._records)),
            "n": float(self._graph.n),
            "final_awake": float(last.metrics.num_awake),
            "final_edges": float(last.metrics.num_edges),
            "total_output_changes": float(
                sum(record.metrics.outputs_changed for record in self._records)
            ),
            "max_message_bits": float(
                max(record.metrics.max_message_bits for record in self._records)
            ),
        }
