"""Synchronous round-based execution engine (the model of Section 2).

* :mod:`repro.runtime.messages` — message typing and size accounting.
* :mod:`repro.runtime.algorithm` — the node-level algorithm API
  (:class:`DistributedAlgorithm`) every algorithm in the package implements.
* :mod:`repro.runtime.simulator` — the round engine that couples an adversary
  with an algorithm and records an execution trace.
* :mod:`repro.runtime.trace` — :class:`RoundRecord` / :class:`ExecutionTrace`.
* :mod:`repro.runtime.metrics` — per-round message statistics.
* :mod:`repro.runtime.scheduler` — re-exports the wake-up schedules.
"""

from repro.runtime.algorithm import AlgorithmSetup, DistributedAlgorithm
from repro.runtime.messages import Message, estimate_bits
from repro.runtime.metrics import RoundMetrics
from repro.runtime.simulator import Simulator, run_simulation
from repro.runtime.trace import ExecutionTrace, RoundRecord

__all__ = [
    "AlgorithmSetup",
    "DistributedAlgorithm",
    "Message",
    "estimate_bits",
    "RoundMetrics",
    "Simulator",
    "run_simulation",
    "ExecutionTrace",
    "RoundRecord",
]
