"""Synchronous round-based execution engine (the model of Section 2).

* :mod:`repro.runtime.messages` — message typing and size accounting.
* :mod:`repro.runtime.algorithm` — the node-level algorithm API
  (:class:`DistributedAlgorithm`) every algorithm in the package implements,
  including the ``message_stability`` purity contract.
* :mod:`repro.runtime.simulator` — the round engine that couples an adversary
  with an algorithm and records an execution trace; quiescence-aware
  incremental delivery for algorithms declaring the ``"pure"`` contract.
* :mod:`repro.runtime.trace` — :class:`RoundRecord` / :class:`ExecutionTrace`.
* :mod:`repro.runtime.metrics` — per-round message statistics.
* :mod:`repro.runtime.scheduler` — re-exports the wake-up schedules.
"""

from repro.runtime.algorithm import (
    AlgorithmSetup,
    DistributedAlgorithm,
    MESSAGE_STABILITY_LEVELS,
    VOLATILE,
)
from repro.runtime.messages import Message, estimate_bits
from repro.runtime.metrics import RoundMetrics
from repro.runtime.simulator import (
    DELIVERY_ENV,
    RoundActivity,
    Simulator,
    delivery_mode,
    run_simulation,
)
from repro.runtime.trace import ExecutionTrace, RoundRecord

__all__ = [
    "AlgorithmSetup",
    "DELIVERY_ENV",
    "DistributedAlgorithm",
    "MESSAGE_STABILITY_LEVELS",
    "Message",
    "RoundActivity",
    "RoundMetrics",
    "Simulator",
    "VOLATILE",
    "delivery_mode",
    "estimate_bits",
    "run_simulation",
    "ExecutionTrace",
    "RoundRecord",
]
