"""The synchronous round engine.

The :class:`Simulator` couples one adversary with one algorithm and executes
the round structure of Section 2:

1. the adversary provides ``G_r = (V_r, E_r)`` (its view of the execution is
   filtered by its declared obliviousness);
2. newly awake nodes are woken (``on_wake``);
3. every awake node composes one broadcast message — *before* it learns
   anything about the round's topology;
4. every awake node receives the messages of its ``G_r``-neighbours and
   performs its local computation (``deliver``);
5. every awake node's output is recorded.

Two delivery paths implement that structure:

``full``
    The legacy loop: every awake node re-composes its message, gets a freshly
    built inbox dict and re-runs ``deliver`` every round.  Per-round cost is
    O(n + m) regardless of how much actually changed.

``incremental``
    Available when the algorithm declares the ``"pure"`` message-stability
    contract (see :class:`~repro.runtime.algorithm.DistributedAlgorithm`).
    The engine caches each node's last composed message (and its size) and
    the running output vector, and per round computes the *dirty frontier* —
    nodes whose neighbourhood changed (from the round's
    :class:`~repro.dynamics.topology.TopologyDelta`), whose own message
    changed, that are message-volatile, that neighbour a changed message, or
    that just woke — and runs compose/deliver/output-recording only for that
    set.  Quiescent nodes keep their cached message and output untouched.
    Per-round cost is O(#active + #changes); the recorded trace is
    byte-identical to the full path (hard-gated by the test matrix and the
    ``--smoke`` delivery benchmark).

``kernel``
    The array-native path (see :mod:`repro.kernel`): dense numpy state
    arrays, CSR adjacency over a static edge universe, vectorised
    compose/deliver/output.  Requires the ``"pure"`` contract plus a
    hand-vectorised kernel for the algorithm
    (:meth:`~repro.runtime.algorithm.DistributedAlgorithm.as_kernel`).
    When the adversary also offers a
    :class:`~repro.kernel.plan.KernelPlan`, the round loop never
    materialises python topologies at all and the trace is recorded lazily
    (deltas only); otherwise a generic CSR engine runs inside the classic
    round shell.  Byte-identical to both classic paths.

The default mode ``"auto"`` selects the kernel path when algorithm,
adversary and wake-up schedule are all kernel-eligible, incremental delivery
when only the algorithm's ``"pure"`` contract holds, and the full path
otherwise.  ``REPRO_DELIVERY=full|incremental|kernel|auto`` (or the
:func:`delivery_mode` context manager) overrides the automatic choice; a
:class:`~repro.verify.policy.VerificationPolicy` (``--verify
incremental,kernel``, a config ``"verification"`` block, or the deprecated
``REPRO_VERIFY_INCREMENTAL=1`` / ``REPRO_VERIFY_KERNEL=1`` aliases) makes
the scenario executor run the chosen path against the full path and assert
row equality (see :func:`repro.scenarios.executor.run_scenario_seed`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, FrozenSet, Iterator, Mapping, Optional

from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.obs.trace import active_sink
from repro.types import Assignment, NodeId, Value
from repro.utils.rng import RngFactory
from repro.dynamics.adversary import Adversary, AdversaryView, ADAPTIVE_OFFLINE
from repro.dynamics.dynamic_graph import DEFAULT_CHECKPOINT_INTERVAL
from repro.dynamics.topology import EMPTY_DELTA, Topology, TopologyDelta, empty_topology
from repro.runtime.algorithm import AlgorithmSetup, DistributedAlgorithm, VOLATILE
from repro.runtime.messages import Message, estimate_bits
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "DELIVERY_ENV",
    "RoundActivity",
    "Simulator",
    "delivery_mode",
    "run_simulation",
]

#: Sentinel distinguishing "``input`` not passed" from an explicit ``None``.
_UNSET: Any = object()

#: Sentinel for "no cached message yet" (``None`` is a valid message).
_NO_MESSAGE: Any = object()

#: Environment override for the delivery path
#: (``full`` / ``incremental`` / ``kernel`` / ``auto``).
DELIVERY_ENV = "REPRO_DELIVERY"

_DELIVERY_MODES = ("auto", "full", "incremental", "kernel")

#: Ambient override installed by :func:`delivery_mode` (beats the env var).
_DELIVERY_OVERRIDE: Optional[str] = None


@contextmanager
def delivery_mode(mode: str) -> Iterator[None]:
    """Force the delivery path of every :class:`Simulator` built in the block.

    ``mode`` is ``"full"``, ``"incremental"``, ``"kernel"`` or ``"auto"``.
    Used by the
    equivalence tests and benchmarks to time both paths on identical seeds::

        with delivery_mode("full"):
            trace_full = run_simulation(...)
    """
    global _DELIVERY_OVERRIDE
    if mode not in _DELIVERY_MODES:
        raise ConfigurationError(f"delivery mode must be one of {_DELIVERY_MODES}, got {mode!r}")
    previous = _DELIVERY_OVERRIDE
    _DELIVERY_OVERRIDE = mode
    try:
        yield
    finally:
        _DELIVERY_OVERRIDE = previous


def _requested_delivery(explicit: str) -> str:
    """Resolve the requested mode.

    Precedence, highest first: a non-``"auto"`` explicit argument, then the
    ambient :func:`delivery_mode` override, then the ``REPRO_DELIVERY``
    environment variable; ``"auto"`` otherwise.
    """
    if explicit not in _DELIVERY_MODES:
        raise ConfigurationError(
            f"delivery must be one of {_DELIVERY_MODES}, got {explicit!r}"
        )
    if explicit != "auto":
        return explicit
    if _DELIVERY_OVERRIDE is not None:
        return _DELIVERY_OVERRIDE
    env = os.environ.get(DELIVERY_ENV, "").strip().lower()
    if env:
        if env not in _DELIVERY_MODES:
            raise ConfigurationError(
                f"{DELIVERY_ENV} must be one of {_DELIVERY_MODES}, got {env!r}"
            )
        return env
    return "auto"


class RoundActivity:
    """What the engine actually did in one round (the delta-native surface).

    Probes and ad-hoc instrumentation read this from
    :attr:`Simulator.last_round_activity` instead of re-scanning all ``n``
    outputs: ``delivered`` is the round's dirty frontier (every node whose
    ``deliver`` ran), ``composed`` the nodes whose ``compose`` ran, and
    ``changed_outputs`` the nodes whose output differs from the previous
    round.  On the full path ``composed``/``delivered`` are simply the awake
    node set.  ``delta`` is the topology change set the adversary emitted
    (``None`` when it returned a fresh snapshot).

    The array kernel engine passes ``composed``/``delivered``/
    ``changed_outputs`` as int64 id arrays; the frozenset views materialise
    lazily (and are cached), and :attr:`num_active` reads the array length
    directly — an activity probe that only counts never builds a python set.
    """

    __slots__ = ("round_index", "mode", "delta", "_composed", "_delivered", "_changed")

    def __init__(
        self,
        round_index: int,
        mode: str,
        delta: Optional[TopologyDelta],
        composed: Any,
        delivered: Any,
        changed_outputs: Any,
    ) -> None:
        self.round_index = round_index
        self.mode = mode
        self.delta = delta
        self._composed = composed
        self._delivered = delivered
        self._changed = changed_outputs

    @staticmethod
    def _materialise(value: Any) -> FrozenSet[NodeId]:
        return value if isinstance(value, frozenset) else frozenset(value.tolist())

    @property
    def composed(self) -> FrozenSet[NodeId]:
        """Nodes whose ``compose`` ran this round."""
        self._composed = self._materialise(self._composed)
        return self._composed

    @property
    def delivered(self) -> FrozenSet[NodeId]:
        """The round's dirty frontier (every node whose ``deliver`` ran)."""
        self._delivered = self._materialise(self._delivered)
        return self._delivered

    @property
    def changed_outputs(self) -> FrozenSet[NodeId]:
        """Nodes whose output differs from the previous round."""
        self._changed = self._materialise(self._changed)
        return self._changed

    @property
    def num_active(self) -> int:
        """Number of nodes the engine ran ``deliver`` for this round."""
        return len(self._delivered)


def _merge_deprecated_input(
    input_assignment: Optional[Assignment], input: Any
) -> Optional[Assignment]:
    """Reject the removed ``input`` keyword (deprecation cycle completed).

    ``input`` shadowed the builtin and spent a release emitting
    :class:`DeprecationWarning`; it now fails loudly so stale call sites
    surface instead of silently diverging from the documented API.
    """
    if input is _UNSET:
        return input_assignment
    raise ConfigurationError(
        "the 'input' parameter was removed after its deprecation cycle; "
        "pass 'input_assignment' instead"
    )


class Simulator:
    """Run one algorithm against one adversary for a number of rounds.

    Parameters
    ----------
    n:
        Upper bound on the number of nodes (global knowledge).
    algorithm:
        The distributed algorithm under test (not yet set up; the simulator
        calls :meth:`~repro.runtime.algorithm.DistributedAlgorithm.setup`).
    adversary:
        The adversary providing the graph sequence.
    seed:
        Master seed; the algorithm and the adversary-view bookkeeping derive
        independent streams from it.  (Stochastic adversaries receive their
        own generator at construction time — by convention derived from the
        same experiment seed via ``RngFactory.stream("adversary", …)``.)
    input_assignment:
        Optional input vector ``φ`` forwarded to the algorithm's setup.
        (The former name ``input`` shadowed the builtin and was removed
        after its deprecation cycle; passing it raises
        :class:`ConfigurationError`.)
    expose_state_to_adversary:
        If true, adaptive adversaries (obliviousness 0) may inspect
        ``algorithm.state_summary()`` when choosing the next graph.
    stop_when:
        Optional predicate over the :class:`~repro.runtime.trace.ExecutionTrace`
        evaluated after every round; the run stops early when it returns true.
    delivery:
        ``"auto"`` (default) uses the array kernel when algorithm and
        adversary are kernel-eligible, incremental delivery when the
        algorithm declares the ``"pure"`` contract, and the full path
        otherwise; ``"full"``/``"incremental"``/``"kernel"`` force a path.
        Forcing a path the algorithm has not declared safe falls back to the
        strongest available one (the engine cannot skip work the algorithm
        has not declared skippable).
    allow_kernel:
        Set to false to exclude the kernel path from ``"auto"``/``"kernel"``
        resolution (used e.g. when per-round probes will read live
        algorithm state, which array kernels only write back at the end of
        a run).
    trace_retention:
        ``"full"`` (default) keeps every round's complete output vector in
        the trace; ``"stats"`` keeps only O(#changes) per-round output
        updates on the array kernel path and reconstructs full vectors
        lazily (see :class:`~repro.runtime.trace.ExecutionTrace`) — all
        derived metrics stay byte-identical, memory stays bounded at
        million-node scale.
    """

    def __init__(
        self,
        *,
        n: int,
        algorithm: DistributedAlgorithm,
        adversary: Adversary,
        seed: int = 0,
        rng_factory: Optional[RngFactory] = None,
        input_assignment: Optional[Assignment] = None,
        input: Any = _UNSET,
        expose_state_to_adversary: bool = False,
        stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        delivery: str = "auto",
        allow_kernel: bool = True,
        trace_retention: str = "full",
    ) -> None:
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be a positive integer, got {n!r}")
        if (
            not isinstance(checkpoint_interval, int)
            or isinstance(checkpoint_interval, bool)
            or checkpoint_interval < 1
        ):
            raise ConfigurationError(
                f"checkpoint_interval must be an integer >= 1, got {checkpoint_interval!r}"
            )
        self._n = n
        self._algorithm = algorithm
        self._adversary = adversary
        self._rng_factory = rng_factory if rng_factory is not None else RngFactory(seed)
        self._input = _merge_deprecated_input(input_assignment, input)
        self._expose_state = expose_state_to_adversary
        self._stop_when = stop_when
        requested = _requested_delivery(delivery)
        pure = algorithm.message_stability == "pure"
        # Kernel eligibility: the pure contract, a hand-vectorised kernel for
        # the exact algorithm type, no input vector (kernels initialise wake
        # state vectorised for the ⊥-input case only), and no adaptive state
        # exposure (state_summary would read stale instance state mid-run —
        # kernels write back only at the end of a run).
        kernel_ok = (
            allow_kernel
            and pure
            and self._input is None
            and not (expose_state_to_adversary and adversary.obliviousness == ADAPTIVE_OFFLINE)
        )
        kernel_factory = None
        kernel_plan = None
        if kernel_ok:
            try:
                kernel_factory = algorithm.as_kernel()
            except ImportError:
                # numpy below the kernel floor: an explicit request should
                # surface the clear version error, auto falls back silently.
                if requested == "kernel":
                    raise
                kernel_factory = None
            if kernel_factory is not None:
                try:
                    plan = adversary.kernel_plan()
                except ImportError:
                    plan = None
                if plan is not None and plan.validate(n):
                    kernel_plan = plan
        if requested == "full":
            self._delivery = "full"
        elif requested == "kernel" and kernel_factory is not None:
            self._delivery = "kernel"
        elif requested == "auto" and kernel_factory is not None and kernel_plan is not None:
            # auto only picks the kernel when the fast array path is
            # available end-to-end; a plan-less adversary stays on the
            # incremental loop (the generic kernel engine is opt-in).
            self._delivery = "kernel"
        else:  # remaining "incremental"/"auto"/"kernel" need the contract
            self._delivery = "incremental" if pure else "full"
        self._kernel_factory = kernel_factory
        self._kernel_plan = kernel_plan if self._delivery == "kernel" else None
        self._kernel_engine: Optional[Any] = None
        self._trace = ExecutionTrace(
            n,
            algorithm.name,
            adversary.describe(),
            checkpoint_interval=checkpoint_interval,
            retention=trace_retention,
        )
        self._output_history: list[Assignment] = []
        self._previous_outputs: Dict[NodeId, Value] = {}
        self._current_topology: Topology = empty_topology()
        self._started = False
        self._last_activity: Optional[RoundActivity] = None
        #: deferred activity constructor (set by the array kernel engine so
        #: rounds that nobody inspects never pay the frozenset conversions)
        self._last_activity_builder: Optional[Callable[[], RoundActivity]] = None
        # -- incremental-delivery caches (unused on the full path) ----------
        #: node -> last composed message / its estimated bit size.
        self._messages: Dict[NodeId, Message] = {}
        self._bits: Dict[NodeId, int] = {}
        #: bit-size histogram of the cached messages (for the max metric).
        self._bits_hist: Dict[int, int] = {}
        self._bits_total = 0
        self._bits_max = 0
        #: nodes whose compose_fingerprint reported VOLATILE.
        self._volatile: set[NodeId] = set()
        #: nodes scheduled for a re-compose check next round.
        self._recompose: set[NodeId] = set()
        self._fingerprints: Dict[NodeId, Any] = {}
        #: the running output vector (mutated in place, copied per round).
        self._running_outputs: Dict[NodeId, Value] = {}

    # -- public API -------------------------------------------------------------

    @property
    def trace(self) -> ExecutionTrace:
        """The trace recorded so far."""
        return self._trace

    @property
    def algorithm(self) -> DistributedAlgorithm:
        """The algorithm under test."""
        return self._algorithm

    @property
    def delivery(self) -> str:
        """The effective delivery path (``"full"``/``"incremental"``/``"kernel"``)."""
        return self._delivery

    @property
    def last_round_activity(self) -> Optional[RoundActivity]:
        """The :class:`RoundActivity` of the most recent round (``None`` before round 1)."""
        builder = self._last_activity_builder
        if builder is not None:
            self._last_activity = builder()
            self._last_activity_builder = None
        return self._last_activity

    def run(self, rounds: int) -> ExecutionTrace:
        """Execute ``rounds`` further rounds and return the trace."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        if not self._started:
            self._algorithm.setup(
                AlgorithmSetup(
                    n=self._n,
                    rng_factory=self._rng_factory.child("algorithm"),
                    input=self._input,
                )
            )
            self._started = True
        if self._delivery == "kernel" and self._kernel_engine is None:
            # Built after setup: kernels size their arrays from algorithm.n.
            from repro.kernel.engine import ArrayKernelEngine, GenericKernelEngine

            kernel = self._kernel_factory()
            if self._kernel_plan is not None:
                self._kernel_engine = ArrayKernelEngine(self, kernel, self._kernel_plan)
            else:
                self._kernel_engine = GenericKernelEngine(self, kernel)
        engine = self._kernel_engine
        if engine is not None and engine.is_array:
            # Plan-driven fast path: the engine owns the whole round.
            for _ in range(rounds):
                engine.run_round()
                if self._stop_when is not None and self._stop_when(self._trace):
                    break
        else:
            for _ in range(rounds):
                self._run_round()
                if self._stop_when is not None and self._stop_when(self._trace):
                    break
        if engine is not None:
            # Write the kernel state back so post-run introspection of the
            # algorithm instance (outputs(), state_of(), …) works as usual.
            engine.finalize()
        return self._trace

    # -- internals -----------------------------------------------------------------

    def _adversary_view(self, round_index: int) -> AdversaryView:
        state_provider = None
        if self._expose_state and self._adversary.obliviousness == ADAPTIVE_OFFLINE:
            state_provider = self._algorithm.state_summary
        return AdversaryView(
            n=self._n,
            round_index=round_index,
            obliviousness=self._adversary.obliviousness,
            # The view pulls lazily from the dynamic graph and the (read-only)
            # output list, so building it is O(1) regardless of the history.
            topologies=self._trace.graph,
            outputs=self._output_history,
            state_provider=state_provider,
        )

    def _run_round(self) -> None:
        round_index = self._trace.num_rounds + 1
        previous = self._current_topology

        # (1) The adversary changes the graph — either as a full topology or
        #     as a delta relative to the previous round (see Adversary.step).
        result = self._adversary.step(self._adversary_view(round_index))
        delta: Optional[TopologyDelta]
        if isinstance(result, TopologyDelta):
            delta = result
            try:
                topology = previous.apply(delta)
            except TopologyError as exc:
                raise SimulationError(
                    f"adversary {self._adversary.describe()} emitted an invalid delta "
                    f"for round {round_index}: {exc}"
                ) from exc
        elif isinstance(result, Topology):
            topology = result
            # Re-returning the previous round's topology object (static /
            # frozen adversaries) is an empty delta: store it incrementally.
            delta = EMPTY_DELTA if result is previous else None
        else:
            raise SimulationError(
                f"adversary {self._adversary.describe()} returned {type(result).__name__},"
                " expected a Topology or TopologyDelta"
            )

        # (2) Wake-ups — nodes awake for the first time initialise their state.
        #     On the delta path only the newly added nodes are visited.  The
        #     kernel engine wakes nodes itself (vectorised state init); its
        #     algorithms never override the begin/end_round no-op hooks.
        newly_awake = delta.added_nodes if delta is not None else topology.nodes - previous.nodes
        if self._delivery != "kernel":
            for v in sorted(newly_awake):
                self._algorithm.wake(v)
            self._algorithm.begin_round(round_index)

        if self._delivery == "kernel":
            outputs, metrics, changed, activity = self._kernel_engine.round(
                round_index, previous, topology, delta, newly_awake
            )
        elif self._delivery == "incremental":
            outputs, metrics, changed, activity = self._incremental_round(
                round_index, previous, topology, delta, newly_awake
            )
        else:
            outputs, metrics, changed, activity = self._full_round(
                round_index, topology, delta
            )

        self._trace.record(topology, outputs, metrics, delta=delta, changed_nodes=changed)
        self._output_history.append(outputs)
        self._previous_outputs = outputs
        self._current_topology = topology
        self._last_activity = activity
        self._last_activity_builder = None

        sink = active_sink()
        if sink is not None:
            sink.emit(
                "round",
                round=round_index,
                mode=activity.mode,
                awake=metrics.num_awake,
                edges=metrics.num_edges,
                composed=len(activity.composed),
                frontier=len(activity.delivered),
                changed=len(changed),
                quiescent=len(activity.delivered) == 0,
            )

    # -- the legacy O(n + m) path ------------------------------------------------

    def _full_round(
        self,
        round_index: int,
        topology: Topology,
        delta: Optional[TopologyDelta],
    ) -> tuple[Dict[NodeId, Value], RoundMetrics, FrozenSet[NodeId], RoundActivity]:
        # (3) Compose — strictly before any delivery.
        messages: Dict[NodeId, Message] = {}
        total_bits = 0
        max_bits = 0
        for v in topology.nodes:
            message = self._algorithm.compose(v)
            messages[v] = message
            bits = estimate_bits(message)
            total_bits += bits
            if bits > max_bits:
                max_bits = bits

        # (4) Deliver along the edges of G_r.
        deliveries = 0
        for v in topology.nodes:
            neighbors = topology.neighbors(v)
            inbox: Mapping[NodeId, Message] = {u: messages[u] for u in neighbors}
            deliveries += len(inbox)
            self._algorithm.deliver(v, inbox)

        self._algorithm.end_round(round_index)

        # (5) Outputs.
        outputs: Dict[NodeId, Value] = {v: self._algorithm.output(v) for v in topology.nodes}
        previous_outputs = self._previous_outputs
        changed = frozenset(
            v
            for v, value in outputs.items()
            if v not in previous_outputs or previous_outputs[v] != value
        )
        metrics = RoundMetrics(
            round_index=round_index,
            num_awake=topology.num_nodes,
            num_edges=topology.num_edges,
            messages_sent=len(messages),
            messages_delivered=deliveries,
            max_message_bits=max_bits,
            total_message_bits=total_bits,
            outputs_changed=len(changed),
            algorithm_counters=dict(self._algorithm.metrics()),
        )
        activity = RoundActivity(
            round_index=round_index,
            mode="full",
            delta=delta,
            composed=topology.nodes,
            delivered=topology.nodes,
            changed_outputs=changed,
        )
        return outputs, metrics, changed, activity

    # -- the O(#active + #changes) path --------------------------------------------

    def _record_bits(self, v: NodeId, bits: int) -> None:
        """Account node ``v``'s (new) message size in the running aggregates."""
        hist = self._bits_hist
        old = self._bits.get(v)
        if old == bits:
            return
        if old is not None:
            count = hist[old] - 1
            if count:
                hist[old] = count
            else:
                del hist[old]
            self._bits_total -= old
        self._bits[v] = bits
        hist[bits] = hist.get(bits, 0) + 1
        self._bits_total += bits
        if bits > self._bits_max:
            self._bits_max = bits
        elif old == self._bits_max and old not in hist:
            self._bits_max = max(hist) if hist else 0

    def _drop_node(self, v: NodeId) -> None:
        """Forget every cache entry of a node that left the graph."""
        self._messages.pop(v, None)
        old = self._bits.pop(v, None)
        if old is not None:
            count = self._bits_hist[old] - 1
            if count:
                self._bits_hist[old] = count
            else:
                del self._bits_hist[old]
                if old == self._bits_max:
                    self._bits_max = max(self._bits_hist) if self._bits_hist else 0
            self._bits_total -= old
        self._volatile.discard(v)
        self._recompose.discard(v)
        self._fingerprints.pop(v, None)
        self._running_outputs.pop(v, None)

    def _incremental_round(
        self,
        round_index: int,
        previous: Topology,
        topology: Topology,
        delta: Optional[TopologyDelta],
        newly_awake: FrozenSet[NodeId],
    ) -> tuple[Dict[NodeId, Value], RoundMetrics, FrozenSet[NodeId], RoundActivity]:
        algorithm = self._algorithm
        nodes = topology.nodes
        # A snapshot-returning adversary still gets incremental treatment:
        # the exact diff is a C-speed set operation, far cheaper than a full
        # python-level round (the snapshot itself is stored unchanged).
        effective_delta = delta if delta is not None else TopologyDelta.between(previous, topology)
        for v in effective_delta.removed_nodes:
            self._drop_node(v)

        # (3) Compose — only nodes whose message may differ from the cache:
        # volatile nodes (fresh randomness), nodes whose fingerprint moved
        # after their last deliver, and nodes that just woke up.
        recompose = (self._volatile | self._recompose) & nodes
        recompose |= newly_awake & nodes
        self._recompose = set()
        messages = self._messages
        compose = algorithm.compose
        messages_get = messages.get
        changed_messages: list[NodeId] = []
        changed_append = changed_messages.append
        for v in recompose:
            message = compose(v)
            if messages_get(v, _NO_MESSAGE) != message:
                messages[v] = message
                self._record_bits(v, estimate_bits(message))
                changed_append(v)

        # (4) The dirty frontier: neighbourhood changed, own message changed,
        # volatile, neighbour's message changed, or just woke up.  A superset
        # is always safe (delivering an unchanged inbox to a quiescent node
        # is a contract no-op), so when a quarter of the graph changed its
        # message the per-message neighbourhood unions cost more than they
        # save and the whole awake set is taken instead — the dense-churn
        # round then costs exactly what the full path pays, no more.
        if 4 * len(changed_messages) >= len(nodes):
            dirty = set(nodes)
        else:
            dirty = set(effective_delta.touched_nodes())
            dirty |= self._volatile
            dirty.update(changed_messages)
            for v in changed_messages:
                dirty.update(topology.neighbors(v))
            dirty &= nodes

        deliver = algorithm.deliver
        neighbors_of = topology.neighbors
        for v in dirty:
            inbox: Mapping[NodeId, Message] = {u: messages[u] for u in neighbors_of(v)}
            deliver(v, inbox)

        algorithm.end_round(round_index)

        # One pass over the dirty frontier: (a) re-classify volatility — a
        # node stays on the every-round path until its fingerprint settles,
        # and a moved fingerprint schedules a re-compose check for next
        # round; (b) refresh the node's output — only dirty nodes can have
        # changed theirs (contract: output-relevant state moves only in
        # on_wake / deliver).
        fingerprints = self._fingerprints
        volatile = self._volatile
        recompose_next = self._recompose
        running = self._running_outputs
        fingerprint_of = algorithm.compose_fingerprint
        output_of = algorithm.output
        changed = set()
        changed_add = changed.add
        for v in dirty:
            fingerprint = fingerprint_of(v)
            if fingerprint is VOLATILE:
                if v not in volatile:
                    volatile.add(v)
                    fingerprints.pop(v, None)
            else:
                volatile.discard(v)
                if fingerprints.get(v, _NO_MESSAGE) != fingerprint:
                    fingerprints[v] = fingerprint
                    recompose_next.add(v)
            value = output_of(v)
            if v not in running:
                running[v] = value
                changed_add(v)
            elif running[v] != value:
                running[v] = value
                changed_add(v)
        outputs = dict(running)

        metrics = RoundMetrics(
            round_index=round_index,
            num_awake=topology.num_nodes,
            num_edges=topology.num_edges,
            messages_sent=len(messages),
            messages_delivered=2 * topology.num_edges,
            max_message_bits=self._bits_max,
            total_message_bits=self._bits_total,
            outputs_changed=len(changed),
            algorithm_counters=dict(algorithm.metrics()),
        )
        activity = RoundActivity(
            round_index=round_index,
            mode="incremental",
            delta=delta,
            composed=frozenset(recompose),
            delivered=frozenset(dirty),
            changed_outputs=frozenset(changed),
        )
        return outputs, metrics, frozenset(changed), activity


def run_simulation(
    *,
    n: int,
    algorithm: DistributedAlgorithm,
    adversary: Adversary,
    rounds: int,
    seed: int = 0,
    input_assignment: Optional[Assignment] = None,
    input: Any = _UNSET,
    expose_state_to_adversary: bool = False,
    stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
    delivery: str = "auto",
    allow_kernel: bool = True,
    trace_retention: str = "full",
) -> ExecutionTrace:
    """One-shot convenience wrapper around :class:`Simulator`.

    Examples
    --------
    >>> from repro.dynamics import generators
    >>> from repro.dynamics.adversaries import StaticAdversary
    >>> from repro.algorithms.coloring import BasicColoring
    >>> topo = generators.ring(8)
    >>> trace = run_simulation(
    ...     n=8,
    ...     algorithm=BasicColoring(),
    ...     adversary=StaticAdversary(topo),
    ...     rounds=50,
    ...     seed=1,
    ... )
    >>> all(value is not None for value in trace.outputs(trace.num_rounds).values())
    True
    """
    sim = Simulator(
        n=n,
        algorithm=algorithm,
        adversary=adversary,
        seed=seed,
        input_assignment=_merge_deprecated_input(input_assignment, input),
        expose_state_to_adversary=expose_state_to_adversary,
        stop_when=stop_when,
        delivery=delivery,
        allow_kernel=allow_kernel,
        trace_retention=trace_retention,
    )
    return sim.run(rounds)
