"""The synchronous round engine.

The :class:`Simulator` couples one adversary with one algorithm and executes
the round structure of Section 2:

1. the adversary provides ``G_r = (V_r, E_r)`` (its view of the execution is
   filtered by its declared obliviousness);
2. newly awake nodes are woken (``on_wake``);
3. every awake node composes one broadcast message — *before* it learns
   anything about the round's topology;
4. every awake node receives the messages of its ``G_r``-neighbours and
   performs its local computation (``deliver``);
5. every awake node's output is recorded.

The engine is deliberately simple and allocation-light: per round it builds
one dict of messages and one inbox dict per node; no global state is ever
handed to the algorithm.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.types import Assignment, NodeId, Value
from repro.utils.rng import RngFactory
from repro.dynamics.adversary import Adversary, AdversaryView, ADAPTIVE_OFFLINE
from repro.dynamics.dynamic_graph import DEFAULT_CHECKPOINT_INTERVAL
from repro.dynamics.topology import EMPTY_DELTA, Topology, TopologyDelta, empty_topology
from repro.runtime.algorithm import AlgorithmSetup, DistributedAlgorithm
from repro.runtime.messages import Message, estimate_bits
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace

__all__ = ["Simulator", "run_simulation"]

#: Sentinel distinguishing "``input`` not passed" from an explicit ``None``.
_UNSET: Any = object()


def _merge_deprecated_input(
    input_assignment: Optional[Assignment], input: Any
) -> Optional[Assignment]:
    """Fold the deprecated ``input`` keyword into ``input_assignment``."""
    if input is _UNSET:
        return input_assignment
    warnings.warn(
        "the 'input' parameter shadows the builtin and is deprecated; "
        "use 'input_assignment' instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if input_assignment is not None:
        raise ConfigurationError("pass either 'input_assignment' or the deprecated 'input', not both")
    return input


class Simulator:
    """Run one algorithm against one adversary for a number of rounds.

    Parameters
    ----------
    n:
        Upper bound on the number of nodes (global knowledge).
    algorithm:
        The distributed algorithm under test (not yet set up; the simulator
        calls :meth:`~repro.runtime.algorithm.DistributedAlgorithm.setup`).
    adversary:
        The adversary providing the graph sequence.
    seed:
        Master seed; the algorithm and the adversary-view bookkeeping derive
        independent streams from it.  (Stochastic adversaries receive their
        own generator at construction time — by convention derived from the
        same experiment seed via ``RngFactory.stream("adversary", …)``.)
    input_assignment:
        Optional input vector ``φ`` forwarded to the algorithm's setup.
        (The former name ``input`` shadowed the builtin and is still accepted
        with a :class:`DeprecationWarning`.)
    expose_state_to_adversary:
        If true, adaptive adversaries (obliviousness 0) may inspect
        ``algorithm.state_summary()`` when choosing the next graph.
    stop_when:
        Optional predicate over the :class:`~repro.runtime.trace.ExecutionTrace`
        evaluated after every round; the run stops early when it returns true.
    """

    def __init__(
        self,
        *,
        n: int,
        algorithm: DistributedAlgorithm,
        adversary: Adversary,
        seed: int = 0,
        rng_factory: Optional[RngFactory] = None,
        input_assignment: Optional[Assignment] = None,
        input: Any = _UNSET,
        expose_state_to_adversary: bool = False,
        stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be a positive integer, got {n!r}")
        self._n = n
        self._algorithm = algorithm
        self._adversary = adversary
        self._rng_factory = rng_factory if rng_factory is not None else RngFactory(seed)
        self._input = _merge_deprecated_input(input_assignment, input)
        self._expose_state = expose_state_to_adversary
        self._stop_when = stop_when
        self._trace = ExecutionTrace(
            n,
            algorithm.name,
            adversary.describe(),
            checkpoint_interval=checkpoint_interval,
        )
        self._output_history: list[Assignment] = []
        self._previous_outputs: Dict[NodeId, Value] = {}
        self._current_topology: Topology = empty_topology()
        self._started = False

    # -- public API -------------------------------------------------------------

    @property
    def trace(self) -> ExecutionTrace:
        """The trace recorded so far."""
        return self._trace

    @property
    def algorithm(self) -> DistributedAlgorithm:
        """The algorithm under test."""
        return self._algorithm

    def run(self, rounds: int) -> ExecutionTrace:
        """Execute ``rounds`` further rounds and return the trace."""
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        if not self._started:
            self._algorithm.setup(
                AlgorithmSetup(
                    n=self._n,
                    rng_factory=self._rng_factory.child("algorithm"),
                    input=self._input,
                )
            )
            self._started = True
        for _ in range(rounds):
            self._run_round()
            if self._stop_when is not None and self._stop_when(self._trace):
                break
        return self._trace

    # -- internals -----------------------------------------------------------------

    def _adversary_view(self, round_index: int) -> AdversaryView:
        state_provider = None
        if self._expose_state and self._adversary.obliviousness == ADAPTIVE_OFFLINE:
            state_provider = self._algorithm.state_summary
        return AdversaryView(
            n=self._n,
            round_index=round_index,
            obliviousness=self._adversary.obliviousness,
            # The view pulls lazily from the dynamic graph and the (read-only)
            # output list, so building it is O(1) regardless of the history.
            topologies=self._trace.graph,
            outputs=self._output_history,
            state_provider=state_provider,
        )

    def _run_round(self) -> None:
        round_index = self._trace.num_rounds + 1
        previous = self._current_topology

        # (1) The adversary changes the graph — either as a full topology or
        #     as a delta relative to the previous round (see Adversary.step).
        result = self._adversary.step(self._adversary_view(round_index))
        delta: Optional[TopologyDelta]
        if isinstance(result, TopologyDelta):
            delta = result
            try:
                topology = previous.apply(delta)
            except TopologyError as exc:
                raise SimulationError(
                    f"adversary {self._adversary.describe()} emitted an invalid delta "
                    f"for round {round_index}: {exc}"
                ) from exc
        elif isinstance(result, Topology):
            topology = result
            # Re-returning the previous round's topology object (static /
            # frozen adversaries) is an empty delta: store it incrementally.
            delta = EMPTY_DELTA if result is previous else None
        else:
            raise SimulationError(
                f"adversary {self._adversary.describe()} returned {type(result).__name__},"
                " expected a Topology or TopologyDelta"
            )

        # (2) Wake-ups — nodes awake for the first time initialise their state.
        #     On the delta path only the newly added nodes are visited.
        newly_awake = delta.added_nodes if delta is not None else topology.nodes - previous.nodes
        for v in sorted(newly_awake):
            self._algorithm.wake(v)

        self._algorithm.begin_round(round_index)

        # (3) Compose — strictly before any delivery.
        messages: Dict[NodeId, Message] = {}
        total_bits = 0
        max_bits = 0
        for v in topology.nodes:
            message = self._algorithm.compose(v)
            messages[v] = message
            bits = estimate_bits(message)
            total_bits += bits
            if bits > max_bits:
                max_bits = bits

        # (4) Deliver along the edges of G_r.
        deliveries = 0
        for v in topology.nodes:
            neighbors = topology.neighbors(v)
            inbox: Mapping[NodeId, Message] = {u: messages[u] for u in neighbors}
            deliveries += len(inbox)
            self._algorithm.deliver(v, inbox)

        self._algorithm.end_round(round_index)

        # (5) Outputs.
        outputs: Dict[NodeId, Value] = {v: self._algorithm.output(v) for v in topology.nodes}
        changed = sum(
            1
            for v, value in outputs.items()
            if v not in self._previous_outputs or self._previous_outputs[v] != value
        )
        metrics = RoundMetrics(
            round_index=round_index,
            num_awake=topology.num_nodes,
            num_edges=topology.num_edges,
            messages_sent=len(messages),
            messages_delivered=deliveries,
            max_message_bits=max_bits,
            total_message_bits=total_bits,
            outputs_changed=changed,
            algorithm_counters=dict(self._algorithm.metrics()),
        )
        self._trace.record(topology, outputs, metrics, delta=delta)
        self._output_history.append(outputs)
        self._previous_outputs = outputs
        self._current_topology = topology


def run_simulation(
    *,
    n: int,
    algorithm: DistributedAlgorithm,
    adversary: Adversary,
    rounds: int,
    seed: int = 0,
    input_assignment: Optional[Assignment] = None,
    input: Any = _UNSET,
    expose_state_to_adversary: bool = False,
    stop_when: Optional[Callable[[ExecutionTrace], bool]] = None,
) -> ExecutionTrace:
    """One-shot convenience wrapper around :class:`Simulator`.

    Examples
    --------
    >>> from repro.dynamics import generators
    >>> from repro.dynamics.adversaries import StaticAdversary
    >>> from repro.algorithms.coloring import BasicColoring
    >>> topo = generators.ring(8)
    >>> trace = run_simulation(
    ...     n=8,
    ...     algorithm=BasicColoring(),
    ...     adversary=StaticAdversary(topo),
    ...     rounds=50,
    ...     seed=1,
    ... )
    >>> all(value is not None for value in trace.outputs(trace.num_rounds).values())
    True
    """
    sim = Simulator(
        n=n,
        algorithm=algorithm,
        adversary=adversary,
        seed=seed,
        input_assignment=_merge_deprecated_input(input_assignment, input),
        expose_state_to_adversary=expose_state_to_adversary,
        stop_when=stop_when,
    )
    return sim.run(rounds)
