"""Wake-up schedules (re-exported from :mod:`repro.dynamics.wakeup`).

The schedules conceptually belong to the adversary (it controls ``V_r``), but
users of the runtime typically reach for them when configuring an experiment,
so they are re-exported here for discoverability.
"""

from repro.dynamics.wakeup import (
    AllAwake,
    ExplicitWakeup,
    StaggeredWakeup,
    UniformRandomWakeup,
    WakeupSchedule,
)

__all__ = [
    "WakeupSchedule",
    "AllAwake",
    "StaggeredWakeup",
    "UniformRandomWakeup",
    "ExplicitWakeup",
]
