"""The node-level algorithm API.

Every distributed algorithm in the package — the paper's ``DColor``,
``SColor``, ``DMis``, ``SMis``, their static ancestors, the ``Concat``
combiner, the baselines and the ablations — implements
:class:`DistributedAlgorithm`.

Design constraints enforced by the API (all dictated by the model of
Section 2):

* **One identical round type.**  There is a single ``compose`` / ``deliver``
  pair per round, no global phase counter.  This is what makes asynchronous
  wake-up possible (Section 7.2) — a node that wakes late simply starts
  executing the same round body as everyone else.
* **No early degree knowledge.**  ``compose(v)`` is called *before* any
  message of the round is delivered, so an algorithm cannot use its
  current-round degree (or neighbourhood) when choosing what to send; it only
  learns the degree from the size of the inbox passed to ``deliver``.
* **Locality.**  The only information about the rest of the system an
  algorithm ever receives is the per-node inbox.  Algorithms never see the
  topology object.
* **Fresh per-round randomness.**  Each node owns an independent random
  stream created from the experiment's master seed via
  :class:`~repro.utils.rng.RngFactory`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.types import Assignment, NodeId, Value
from repro.utils.rng import RngFactory
from repro.runtime.messages import Message

__all__ = [
    "AlgorithmSetup",
    "DistributedAlgorithm",
    "MESSAGE_STABILITY_LEVELS",
    "VOLATILE",
]


class _Volatile:
    """Singleton sentinel: "this node's next message cannot be predicted"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "VOLATILE"


#: Returned by :meth:`DistributedAlgorithm.compose_fingerprint` when the
#: node's next message is not a deterministic function of its current state
#: (typically because ``compose`` draws fresh randomness).  The incremental
#: delivery engine then re-runs ``compose`` *and* ``deliver`` for the node
#: every round, exactly like the full path.
VOLATILE = _Volatile()

#: The recognised values of :attr:`DistributedAlgorithm.message_stability`.
MESSAGE_STABILITY_LEVELS = ("none", "pure")


@dataclass(frozen=True)
class AlgorithmSetup:
    """Static configuration handed to an algorithm before round 1.

    Attributes
    ----------
    n:
        The globally known upper bound on the number of nodes (every node id
        is in ``[0, n)``).  This is the only global knowledge the model grants
        (needed e.g. for SMis's ``1/(5n)`` desire-level floor).
    rng_factory:
        Factory for the per-node random streams of this algorithm instance.
    input:
        Optional input vector ``φ`` (``node -> value``); ``None`` entries and
        missing nodes mean ``⊥``.  Dynamic algorithms must *extend* this input
        (property A.1), never overwrite it.
    """

    n: int
    rng_factory: RngFactory
    input: Optional[Assignment] = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def input_value(self, v: NodeId) -> Value:
        """The input value of node ``v`` (``None`` = ⊥ if absent)."""
        if self.input is None:
            return None
        return self.input.get(v)


class DistributedAlgorithm(ABC):
    """Base class for synchronous local-broadcast algorithms.

    Lifecycle driven by the :class:`~repro.runtime.simulator.Simulator`::

        setup(AlgorithmSetup)           # once, before round 1
        for each round r = 1, 2, …:
            on_wake(v)                  # for nodes awake for the first time
            begin_round(r)
            m_v = compose(v)            # for every awake node, BEFORE delivery
            deliver(v, inbox_v)         # inbox_v = {u: m_u for u in N_{G_r}(v)}
            end_round(r)
            output(v)                   # collected into the trace

    Subclasses must implement :meth:`on_wake`, :meth:`compose`,
    :meth:`deliver` and :meth:`output`; the round hooks are optional.
    """

    #: Short identifier used for RNG stream derivation and reports.
    name: str = "algorithm"

    #: The *message-stability contract* this algorithm declares towards the
    #: simulator's incremental delivery engine.
    #:
    #: ``"none"`` (the conservative default)
    #:     No promise: the simulator re-runs ``compose`` and ``deliver`` for
    #:     every awake node every round (the byte-identical legacy behaviour).
    #:
    #: ``"pure"``
    #:     The algorithm promises, for every node ``v``:
    #:
    #:     1. all per-node state that ``compose``, ``deliver`` or ``output``
    #:        read changes only inside ``on_wake``, ``deliver``, or — for
    #:        nodes whose :meth:`compose_fingerprint` is :data:`VOLATILE` —
    #:        ``compose`` itself (never in ``begin_round``/``end_round``);
    #:     2. when :meth:`compose_fingerprint` is not :data:`VOLATILE`,
    #:        ``compose(v)`` is deterministic, draws no randomness, and
    #:        mutates nothing that ``deliver`` or ``output`` can observe;
    #:     3. if ``v``'s composed message *and* its inbox (the exact
    #:        key → message mapping) are both unchanged from the previous
    #:        round, then ``deliver(v, inbox)`` changes nothing observable
    #:        (state, output, metrics counters) and draws no randomness.
    #:
    #:     Under this contract the simulator may skip ``compose``/``deliver``
    #:     for quiescent nodes and reuse cached messages, inboxes and outputs
    #:     — per-round cost O(#active nodes + #topology changes) instead of
    #:     O(n + m) — while producing byte-identical traces.  Declarations
    #:     are verified empirically by the equivalence test matrix and, per
    #:     run, by ``--verify incremental`` (see :mod:`repro.verify.policy`).
    message_stability: str = "none"

    def __init__(self) -> None:
        self._setup: Optional[AlgorithmSetup] = None
        self._node_rngs: Dict[NodeId, np.random.Generator] = {}
        self._node_rng_skips: Dict[NodeId, int] = {}
        self._awake: set[NodeId] = set()

    # -- lifecycle -----------------------------------------------------------

    def setup(self, setup: AlgorithmSetup) -> None:
        """Store the configuration; subclasses may extend (call ``super().setup``)."""
        self._setup = setup
        self._node_rngs = {}
        self._node_rng_skips = {}
        self._awake = set()

    @property
    def config(self) -> AlgorithmSetup:
        """The setup object (raises if :meth:`setup` has not been called)."""
        if self._setup is None:
            raise AlgorithmError(f"{type(self).__name__} used before setup()")
        return self._setup

    @property
    def n(self) -> int:
        """The global node-count upper bound."""
        return self.config.n

    @property
    def awake_nodes(self) -> frozenset[NodeId]:
        """Nodes that have woken up so far (as seen by this algorithm)."""
        return frozenset(self._awake)

    def rng(self, v: NodeId) -> np.random.Generator:
        """The private random stream of node ``v`` for this algorithm instance."""
        gen = self._node_rngs.get(v)
        if gen is None:
            gen = self.config.rng_factory.node_stream(self.name, v)
            # An array kernel may have drawn from v's stream without ever
            # instantiating the Generator (see kernel.nodestreams); it leaves
            # the consumed draw counts behind so the lazily-spawned stream
            # resumes at the exact position the classic path would be at.
            skip = self._node_rng_skips.pop(v, 0)
            if skip:
                gen.random(skip)
            self._node_rngs[v] = gen
        return gen

    # -- hooks driven by the simulator ------------------------------------------

    def wake(self, v: NodeId) -> None:
        """Internal: record the wake-up and dispatch to :meth:`on_wake`."""
        if v in self._awake:
            return
        self._awake.add(v)
        self.on_wake(v)

    @abstractmethod
    def on_wake(self, v: NodeId) -> None:
        """Initialise the local state of node ``v`` (it just woke up)."""

    def begin_round(self, round_index: int) -> None:
        """Optional hook called at the beginning of every round."""

    @abstractmethod
    def compose(self, v: NodeId) -> Message:
        """Return the message node ``v`` broadcasts this round (``None`` = silent)."""

    def compose_fingerprint(self, v: NodeId) -> Any:
        """A cheap token describing the message ``v`` will compose next.

        Contract (consulted only when :attr:`message_stability` is ``"pure"``;
        evaluated by the simulator after ``v``'s ``deliver``):

        * return :data:`VOLATILE` when the next message is not a
          deterministic function of the node's current state (e.g. the node
          still draws fresh per-round randomness) — the engine then runs
          ``compose`` and ``deliver`` for the node every round;
        * otherwise return a hashable token such that *token unchanged ⇒
          next composed message identical to the previous one*.  While the
          token is stable the engine reuses the cached message without even
          calling ``compose``; when it changes, ``compose`` runs again and
          the node and its neighbours are re-delivered.

        The default is conservatively :data:`VOLATILE`.
        """
        return VOLATILE

    @abstractmethod
    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        """Process the messages node ``v`` received from its current neighbours."""

    def end_round(self, round_index: int) -> None:
        """Optional hook called after every node has been delivered to."""

    @abstractmethod
    def output(self, v: NodeId) -> Value:
        """The output of node ``v`` at the end of the current round (``None`` = ⊥)."""

    # -- optional acceleration ----------------------------------------------------

    def as_kernel(self) -> Optional[Any]:
        """A factory for this algorithm's array kernel, or ``None`` (default).

        Algorithms with a hand-vectorised implementation in
        :mod:`repro.kernel` return a zero-argument callable producing an
        ``AlgorithmKernel`` bound to this instance; the simulator calls the
        factory after :meth:`setup` (kernels need ``n``) when resolving
        ``delivery="kernel"``.  The kernel must be byte-identical to the
        per-node methods — verified by the equivalence matrix and the
        ``--verify kernel`` runtime gate (:mod:`repro.verify.policy`).
        Subclasses of an accelerated
        algorithm are *not* accelerated automatically: overrides must check
        ``type(self)`` so that a subclass with changed round logic silently
        falls back to the classic engine instead of being mis-executed.
        """
        return None

    # -- optional introspection ---------------------------------------------------

    def outputs(self) -> Dict[NodeId, Value]:
        """The full output vector over the nodes that have woken up."""
        return {v: self.output(v) for v in self._awake}

    def state_summary(self) -> Any:
        """Internal state exposed to adaptive adversaries / debugging (optional)."""
        return None

    def metrics(self) -> Mapping[str, float]:
        """Algorithm-specific counters merged into the round metrics (optional)."""
        return {}
