"""Helpers shared by several algorithm families."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.types import NodeId, Value
from repro.problems.packing_covering import ProblemPair
from repro.runtime.messages import Message
from repro.core.interfaces import NetworkStaticAlgorithm

__all__ = ["NullBackbone"]


class NullBackbone(NetworkStaticAlgorithm):
    """A network-static algorithm that always outputs ⊥.

    The all-⊥ vector is trivially a partial solution for every problem pair,
    so this satisfies property B.1 — but it obviously violates B.2 (it never
    produces a value at all).  It exists to build the "Concat without
    backbone" ablation (experiment E13c): combining it with a dynamic
    algorithm yields the naive scheme sketched in Section 1.1 in which a fresh
    instance is started every round on an empty input, whose output is valid
    but completely unstable.
    """

    name = "null-backbone"
    alpha = 0

    # Trivially pure: the message is the constant ``None`` and deliver/output
    # are stateless no-ops.  (Only ever run inside the Concat combiner, which
    # is itself ineligible, but the declaration documents the audit.)
    message_stability = "pure"

    def __init__(self, pair_factory: Callable[[], ProblemPair]) -> None:
        super().__init__()
        self._pair_factory = pair_factory

    def problem_pair(self) -> ProblemPair:
        return self._pair_factory()

    def on_wake(self, v: NodeId) -> None:  # no state to initialise
        return None

    def compose(self, v: NodeId) -> Message:
        return None

    def compose_fingerprint(self, v: NodeId) -> Message:
        return None  # the constant silent message

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        return None

    def output(self, v: NodeId) -> Value:
        return None
