"""Algorithm 3: ``SColor`` — the (O(log n), 2)-network-static colouring algorithm.

``SColor`` is the basic randomized colouring run on the *current* graph
``G_r`` with one extra rule: a coloured node whose colour is no longer in its
(freshly recomputed) palette **uncolours itself**.  That happens exactly when
the node became adjacent to a neighbour with the same fixed colour or its
degree dropped below its colour — i.e. whenever its own LCL condition for the
pair ``(C_P, C_C)`` is violated — which is what makes the per-round output a
partial solution for the current graph (property B.1, Lemma 4.5).

If the 2-neighbourhood of a node is static, neither the node nor its
neighbours ever uncolour themselves and the node is coloured within
``O(log n)`` rounds w.h.p. (property B.2), by the same argument as the static
algorithm (Lemma 6.1/6.2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.types import Color, NodeId, Value
from repro.problems.coloring import coloring_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import NetworkStaticAlgorithm

__all__ = ["SColor"]

FIXED = "fixed"
TENTATIVE = "tent"


class SColor(NetworkStaticAlgorithm):
    """Algorithm 3 (network-static colouring with the un-colouring rule)."""

    name = "scolor"
    alpha = 2

    # Purity contract: coloured nodes broadcast the deterministic
    # ``(FIXED, c)``; uncoloured nodes draw a fresh tentative colour
    # (VOLATILE).  ``deliver`` recomputes palette/uncolouring purely from the
    # inbox and the node's own last message, so an unchanged inbox plus an
    # unchanged message make it a no-op (the un-colouring rule fires only
    # when the inbox actually changed).
    message_stability = "pure"

    def __init__(self, *, uncolor_enabled: bool = True) -> None:
        super().__init__()
        self._uncolor_enabled = uncolor_enabled
        self._color: Dict[NodeId, Optional[Color]] = {}
        self._palette: Dict[NodeId, Set[Color]] = {}
        self._tentative: Dict[NodeId, Optional[Color]] = {}
        self._uncolor_events = 0
        self._uncolored_count = 0

    def problem_pair(self) -> ProblemPair:
        return coloring_problem_pair()

    # -- lifecycle -----------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        self._color[v] = self.config.input_value(v)
        if self._color[v] is None:
            self._uncolored_count += 1
        self._palette[v] = {1}
        self._tentative[v] = None

    def compose(self, v: NodeId) -> Message:
        color = self._color[v]
        if color is not None:
            return (FIXED, color)
        palette = self._palette[v]
        choice = self._pick_uniform(v, palette)
        self._tentative[v] = choice
        return (TENTATIVE, choice)

    def compose_fingerprint(self, v: NodeId) -> Message:
        color = self._color[v]
        return (FIXED, color) if color is not None else VOLATILE

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        fixed: Set[Color] = set()
        tentative: Set[Color] = set()
        for message in inbox.values():
            if not isinstance(message, tuple) or len(message) != 2:
                continue
            tag, value = message
            if tag == FIXED:
                fixed.add(value)
            elif tag == TENTATIVE:
                tentative.add(value)
        degree = len(inbox)
        self._palette[v] = set(range(1, degree + 2)) - fixed
        if self._color[v] is None:
            choice = self._tentative[v]
            if choice is not None and choice in self._palette[v] and choice not in tentative:
                self._color[v] = choice
                self._uncolored_count -= 1
        elif self._uncolor_enabled and self._color[v] not in self._palette[v]:
            # Line 10: the colour clashes with a neighbour or exceeds deg+1.
            self._color[v] = None
            self._uncolor_events += 1
            self._uncolored_count += 1

    def output(self, v: NodeId) -> Value:
        return self._color.get(v)

    def as_kernel(self):
        if type(self) is not SColor:
            return None
        from repro.kernel.coloring import ColoringKernel

        return lambda: ColoringKernel(
            self,
            uncolor_enabled=self._uncolor_enabled,
            track_uncolor_events=True,
        )

    # -- helpers ---------------------------------------------------------------------

    def _pick_uniform(self, v: NodeId, palette: Set[Color]) -> Optional[Color]:
        if not palette:
            return None
        ordered = sorted(palette)
        index = int(self.rng(v).integers(0, len(ordered)))
        return ordered[index]

    def palette_of(self, v: NodeId) -> frozenset[Color]:
        """The node's current palette (exposed for analysis)."""
        return frozenset(self._palette.get(v, ()))

    def metrics(self) -> Mapping[str, float]:
        # Maintained transition-by-transition so quiescent rounds stay O(#active).
        return {
            "uncolored": float(self._uncolored_count),
            "uncolor_events": float(self._uncolor_events),
        }
