"""Centralised greedy colouring (analysis helper and quality yardstick).

Not a distributed algorithm: used by the analysis layer to compare the number
of colours the distributed algorithms use against a sequential greedy
colouring of the same graph, and by tests as an independent reference
implementation of "a proper (degree+1)-colouring exists and looks like this".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.types import Color, NodeId
from repro.dynamics.topology import Topology

__all__ = ["greedy_coloring"]


def greedy_coloring(
    graph: Topology,
    *,
    order: Optional[Sequence[NodeId]] = None,
    precolored: Optional[Dict[NodeId, Color]] = None,
) -> Dict[NodeId, Color]:
    """Colour ``graph`` greedily in the given node order.

    Every node receives the smallest colour not used by an already coloured
    neighbour, which is always at most ``deg(v) + 1`` — i.e. the result is a
    valid (degree+1)-colouring.

    Parameters
    ----------
    graph:
        The graph to colour.
    order:
        Node processing order (defaults to increasing node id).
    precolored:
        Colours that must be kept (they are validated to be conflict-free).

    Raises
    ------
    ValueError
        If ``precolored`` itself contains a conflict.
    """
    sequence: Iterable[NodeId] = order if order is not None else sorted(graph.nodes)
    colors: Dict[NodeId, Color] = {}
    if precolored:
        for v, c in precolored.items():
            if v in graph.nodes:
                colors[v] = c
        for v, c in colors.items():
            for u in graph.neighbors(v):
                if colors.get(u) == c:
                    raise ValueError(f"precolouring conflict on edge ({v}, {u}) with colour {c}")
    for v in sequence:
        if v in colors or v not in graph.nodes:
            continue
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 1
        while color in taken:
            color += 1
        colors[v] = color
    return colors
