"""The combined dynamic (degree+1)-colouring algorithm (Corollary 1.2).

``DynamicColoring = Concat(SColor, DColor, T1)``: SColor maintains a locally
stable partial colouring of the current graph; every round a fresh DColor
instance extends the SColor backbone into a complete colouring of the
window's intersection/union graphs; the output is always the oldest (fully
run) DColor instance.

Corollary 1.2 (restated for the implementation): with ``T1 = Θ(log n)`` the
output is a ``T1``-dynamic solution for (proper colouring, degree+1 range) in
every round w.h.p., and the output of a node whose 2-neighbourhood is static
during ``[r, r2]`` is unchanged during ``[r + 2·T1, r2]``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.concat import Concat
from repro.core.windows import default_window
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.coloring.scolor import SColor

__all__ = ["DynamicColoring", "dynamic_coloring"]


class DynamicColoring(Concat):
    """``Concat(SColor, DColor)`` with a named identity for reports."""

    name = "dynamic-coloring"

    def __init__(self, T1: int) -> None:
        super().__init__(static_factory=SColor, dynamic_factory=DColor, T1=T1)


def dynamic_coloring(n: int, *, window: Optional[int] = None) -> DynamicColoring:
    """Build the combined colouring algorithm with the practical default window.

    Parameters
    ----------
    n:
        Number of nodes (used to size the window ``T1 = Θ(log n)``).
    window:
        Explicit window override.
    """
    T1 = window if window is not None else default_window(n)
    return DynamicColoring(T1)
