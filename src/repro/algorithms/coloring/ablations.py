"""Ablated colouring variants (experiment E13).

Each ablation removes exactly one of the design choices the paper argues for,
so the experiments can show the choice is load-bearing:

* :class:`DColorCurrentGraphAblation` (E13a) — DColor that listens to all
  *current* neighbours instead of intersection-graph neighbours.  Fixed
  colours arriving over freshly inserted edges are then removed from the
  palette, the palette can be exhausted (the Lemma 4.2 invariant
  ``|P_v| ≥ |U(v)| + 1`` breaks), and nodes can stay uncoloured forever —
  violating the finalizing property A.2 and hence T-dynamic validity.
* :class:`SColorNoUncolorAblation` (E13b) — SColor without line 10 (the
  un-colouring rule).  A conflict created by a newly inserted edge is never
  repaired, so the per-round output stops being a partial solution for the
  current graph (property B.1 fails).
* :func:`concat_without_backbone` (E13c) — the Concat combiner seeded with a
  ⊥-backbone instead of SColor.  This is precisely the naive scheme sketched
  in Section 1.1 ("start a new instance of A in every round"): the output is
  still T-dynamic, but it changes essentially everywhere every round even on
  a completely static graph — the locally-static guarantee is lost.
"""

from __future__ import annotations

from repro.problems.coloring import coloring_problem_pair
from repro.core.concat import Concat
from repro.algorithms.common import NullBackbone
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.coloring.scolor import SColor

__all__ = [
    "DColorCurrentGraphAblation",
    "SColorNoUncolorAblation",
    "concat_without_backbone",
]


class DColorCurrentGraphAblation(DColor):
    """DColor without the restriction to the running intersection graph (E13a)."""

    name = "dcolor-current-graph"

    def __init__(self) -> None:
        super().__init__(restrict_to_intersection=False)


class SColorNoUncolorAblation(SColor):
    """SColor without the un-colouring rule (E13b)."""

    name = "scolor-no-uncolor"

    def __init__(self) -> None:
        super().__init__(uncolor_enabled=False)


def concat_without_backbone(T1: int) -> Concat:
    """The Section 1.1 naive scheme: fresh DColor instances over a ⊥ backbone (E13c)."""
    combiner = Concat(
        static_factory=lambda: NullBackbone(coloring_problem_pair),
        dynamic_factory=DColor,
        T1=T1,
    )
    combiner.name = "coloring-no-backbone"
    return combiner
