"""(degree+1)-colouring algorithms (Section 4 and Section 6 of the paper)."""

from repro.algorithms.coloring.basic_static import BasicColoring
from repro.algorithms.coloring.scolor import SColor
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.coloring.dynamic_coloring import DynamicColoring, dynamic_coloring
from repro.algorithms.coloring.greedy import greedy_coloring
from repro.algorithms.coloring.baselines import RestartColoring
from repro.algorithms.coloring.ablations import (
    DColorCurrentGraphAblation,
    SColorNoUncolorAblation,
    concat_without_backbone,
)

__all__ = [
    "BasicColoring",
    "SColor",
    "DColor",
    "DynamicColoring",
    "dynamic_coloring",
    "greedy_coloring",
    "RestartColoring",
    "DColorCurrentGraphAblation",
    "SColorNoUncolorAblation",
    "concat_without_backbone",
]
