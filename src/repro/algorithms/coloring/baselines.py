"""Baseline colouring strategies for the comparison experiment (E9).

The paper motivates its framework by contrasting it with *recovery-based*
approaches: algorithms that, after a topology change, need a quiet recovery
period to fix their output and provide no guarantees if further changes occur
during recovery (Section 1).  Two such baselines are provided:

* :class:`RestartColoring` — periodically throw the whole colouring away and
  recompute from scratch with the basic static algorithm.  Valid eventually
  (if the graph stays quiet long enough) but wildly unstable and invalid
  during every recovery window.
* ``SColor`` *alone* (no Concat) — the pure "repair" strategy: always fix
  conflicts locally but give no sliding-window guarantee; under continuous
  churn nodes keep dropping in and out of the coloured state.  (No extra
  class is needed; experiment E9 simply runs :class:`~repro.algorithms.coloring.scolor.SColor`
  directly.)
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.errors import ConfigurationError
from repro.types import Color, NodeId, Value
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.messages import Message

__all__ = ["RestartColoring"]

FIXED = "fixed"
TENTATIVE = "tent"


class RestartColoring(DistributedAlgorithm):
    """Recovery-style baseline: restart the basic colouring every ``period`` rounds.

    Each node counts its own rounds since waking up and wipes its colour when
    the counter hits a multiple of ``period`` (all nodes that woke together
    restart together; stragglers restart on their own schedule — the baseline
    is intentionally naive).
    """

    name = "restart-coloring"

    # Audited: NOT eligible for incremental delivery.  ``deliver`` advances a
    # per-node age counter every round (so it is never a no-op, even on an
    # unchanged inbox) and ``compose`` wipes the colour when the counter hits
    # a restart boundary — the message is a function of elapsed time, not of
    # delivered state.
    message_stability = "none"

    def __init__(self, period: int) -> None:
        super().__init__()
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        self._period = period
        self._color: Dict[NodeId, Optional[Color]] = {}
        self._palette: Dict[NodeId, Set[Color]] = {}
        self._tentative: Dict[NodeId, Optional[Color]] = {}
        self._age: Dict[NodeId, int] = {}
        self._restarts = 0

    @property
    def period(self) -> int:
        """Rounds between two restarts."""
        return self._period

    def on_wake(self, v: NodeId) -> None:
        self._color[v] = None
        self._palette[v] = {1}
        self._tentative[v] = None
        self._age[v] = 0

    def compose(self, v: NodeId) -> Message:
        if self._age[v] % self._period == 0 and self._age[v] > 0:
            # Recovery restart: wipe the colour and start over.
            if self._color[v] is not None:
                self._restarts += 1
            self._color[v] = None
            self._palette[v] = {1}
        color = self._color[v]
        if color is not None:
            return (FIXED, color)
        choice = self._pick_uniform(v, self._palette[v])
        self._tentative[v] = choice
        return (TENTATIVE, choice)

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        fixed: Set[Color] = set()
        tentative: Set[Color] = set()
        for message in inbox.values():
            if not isinstance(message, tuple) or len(message) != 2:
                continue
            tag, value = message
            if tag == FIXED:
                fixed.add(value)
            elif tag == TENTATIVE:
                tentative.add(value)
        degree = len(inbox)
        self._palette[v] = set(range(1, degree + 2)) - fixed
        if self._color[v] is None:
            choice = self._tentative[v]
            if choice is not None and choice in self._palette[v] and choice not in tentative:
                self._color[v] = choice
        self._age[v] += 1

    def output(self, v: NodeId) -> Value:
        return self._color.get(v)

    def _pick_uniform(self, v: NodeId, palette: Set[Color]) -> Optional[Color]:
        if not palette:
            return None
        ordered = sorted(palette)
        index = int(self.rng(v).integers(0, len(ordered)))
        return ordered[index]

    def metrics(self) -> Mapping[str, float]:
        uncolored = sum(1 for v in self._awake if self._color.get(v) is None)
        return {"uncolored": float(uncolored), "restarts": float(self._restarts)}
