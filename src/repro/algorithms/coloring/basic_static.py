"""Algorithm 6: the basic pipelined randomized (degree+1)-colouring for static graphs.

One identical round per node (so it supports asynchronous wake-up):

1. an uncoloured node picks a tentative colour uniformly at random from its
   palette and broadcasts it; a coloured node broadcasts its fixed colour;
2. after receiving, the palette is recomputed as ``[d(v) + 1]`` minus the
   fixed colours of the neighbours;
3. an uncoloured node keeps its tentative colour iff it is still in the
   palette and no neighbour picked the same tentative colour.

Lemma 6.1: each round an uncoloured node is coloured with probability at
least 1/64 or its palette shrinks by a factor ≥ 1/4; Lemma 6.2: all nodes are
coloured within ``O(log n)`` rounds w.h.p. (experiments E1/E2 measure both).

The messages are tagged tuples ``("fixed", c)`` / ``("tent", c)`` so a
receiver can distinguish committed from tentative colours, exactly as the
pseudo-code's ``F_v`` / ``S_v`` sets require.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.types import Color, NodeId, Value
from repro.runtime.algorithm import DistributedAlgorithm, VOLATILE
from repro.runtime.messages import Message

__all__ = ["BasicColoring"]

FIXED = "fixed"
TENTATIVE = "tent"


class BasicColoring(DistributedAlgorithm):
    """Algorithm 6 (static graphs; never uncolours a node)."""

    name = "basic-coloring"

    # Purity contract: a coloured node broadcasts the deterministic
    # ``(FIXED, c)`` forever; an uncoloured node draws fresh randomness every
    # round (VOLATILE).  ``deliver`` recomputes the palette purely from the
    # inbox and the node's own tentative choice, so an unchanged inbox plus
    # an unchanged message make it a no-op.
    message_stability = "pure"

    def __init__(self) -> None:
        super().__init__()
        self._color: Dict[NodeId, Optional[Color]] = {}
        self._palette: Dict[NodeId, Set[Color]] = {}
        self._tentative: Dict[NodeId, Optional[Color]] = {}
        self._uncolored_count = 0

    # -- lifecycle ----------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        # Input colours are honoured so the algorithm can also be used to
        # extend an existing partial colouring.
        self._color[v] = self.config.input_value(v)
        if self._color[v] is None:
            self._uncolored_count += 1
        self._palette[v] = {1}
        self._tentative[v] = None

    def compose(self, v: NodeId) -> Message:
        color = self._color[v]
        if color is not None:
            return (FIXED, color)
        palette = self._palette[v]
        choice = self._pick_uniform(v, palette)
        self._tentative[v] = choice
        return (TENTATIVE, choice)

    def compose_fingerprint(self, v: NodeId) -> Message:
        color = self._color[v]
        return (FIXED, color) if color is not None else VOLATILE

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        fixed: Set[Color] = set()
        tentative: Set[Color] = set()
        for message in inbox.values():
            if not isinstance(message, tuple) or len(message) != 2:
                continue
            tag, value = message
            if tag == FIXED:
                fixed.add(value)
            elif tag == TENTATIVE:
                tentative.add(value)
        degree = len(inbox)
        self._palette[v] = set(range(1, degree + 2)) - fixed
        if self._color[v] is None:
            choice = self._tentative[v]
            if choice is not None and choice in self._palette[v] and choice not in tentative:
                self._color[v] = choice
                self._uncolored_count -= 1

    def output(self, v: NodeId) -> Value:
        return self._color.get(v)

    def as_kernel(self):
        if type(self) is not BasicColoring:
            return None
        from repro.kernel.coloring import ColoringKernel

        return lambda: ColoringKernel(self, uncolor_enabled=False, track_uncolor_events=False)

    # -- helpers ---------------------------------------------------------------------

    def _pick_uniform(self, v: NodeId, palette: Set[Color]) -> Optional[Color]:
        if not palette:
            return None
        ordered = sorted(palette)
        index = int(self.rng(v).integers(0, len(ordered)))
        return ordered[index]

    def palette_of(self, v: NodeId) -> frozenset[Color]:
        """The node's current palette (exposed for the Lemma 6.1 experiment)."""
        return frozenset(self._palette.get(v, ()))

    def metrics(self) -> Mapping[str, float]:
        # Maintained transition-by-transition so quiescent rounds stay O(#active).
        return {"uncolored": float(self._uncolored_count)}
