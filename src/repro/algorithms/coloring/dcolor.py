"""Algorithm 2: ``DColor`` — the O(log n)-dynamic colouring algorithm.

``DColor`` is the basic randomized colouring with two changes that make it a
``T``-dynamic algorithm (Definition 3.3, A.1/A.2):

* **Communication is restricted to the running intersection graph**: a node
  only listens to neighbours that have been its neighbours in *every* round
  since this instance started.  Edges the adversary inserts later are ignored,
  so the adversary can never force a colour out of a node's palette through a
  new edge, which is what keeps the palette larger than the number of
  uncoloured (intersection-)neighbours (Lemma 4.2) and yields the
  ``O(log n)`` completion time (Lemma 4.4).
* **Colours are only ever removed from the palette** (never re-added) and a
  node that has fixed its colour keeps it forever, which is exactly property
  A.1 (input-extending).

The instance's *start round* is a communication round: the node broadcasts its
input colour, learns its start-round neighbourhood and degree, and initialises
its palette to ``[d_j(v) + 1]`` minus the input colours of its neighbours.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.types import Color, NodeId, Value
from repro.problems.coloring import coloring_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import DynamicAlgorithm

__all__ = ["DColor"]

INIT = "init"
FIXED = "fixed"
TENTATIVE = "tent"


class DColor(DynamicAlgorithm):
    """Algorithm 2 (dynamic colouring on the running intersection graph).

    Parameters
    ----------
    restrict_to_intersection:
        When false, the algorithm listens to *all* current neighbours instead
        of only intersection-graph neighbours.  This switch exists solely for
        the ablation experiment E13a (see
        :class:`repro.algorithms.coloring.ablations.DColorCurrentGraphAblation`);
        the paper's algorithm corresponds to the default ``True``.
    """

    name = "dcolor"

    # Purity contract: a node with a fixed colour broadcasts the
    # deterministic ``(FIXED, c)`` forever (colours are never retracted,
    # property A.1); uncoloured nodes draw fresh randomness (VOLATILE).
    # ``deliver`` only shrinks the live set / palette from the inbox, so an
    # unchanged inbox plus an unchanged message make it a no-op.
    message_stability = "pure"

    def __init__(self, *, restrict_to_intersection: bool = True) -> None:
        super().__init__()
        self._restrict = restrict_to_intersection
        self._color: Dict[NodeId, Optional[Color]] = {}
        self._palette: Dict[NodeId, Set[Color]] = {}
        self._tentative: Dict[NodeId, Optional[Color]] = {}
        self._live: Dict[NodeId, Optional[FrozenSet[NodeId]]] = {}
        self._started: Dict[NodeId, bool] = {}
        self._uncolored_count = 0

    def problem_pair(self) -> ProblemPair:
        return coloring_problem_pair()

    # -- lifecycle --------------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        self._color[v] = self.config.input_value(v)
        if self._color[v] is None:
            self._uncolored_count += 1
        self._palette[v] = set()
        self._tentative[v] = None
        self._live[v] = None
        self._started[v] = False

    def compose(self, v: NodeId) -> Message:
        if not self._started[v]:
            # Start round: broadcast the input colour (⊥ encoded as None).
            return (INIT, self._color[v])
        color = self._color[v]
        if color is not None:
            return (FIXED, color)
        choice = self._pick_uniform(v, self._palette[v])
        self._tentative[v] = choice
        return (TENTATIVE, choice)

    def compose_fingerprint(self, v: NodeId) -> Message:
        if not self._started[v]:
            return VOLATILE  # the start-round broadcast happens exactly once
        color = self._color[v]
        return (FIXED, color) if color is not None else VOLATILE

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        if not self._started[v]:
            self._deliver_start(v, inbox)
            return

        live = self._live[v]
        assert live is not None
        if self._restrict:
            live = frozenset(live & inbox.keys())
            self._live[v] = live
            relevant = {u: inbox[u] for u in live}
        else:
            relevant = dict(inbox)

        fixed: Set[Color] = set()
        tentative: Set[Color] = set()
        for message in relevant.values():
            if not isinstance(message, tuple) or len(message) != 2:
                continue
            tag, value = message
            if tag in (FIXED, INIT) and value is not None:
                fixed.add(value)
            elif tag == TENTATIVE and value is not None:
                tentative.add(value)

        # Line 5: the palette only shrinks.
        self._palette[v] -= fixed
        if self._color[v] is None:
            choice = self._tentative[v]
            if choice is not None and choice in self._palette[v] and choice not in tentative:
                self._color[v] = choice
                self._uncolored_count -= 1

    def _deliver_start(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        """The start communication round: learn neighbours, initialise the palette."""
        self._live[v] = frozenset(inbox.keys())
        if self._color[v] is None:
            neighbor_fixed = {
                message[1]
                for message in inbox.values()
                if isinstance(message, tuple) and len(message) == 2
                and message[0] in (INIT, FIXED) and message[1] is not None
            }
            degree = len(inbox)
            self._palette[v] = set(range(1, degree + 2)) - neighbor_fixed
        self._started[v] = True

    def output(self, v: NodeId) -> Value:
        return self._color.get(v)

    # -- helpers -----------------------------------------------------------------------

    def _pick_uniform(self, v: NodeId, palette: Set[Color]) -> Optional[Color]:
        if not palette:
            return None
        ordered = sorted(palette)
        index = int(self.rng(v).integers(0, len(ordered)))
        return ordered[index]

    def palette_of(self, v: NodeId) -> frozenset[Color]:
        """The node's current palette (exposed for the Lemma 4.3 experiment E2)."""
        return frozenset(self._palette.get(v, ()))

    def live_neighbors_of(self, v: NodeId) -> frozenset[NodeId]:
        """The node's current intersection-graph neighbour set."""
        live = self._live.get(v)
        return frozenset() if live is None else live

    def metrics(self) -> Mapping[str, float]:
        # Maintained transition-by-transition so quiescent rounds stay O(#active).
        return {"uncolored": float(self._uncolored_count)}
