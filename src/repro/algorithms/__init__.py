"""Distributed algorithms: the paper's algorithms, their static ancestors, baselines and ablations.

* :mod:`repro.algorithms.coloring` — Section 4 ((degree+1)-colouring): the
  basic static randomized colouring (Algorithm 6), ``DColor`` (Algorithm 2),
  ``SColor`` (Algorithm 3), the combined ``DynamicColoring`` (Corollary 1.2),
  baselines and ablations.
* :mod:`repro.algorithms.mis` — Section 5 (MIS): pipelined Luby, a Ghaffari
  style static algorithm, ``DMis`` (Algorithm 4), ``SMis`` (Algorithm 5), the
  combined ``DynamicMIS`` (Corollary 1.3), baselines and ablations.
* :mod:`repro.algorithms.matching` — the Section 7.1 recipe applied to maximal
  matching (an extension beyond the paper's two worked examples).
* :mod:`repro.algorithms.common` — shared helpers (the ⊥-backbone used by the
  Concat ablation).
"""

from repro.algorithms import coloring, mis, matching
from repro.algorithms.common import NullBackbone

__all__ = ["coloring", "mis", "matching", "NullBackbone"]
