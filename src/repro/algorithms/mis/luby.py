"""Pipelined Luby MIS for static graphs.

On a static graph the dynamic algorithm ``DMis`` *is* the single-round-type
version of Luby's algorithm [ABI86, Lub86]: the intersection graph never loses
edges, so the restriction to intersection-graph neighbours is vacuous.
``LubyMIS`` therefore simply re-labels :class:`~repro.algorithms.mis.dmis.DMis`
so experiments and reports can refer to the classic algorithm by name, and so
the static baseline is literally the paper's claim "the dynamic algorithm is a
small modification of the classic one".
"""

from __future__ import annotations

from repro.algorithms.mis.dmis import DMis

__all__ = ["LubyMIS"]


class LubyMIS(DMis):
    """Luby's algorithm, pipelined (one round type), for static graphs."""

    name = "luby"

    def __init__(self) -> None:
        super().__init__(restrict_to_intersection=True)
