"""Centralised greedy MIS (analysis helper and quality yardstick)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.types import NodeId
from repro.dynamics.topology import Topology

__all__ = ["greedy_mis"]


def greedy_mis(graph: Topology, *, order: Optional[Sequence[NodeId]] = None) -> frozenset[NodeId]:
    """Compute a maximal independent set by scanning nodes in the given order.

    Every node is added to the set unless one of its neighbours already is —
    the textbook sequential greedy whose output is always an MIS.  Used by
    tests as an independent reference and by the analysis layer to compare
    MIS sizes.
    """
    sequence: Iterable[NodeId] = order if order is not None else sorted(graph.nodes)
    members: Set[NodeId] = set()
    blocked: Set[NodeId] = set()
    for v in sequence:
        if v not in graph.nodes or v in blocked or v in members:
            continue
        members.add(v)
        blocked.update(graph.neighbors(v))
    return frozenset(members)
