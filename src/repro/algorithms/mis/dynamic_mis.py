"""The combined dynamic MIS algorithm (Corollary 1.3).

``DynamicMIS = Concat(SMis, DMis, T1)``: SMis maintains a locally stable
partial (independent set, dominating set) backbone of the current graph; every
round a fresh DMis instance extends the backbone into a complete solution of
the window graphs; the output is the oldest fully-run DMis instance.

Corollary 1.3 (restated for the implementation): with ``T1 = Θ(log n)`` the
output is a ``T1``-dynamic MIS every round w.h.p., and the output of a node
whose 2-neighbourhood is static during ``[r, r2]`` is unchanged during
``[r + 2·T1, r2]``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.concat import Concat
from repro.core.windows import default_window
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.smis import SMis

__all__ = ["DynamicMIS", "dynamic_mis"]


class DynamicMIS(Concat):
    """``Concat(SMis, DMis)`` with a named identity for reports.

    Parameters
    ----------
    T1:
        The dynamic window size.
    revalidate_dominated:
        Forwarded to every :class:`~repro.algorithms.mis.dmis.DMis` instance.
        Off by default (paper-faithful); switching it on removes the transient
        domination holes documented in EXPERIMENTS.md at the cost of weakening
        the literal input-extension property A.1 for stale input values.
    """

    name = "dynamic-mis"

    def __init__(self, T1: int, *, revalidate_dominated: bool = False) -> None:
        super().__init__(
            static_factory=SMis,
            dynamic_factory=lambda: DMis(revalidate_dominated=revalidate_dominated),
            T1=T1,
        )
        self.revalidate_dominated = revalidate_dominated


def dynamic_mis(
    n: int, *, window: Optional[int] = None, revalidate_dominated: bool = False
) -> DynamicMIS:
    """Build the combined MIS algorithm with the practical default window."""
    T1 = window if window is not None else default_window(n)
    return DynamicMIS(T1, revalidate_dominated=revalidate_dominated)
