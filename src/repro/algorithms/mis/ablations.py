"""Ablated MIS variants (experiment E13).

* :class:`DMisCurrentGraphAblation` — DMis listening to all *current*
  neighbours instead of intersection-graph neighbours.  Against an adversary
  that keeps inserting edges between undecided nodes, progress can be delayed
  arbitrarily (a node that would have been a local minimum keeps acquiring
  smaller-valued neighbours), so the finalizing property A.2 degrades; the
  experiment measures the number of undecided nodes left after the window.
* :class:`SMisNoUndecideAblation` — SMis without the un-decide rules.  A new
  edge between two MIS nodes, or the loss of a dominator, is never repaired,
  so the per-round output stops being a partial solution for the current graph
  (property B.1 fails).
* :func:`concat_without_backbone_mis` — the Concat combiner with a ⊥ backbone
  (the naive Section 1.1 scheme): still T-dynamic but maximally unstable.
"""

from __future__ import annotations

from repro.problems.mis import mis_problem_pair
from repro.core.concat import Concat
from repro.algorithms.common import NullBackbone
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.smis import SMis

__all__ = [
    "DMisCurrentGraphAblation",
    "SMisNoUndecideAblation",
    "concat_without_backbone_mis",
]


class DMisCurrentGraphAblation(DMis):
    """DMis without the restriction to the running intersection graph."""

    name = "dmis-current-graph"

    def __init__(self) -> None:
        super().__init__(restrict_to_intersection=False)


class SMisNoUndecideAblation(SMis):
    """SMis without the un-decide rules."""

    name = "smis-no-undecide"

    def __init__(self) -> None:
        super().__init__(undecide_enabled=False)


def concat_without_backbone_mis(T1: int) -> Concat:
    """The Section 1.1 naive scheme for MIS: fresh DMis instances over a ⊥ backbone."""
    combiner = Concat(
        static_factory=lambda: NullBackbone(mis_problem_pair),
        dynamic_factory=DMis,
        T1=T1,
    )
    combiner.name = "mis-no-backbone"
    return combiner
