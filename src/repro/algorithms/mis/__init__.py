"""MIS algorithms (Section 5 of the paper)."""

from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.smis import SMis
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.mis.ghaffari import GhaffariMIS
from repro.algorithms.mis.dynamic_mis import DynamicMIS, dynamic_mis
from repro.algorithms.mis.greedy import greedy_mis
from repro.algorithms.mis.baselines import RestartMis
from repro.algorithms.mis.ablations import (
    DMisCurrentGraphAblation,
    SMisNoUndecideAblation,
    concat_without_backbone_mis,
)

__all__ = [
    "DMis",
    "SMis",
    "LubyMIS",
    "GhaffariMIS",
    "DynamicMIS",
    "dynamic_mis",
    "greedy_mis",
    "RestartMis",
    "DMisCurrentGraphAblation",
    "SMisNoUndecideAblation",
    "concat_without_backbone_mis",
]
