"""Algorithm 4: ``DMis`` — the O(log n)-dynamic MIS algorithm (pipelined Luby).

Every node is in exactly one of three states — ``mis``, ``dominated`` or
``undecided`` — and the input ``(M, D)`` must be a partial solution (``M``
independent, every ``D`` node dominated) of the start-round graph.  The round
body is Luby's algorithm collapsed into a single round type:

* ``mis`` nodes broadcast a *mark*;
* ``undecided`` nodes broadcast a fresh uniform random number;
* an undecided node that receives a mark joins ``dominated``;
* an undecided node whose random number is strictly smaller than every random
  number it received (from undecided neighbours) joins ``mis``.

As in DColor, communication is restricted to the *running intersection graph*:
edges inserted by the adversary after the instance started are ignored.  The
analysis (Lemma 5.2: the expected number of edges between undecided nodes in
the intersection graph drops by a factor 2/3 every two rounds; Lemma 5.4:
all nodes decided after O(log n) rounds w.h.p.) needs a 2-oblivious adversary
— experiment E10 probes what an adaptive adversary can do.

Nodes never leave ``mis`` or ``dominated`` (property A.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from repro.types import MisState, NodeId, Value, mis_state_to_value, value_to_mis_state
from repro.problems.mis import mis_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import DynamicAlgorithm

__all__ = ["DMis"]

MARK = "mark"
RAND = "rand"


class DMis(DynamicAlgorithm):
    """Algorithm 4 (dynamic MIS on the running intersection graph).

    Parameters
    ----------
    restrict_to_intersection:
        When false, listens to all current neighbours (ablation E13; the
        paper's algorithm corresponds to the default ``True``).
    revalidate_dominated:
        **Extension beyond the paper** (disabled by default).  The paper's
        combiner can be fed a backbone snapshot containing a *transient
        domination hole* — a node marked ``dominated`` whose only dominator
        left the MIS in the very same round (see the "observed deviation" note
        in EXPERIMENTS.md).  With this flag, a node whose *input* is
        ``dominated`` re-validates that decision in the instance's first
        round: if no mark arrives from an intersection-graph neighbour, it
        reverts to ``undecided`` and participates normally.  This removes the
        measured MIS validity gap at the cost of weakening the literal
        input-extension property A.1 for provably-stale input values.
    """

    name = "dmis"

    # Purity contract: ``mis`` nodes broadcast the deterministic ``(MARK,)``
    # and ``dominated`` nodes stay silent (decisions are never retracted,
    # property A.1); undecided nodes draw a fresh random value (VOLATILE).
    # A decided node's ``deliver`` only intersects its live set with the
    # inbox keys, so an unchanged inbox makes it a no-op.
    message_stability = "pure"

    def __init__(
        self,
        *,
        restrict_to_intersection: bool = True,
        revalidate_dominated: bool = False,
    ) -> None:
        super().__init__()
        self._restrict = restrict_to_intersection
        self._revalidate_dominated = revalidate_dominated
        self._state: Dict[NodeId, MisState] = {}
        self._live: Dict[NodeId, Optional[FrozenSet[NodeId]]] = {}
        self._drawn: Dict[NodeId, float] = {}
        self._needs_revalidation: set[NodeId] = set()
        self._undecided_n = 0

    def problem_pair(self) -> ProblemPair:
        return mis_problem_pair()

    # -- lifecycle -----------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        self._state[v] = value_to_mis_state(self.config.input_value(v))
        if self._state[v] is MisState.UNDECIDED:
            self._undecided_n += 1
        self._live[v] = None
        self._drawn[v] = float("inf")
        if self._revalidate_dominated and self._state[v] is MisState.DOMINATED:
            self._needs_revalidation.add(v)

    def compose(self, v: NodeId) -> Message:
        state = self._state[v]
        if state is MisState.MIS:
            return (MARK,)
        if state is MisState.UNDECIDED:
            value = float(self.rng(v).random())
            self._drawn[v] = value
            return (RAND, value)
        return None  # dominated nodes stay silent

    def compose_fingerprint(self, v: NodeId) -> Message:
        if v in self._needs_revalidation:
            return VOLATILE  # the pending first-round revalidation may flip the state
        state = self._state[v]
        if state is MisState.MIS:
            return (MARK,)
        if state is MisState.UNDECIDED:
            return VOLATILE
        return None

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        live = self._live[v]
        if live is None:
            # First round of this instance: the intersection graph so far is G_j.
            live = frozenset(inbox.keys())
        elif self._restrict:
            live = frozenset(live & inbox.keys())
        else:
            live = frozenset(inbox.keys())
        self._live[v] = live

        if v in self._needs_revalidation:
            # Extension (see class docstring): a dominated *input* must still
            # have a dominator among the instance's first-round neighbours,
            # otherwise the value was a transient hole and is dropped.
            self._needs_revalidation.discard(v)
            has_dominator = any(
                isinstance(inbox.get(u), tuple) and inbox[u][0] == MARK for u in live
            )
            if not has_dominator:
                self._state[v] = MisState.UNDECIDED
                self._undecided_n += 1
            return

        if self._state[v] is not MisState.UNDECIDED:
            return

        mark_received = False
        min_neighbor_rand = float("inf")
        for u in live:
            message = inbox.get(u)
            if not isinstance(message, tuple):
                continue
            if message[0] == MARK:
                mark_received = True
            elif message[0] == RAND and len(message) == 2:
                if message[1] < min_neighbor_rand:
                    min_neighbor_rand = message[1]

        if mark_received:
            self._state[v] = MisState.DOMINATED
            self._undecided_n -= 1
        elif self._drawn[v] < min_neighbor_rand:
            self._state[v] = MisState.MIS
            self._undecided_n -= 1

    def output(self, v: NodeId) -> Value:
        state = self._state.get(v)
        if state is None:
            return None
        return mis_state_to_value(state)

    def as_kernel(self):
        # The revalidation extension's first-round special case is not
        # vectorised; such instances stay on the classic engine.
        if type(self) is not DMis or self._revalidate_dominated:
            return None
        from repro.kernel.mis import DMisKernel

        return lambda: DMisKernel(self, restrict_to_intersection=self._restrict)

    # -- introspection --------------------------------------------------------------

    def state_of(self, v: NodeId) -> MisState:
        """The node's tri-state (``undecided`` if it has not woken up)."""
        return self._state.get(v, MisState.UNDECIDED)

    def live_neighbors_of(self, v: NodeId) -> frozenset[NodeId]:
        """The node's current intersection-graph neighbour set."""
        live = self._live.get(v)
        return frozenset() if live is None else live

    def undecided_count(self) -> int:
        """Number of awake nodes still undecided (maintained incrementally)."""
        return self._undecided_n

    def metrics(self) -> Mapping[str, float]:
        return {"undecided": float(self.undecided_count())}
