"""Baseline MIS strategies for the comparison experiment (E9).

* :class:`RestartMis` — periodically throw the whole MIS away and recompute
  from scratch with pipelined Luby (the recovery-based strategy the paper's
  introduction argues against: it needs a quiet period and its output churns
  wholesale at every restart).
* ``SMis`` *alone* (no Concat) — the pure repair strategy; experiment E9 runs
  :class:`~repro.algorithms.mis.smis.SMis` directly.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.types import MisState, NodeId, Value, mis_state_to_value
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.messages import Message

__all__ = ["RestartMis"]

MARK = "mark"
RAND = "rand"


class RestartMis(DistributedAlgorithm):
    """Recovery-style baseline: restart pipelined Luby every ``period`` rounds.

    Each node counts its own rounds since waking and resets to ``undecided``
    when the counter hits a multiple of ``period``.  Between restarts it runs
    plain Luby rounds on whatever the current graph happens to deliver.
    """

    name = "restart-mis"

    # Audited: NOT eligible for incremental delivery — same reasons as
    # RestartColoring: the per-node age counter advances in every ``deliver``
    # and ``compose`` restarts nodes on a time schedule.
    message_stability = "none"

    def __init__(self, period: int) -> None:
        super().__init__()
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        self._period = period
        self._state: Dict[NodeId, MisState] = {}
        self._drawn: Dict[NodeId, float] = {}
        self._age: Dict[NodeId, int] = {}
        self._restarts = 0

    @property
    def period(self) -> int:
        """Rounds between two restarts."""
        return self._period

    def on_wake(self, v: NodeId) -> None:
        self._state[v] = MisState.UNDECIDED
        self._drawn[v] = float("inf")
        self._age[v] = 0

    def compose(self, v: NodeId) -> Message:
        if self._age[v] % self._period == 0 and self._age[v] > 0:
            if self._state[v] is not MisState.UNDECIDED:
                self._restarts += 1
            self._state[v] = MisState.UNDECIDED
        state = self._state[v]
        if state is MisState.MIS:
            return (MARK,)
        if state is MisState.UNDECIDED:
            value = float(self.rng(v).random())
            self._drawn[v] = value
            return (RAND, value)
        return None

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        mark_received = False
        min_neighbor_rand = float("inf")
        for message in inbox.values():
            if not isinstance(message, tuple):
                continue
            if message[0] == MARK:
                mark_received = True
            elif message[0] == RAND and len(message) == 2 and message[1] < min_neighbor_rand:
                min_neighbor_rand = message[1]
        if self._state[v] is MisState.UNDECIDED:
            if mark_received:
                self._state[v] = MisState.DOMINATED
            elif self._drawn[v] < min_neighbor_rand:
                self._state[v] = MisState.MIS
        self._age[v] += 1

    def output(self, v: NodeId) -> Value:
        state = self._state.get(v)
        if state is None:
            return None
        return mis_state_to_value(state)

    def metrics(self) -> Mapping[str, float]:
        undecided = sum(1 for v in self._awake if self._state.get(v) is MisState.UNDECIDED)
        return {"undecided": float(undecided), "restarts": float(self._restarts)}
