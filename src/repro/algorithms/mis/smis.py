"""Algorithm 5: ``SMis`` — the (O(log n), 2)-network-static MIS algorithm.

``SMis`` is a pipelined variant of Ghaffari's MIS algorithm [Gha16] with one
crucial modification: decided nodes can become *undecided again* whenever
their local MIS condition is violated by a topology change — an ``mis`` node
that receives a mark (a new ``mis`` neighbour appeared) leaves the set, and a
``dominated`` node that receives no mark (its dominator vanished) becomes
undecided.  This is what makes every round's output a partial solution for
the *current* graph (property B.1, Lemma 5.5).

Each undecided node keeps a *desire level* ``p(v) ∈ [1/(5n), 1/2]`` (the lower
cap is the paper's addition for the dynamic setting) and an *effective degree*
``δ(v) = Σ_{u ∈ N(v) ∩ U} p(u)``:

* every round an undecided node becomes a *candidate* with probability
  ``p(v)`` and broadcasts ``(p(v), candidate?)``;
* after receiving, ``p(v)`` is halved if ``δ(v) ≥ 2`` and doubled (capped at
  1/2) otherwise;
* a candidate with no candidate neighbour and no mark joins the MIS; an
  undecided node with a mark joins ``dominated``.

If the 2-neighbourhood of a node is static, it is decided within ``O(log n)``
rounds w.h.p. and never changes its output afterwards (property B.2,
Lemma 5.6, via the golden-round argument adapted from [Gha16]).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.types import MisState, NodeId, Value, mis_state_to_value, value_to_mis_state
from repro.problems.mis import mis_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import NetworkStaticAlgorithm

__all__ = ["SMis"]

MARK = "mark"
UNDECIDED_MSG = "und"


class SMis(NetworkStaticAlgorithm):
    """Algorithm 5 (network-static MIS with the un-decide rules).

    Parameters
    ----------
    undecide_enabled:
        When false, decided nodes never revert (ablation E13b for MIS); the
        paper's algorithm corresponds to the default ``True``.
    """

    name = "smis"
    alpha = 2

    # Purity contract: ``mis`` nodes broadcast the deterministic ``(MARK,)``
    # and ``dominated`` nodes stay silent; undecided nodes draw a fresh
    # candidate coin every round (VOLATILE).  A decided node's ``deliver``
    # re-evaluates the un-decide rules purely from the inbox, so an unchanged
    # inbox makes it a no-op (the rule fired last round or not at all).
    message_stability = "pure"

    def __init__(self, *, undecide_enabled: bool = True) -> None:
        super().__init__()
        self._undecide_enabled = undecide_enabled
        self._state: Dict[NodeId, MisState] = {}
        self._desire: Dict[NodeId, float] = {}
        self._candidate: Dict[NodeId, bool] = {}
        self._undecide_events = 0
        self._undecided_n = 0

    def problem_pair(self) -> ProblemPair:
        return mis_problem_pair()

    # -- lifecycle -------------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        self._state[v] = value_to_mis_state(self.config.input_value(v))
        if self._state[v] is MisState.UNDECIDED:
            self._undecided_n += 1
        self._desire[v] = 0.5
        self._candidate[v] = False

    def compose(self, v: NodeId) -> Message:
        state = self._state[v]
        if state is MisState.MIS:
            return (MARK,)
        if state is MisState.UNDECIDED:
            p = self._desire[v]
            is_candidate = bool(self.rng(v).random() < p)
            self._candidate[v] = is_candidate
            return (UNDECIDED_MSG, p, is_candidate)
        return None  # dominated nodes stay silent

    def compose_fingerprint(self, v: NodeId) -> Message:
        state = self._state[v]
        if state is MisState.MIS:
            return (MARK,)
        if state is MisState.UNDECIDED:
            return VOLATILE
        return None

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        mark_received = False
        candidate_note = False
        effective_degree = 0.0
        # Ascending-neighbour order pins the floating-point accumulation order
        # of the effective degree, making it independent of inbox dict history
        # (and equal to the array kernel's segmented sum).
        for u in sorted(inbox):
            message = inbox[u]
            if not isinstance(message, tuple):
                continue
            if message[0] == MARK:
                mark_received = True
            elif message[0] == UNDECIDED_MSG and len(message) == 3:
                effective_degree += float(message[1])
                if message[2]:
                    candidate_note = True

        state = self._state[v]

        if state is MisState.UNDECIDED:
            # Desire-level update (line 5): capped at [1/(5n), 1/2].
            floor = 1.0 / (5.0 * self.n)
            if effective_degree >= 2.0:
                self._desire[v] = max(self._desire[v] / 2.0, floor)
            else:
                self._desire[v] = min(2.0 * self._desire[v], 0.5)

        if state is MisState.UNDECIDED and mark_received:
            self._state[v] = MisState.DOMINATED
            self._undecided_n -= 1
        elif (
            state is MisState.UNDECIDED
            and not mark_received
            and self._candidate[v]
            and not candidate_note
        ):
            self._state[v] = MisState.MIS
            self._undecided_n -= 1
        elif state is MisState.MIS and mark_received and self._undecide_enabled:
            self._state[v] = MisState.UNDECIDED
            self._undecide_events += 1
            self._undecided_n += 1
        elif state is MisState.DOMINATED and not mark_received and self._undecide_enabled:
            self._state[v] = MisState.UNDECIDED
            self._undecide_events += 1
            self._undecided_n += 1

    def output(self, v: NodeId) -> Value:
        state = self._state.get(v)
        if state is None:
            return None
        return mis_state_to_value(state)

    def as_kernel(self):
        if type(self) is not SMis:
            return None
        from repro.kernel.mis import SMisKernel

        return lambda: SMisKernel(self, undecide_enabled=self._undecide_enabled)

    # -- introspection -----------------------------------------------------------------

    def state_of(self, v: NodeId) -> MisState:
        """The node's tri-state (``undecided`` if it has not woken up)."""
        return self._state.get(v, MisState.UNDECIDED)

    def desire_level_of(self, v: NodeId) -> float:
        """The node's current desire level ``p(v)``."""
        return self._desire.get(v, 0.5)

    def undecided_count(self) -> int:
        """Number of awake nodes still undecided (maintained incrementally)."""
        return self._undecided_n

    def metrics(self) -> Mapping[str, float]:
        return {
            "undecided": float(self.undecided_count()),
            "undecide_events": float(self._undecide_events),
        }
