"""Pipelined Ghaffari-style MIS for static graphs.

On a static graph the network-static algorithm ``SMis`` never triggers its
un-decide rules, so it coincides with (a pipelined variant of) Ghaffari's
algorithm [Gha16]: desire levels, candidate proposals, and the
mark/candidate-note decision rules.  ``GhaffariMIS`` re-labels
:class:`~repro.algorithms.mis.smis.SMis` with the un-decide rules switched off
so that the static ancestor exists as its own named algorithm (used by the E1
style convergence comparisons and by the tests that cross-check SMis against
its static origin).
"""

from __future__ import annotations

from repro.algorithms.mis.smis import SMis

__all__ = ["GhaffariMIS"]


class GhaffariMIS(SMis):
    """Ghaffari's MIS algorithm, pipelined, for static graphs (no un-decide rules)."""

    name = "ghaffari"

    def __init__(self) -> None:
        super().__init__(undecide_enabled=False)
