"""``SMatch`` — a network-static maximal-matching algorithm (the §7.1 recipe).

Handshake matching run on the *current* graph with repair ("un-decide") rules,
mirroring how ``SColor``/``SMis`` are obtained from their static ancestors:

* a **matched** node whose partner is no longer a neighbour (the edge
  vanished) or no longer points back at it becomes free again;
* a decidedly **unmatched** node becomes free again when it sees another
  decidedly unmatched neighbour (their shared edge would otherwise stay
  uncovered forever) or any free neighbour (the free neighbour might have no
  one else left to match with, so the pair must be able to handshake later);
* a **free** node proposes to a uniformly random free neighbour; mutual
  proposals match; a free node all of whose neighbours are matched declares
  itself unmatched.

On a static graph no repair rule ever fires after convergence and the
algorithm behaves like its static ancestor; under churn the repairs keep the
output a partial solution for the current graph.  The matching problems are
not analysed in the paper — this algorithm demonstrates the recipe and its
properties are validated empirically by the tests and experiment E13/E7
variants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from repro.types import NodeId, Value
from repro.problems.matching import UNMATCHED, matching_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import NetworkStaticAlgorithm

__all__ = ["SMatch"]

STATUS_MATCHED = "matched"
STATUS_FREE = "free"
STATUS_DONE = "done"


class SMatch(NetworkStaticAlgorithm):
    """Network-static maximal matching with repair rules."""

    name = "smatch"
    alpha = 2

    # Purity contract: matched / decidedly-unmatched nodes broadcast a
    # deterministic status; free nodes draw a fresh proposal (VOLATILE).
    # A decided node's ``deliver`` re-evaluates the repair rules purely from
    # the inbox, so an unchanged inbox makes it a no-op.
    message_stability = "pure"

    def __init__(self) -> None:
        super().__init__()
        self._decision: Dict[NodeId, Optional[int]] = {}
        self._free_neighbors: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._proposal: Dict[NodeId, Optional[NodeId]] = {}
        self._repair_events = 0
        self._undecided_n = 0

    def problem_pair(self) -> ProblemPair:
        return matching_problem_pair()

    # -- lifecycle ----------------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        value = self.config.input_value(v)
        self._decision[v] = value if value is not None else None
        if self._decision[v] is None:
            self._undecided_n += 1
        self._free_neighbors[v] = frozenset()
        self._proposal[v] = None

    def compose(self, v: NodeId) -> Message:
        decision = self._decision[v]
        if decision is None:
            candidates = sorted(self._free_neighbors[v])
            if candidates:
                index = int(self.rng(v).integers(0, len(candidates)))
                proposal: Optional[NodeId] = candidates[index]
            else:
                proposal = None
            self._proposal[v] = proposal
            return (STATUS_FREE, proposal)
        if decision == UNMATCHED:
            return (STATUS_DONE,)
        return (STATUS_MATCHED, decision)

    def compose_fingerprint(self, v: NodeId) -> Message:
        decision = self._decision[v]
        if decision is None:
            return VOLATILE
        if decision == UNMATCHED:
            return (STATUS_DONE,)
        return (STATUS_MATCHED, decision)

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        free_neighbors = set()
        done_neighbor = False
        proposed_to_me: set[NodeId] = set()
        partner_points_back = False
        decision = self._decision[v]

        for u, message in inbox.items():
            if not isinstance(message, tuple):
                continue
            tag = message[0]
            if tag == STATUS_FREE:
                free_neighbors.add(u)
                if len(message) == 2 and message[1] == v:
                    proposed_to_me.add(u)
            elif tag == STATUS_DONE:
                done_neighbor = True
            elif tag == STATUS_MATCHED and len(message) == 2:
                if decision is not None and decision not in (UNMATCHED,) and u == decision and message[1] == v:
                    partner_points_back = True

        if decision is not None and decision != UNMATCHED:
            # Matched: repair if the partner edge or the mutual pointer is gone.
            if decision not in inbox or not partner_points_back:
                self._decision[v] = None
                self._repair_events += 1
                self._undecided_n += 1
        elif decision == UNMATCHED:
            # Decidedly unmatched: repair when the decision blocks progress —
            # another unmatched neighbour (their shared edge is uncovered) or a
            # free neighbour (which might have no one else left to match with).
            if done_neighbor or free_neighbors:
                self._decision[v] = None
                self._repair_events += 1
                self._undecided_n += 1
        else:
            # Free: handshake.
            my_proposal = self._proposal[v]
            if my_proposal is not None and my_proposal in proposed_to_me:
                self._decision[v] = my_proposal
                self._undecided_n -= 1
            elif not free_neighbors and not done_neighbor and inbox:
                # Every neighbour is matched: all incident edges are covered.
                self._decision[v] = UNMATCHED
                self._undecided_n -= 1
            elif not inbox:
                # Isolated node: trivially unmatched.
                self._decision[v] = UNMATCHED
                self._undecided_n -= 1
        self._free_neighbors[v] = frozenset(free_neighbors)

    def output(self, v: NodeId) -> Value:
        """The node's output: its partner id, or ⊥.

        A decidedly *unmatched* node reports ⊥ rather than ``UNMATCHED``.  The
        internal unmatched state (and the ``done`` broadcast) still exists so
        neighbours stop waiting for the node, but exporting it as a committed
        output would poison the ``Concat`` combiner: a dynamic instance seeded
        with ``UNMATCHED`` can never revise it (property A.1), yet churn can
        later strand a free neighbour whose only possible partner is exactly
        this node.  Keeping the decision internal lets every dynamic instance
        re-derive "unmatched" safely (it only ever declares a node unmatched
        when all of its window neighbours are matched).  The cost is a weaker
        B.2 for unmatched nodes — their stability is provided by the combiner
        instead — which EXPERIMENTS.md documents for the matching extension.
        """
        decision = self._decision.get(v)
        if decision == UNMATCHED:
            return None
        return decision

    # -- introspection -------------------------------------------------------------------

    def metrics(self) -> Mapping[str, float]:
        # Maintained transition-by-transition so quiescent rounds stay O(#active).
        return {
            "undecided": float(self._undecided_n),
            "repair_events": float(self._repair_events),
        }
