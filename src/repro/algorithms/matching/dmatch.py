"""``DMatch`` — a T-dynamic maximal-matching algorithm built by the §7.1 recipe.

The recipe: take a simple randomized static algorithm with a single round
type, run it on the *running intersection graph*, and never retract a decided
output.  The static ancestor used here is randomized *handshake matching*:

* every free (undecided, unmatched) node picks one of its free
  intersection-graph neighbours uniformly at random and proposes to it;
* two nodes that propose to each other in the same round match;
* a free node all of whose intersection-graph neighbours are matched declares
  itself decidedly unmatched (every intersection edge incident to it is then
  covered by the other endpoint, so maximality cannot be violated later —
  the intersection graph only loses edges).

Outputs: partner id, ``UNMATCHED`` (−1) or ⊥.  The algorithm is
input-extending (a matched or unmatched decision is never revoked), so
property A.1 holds by construction; the finalizing property A.2 is validated
empirically (the paper does not analyse matching — this algorithm exists to
demonstrate the recipe, and its guarantees are measured, not proved).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from repro.types import NodeId, Value
from repro.problems.matching import UNMATCHED, matching_problem_pair
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import VOLATILE
from repro.runtime.messages import Message
from repro.core.interfaces import DynamicAlgorithm

__all__ = ["DMatch"]

#: Message tags.
STATUS_MATCHED = "matched"
STATUS_FREE = "free"
STATUS_DONE = "done"


class DMatch(DynamicAlgorithm):
    """Dynamic maximal matching on the running intersection graph."""

    name = "dmatch"

    # Purity contract: decided nodes (matched or decidedly unmatched)
    # broadcast a deterministic status forever (decisions are never revoked,
    # property A.1); free nodes draw a fresh proposal (VOLATILE).  A decided
    # node's ``deliver`` only intersects its live set with the inbox keys, so
    # an unchanged inbox makes it a no-op.
    message_stability = "pure"

    def __init__(self) -> None:
        super().__init__()
        #: partner id, UNMATCHED, or None (= still free / undecided).
        self._decision: Dict[NodeId, Optional[int]] = {}
        self._live: Dict[NodeId, Optional[FrozenSet[NodeId]]] = {}
        #: neighbours believed to still be free (refined from received messages).
        self._free_neighbors: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._proposal: Dict[NodeId, Optional[NodeId]] = {}
        self._undecided_n = 0

    def problem_pair(self) -> ProblemPair:
        return matching_problem_pair()

    # -- lifecycle ---------------------------------------------------------------------

    def on_wake(self, v: NodeId) -> None:
        value = self.config.input_value(v)
        self._decision[v] = value if value is not None else None
        if self._decision[v] is None:
            self._undecided_n += 1
        self._live[v] = None
        self._free_neighbors[v] = frozenset()
        self._proposal[v] = None

    def compose(self, v: NodeId) -> Message:
        decision = self._decision[v]
        if decision is None:
            candidates = sorted(self._free_neighbors[v])
            if candidates:
                index = int(self.rng(v).integers(0, len(candidates)))
                proposal: Optional[NodeId] = candidates[index]
            else:
                proposal = None
            self._proposal[v] = proposal
            return (STATUS_FREE, proposal)
        if decision == UNMATCHED:
            return (STATUS_DONE,)
        return (STATUS_MATCHED, decision)

    def compose_fingerprint(self, v: NodeId) -> Message:
        decision = self._decision[v]
        if decision is None:
            return VOLATILE
        if decision == UNMATCHED:
            return (STATUS_DONE,)
        return (STATUS_MATCHED, decision)

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        live = self._live[v]
        if live is None:
            live = frozenset(inbox.keys())
        else:
            live = frozenset(live & inbox.keys())
        self._live[v] = live

        free_neighbors = set()
        done_neighbor = False
        proposer_to_me: Optional[NodeId] = None
        for u in live:
            message = inbox.get(u)
            if not isinstance(message, tuple):
                continue
            if message[0] == STATUS_FREE:
                free_neighbors.add(u)
                if len(message) == 2 and message[1] == v and self._proposal[v] == u:
                    proposer_to_me = u
            elif message[0] == STATUS_DONE:
                done_neighbor = True

        if self._decision[v] is None:
            if proposer_to_me is not None:
                # Mutual proposal: match.
                self._decision[v] = proposer_to_me
                self._undecided_n -= 1
            elif not free_neighbors and not done_neighbor:
                # Every intersection-graph neighbour is matched, so every
                # incident intersection edge is covered by its other endpoint.
                # (A decidedly-unmatched neighbour blocks this: declaring
                # unmatched next to it would leave their shared edge uncovered
                # forever, so the node keeps waiting instead.)
                self._decision[v] = UNMATCHED
                self._undecided_n -= 1
        self._free_neighbors[v] = frozenset(free_neighbors)

    def output(self, v: NodeId) -> Value:
        return self._decision.get(v)

    # -- introspection --------------------------------------------------------------------

    def undecided_count(self) -> int:
        """Number of awake nodes still free (⊥; maintained incrementally)."""
        return self._undecided_n

    def metrics(self) -> Mapping[str, float]:
        return {"undecided": float(self.undecided_count())}
