"""Maximal matching via the framework's recipe (Section 7.1)."""

from repro.algorithms.matching.dmatch import DMatch
from repro.algorithms.matching.smatch import SMatch
from repro.algorithms.matching.dynamic_matching import DynamicMatching, dynamic_matching

__all__ = ["DMatch", "SMatch", "DynamicMatching", "dynamic_matching"]
