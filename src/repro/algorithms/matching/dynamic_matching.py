"""The combined dynamic maximal-matching algorithm (§7.1 recipe, end-to-end).

``DynamicMatching = Concat(SMatch, DMatch, T1)`` — the same construction as
``DynamicColoring`` / ``DynamicMIS`` applied to the matching pair
(maximality on the intersection graph, validity on the union graph).  The
paper does not analyse this problem; the class exists to demonstrate that the
framework is a reusable recipe, and its guarantees are validated empirically.
"""

from __future__ import annotations

from typing import Optional

from repro.core.concat import Concat
from repro.core.windows import default_window
from repro.algorithms.matching.dmatch import DMatch
from repro.algorithms.matching.smatch import SMatch

__all__ = ["DynamicMatching", "dynamic_matching"]


class DynamicMatching(Concat):
    """``Concat(SMatch, DMatch)`` with a named identity for reports."""

    name = "dynamic-matching"

    def __init__(self, T1: int) -> None:
        super().__init__(static_factory=SMatch, dynamic_factory=DMatch, T1=T1)


def dynamic_matching(n: int, *, window: Optional[int] = None) -> DynamicMatching:
    """Build the combined matching algorithm with the practical default window."""
    T1 = window if window is not None else default_window(n)
    return DynamicMatching(T1)
