"""dynlocal — Local Distributed Algorithms in Highly Dynamic Networks.

A faithful, laptop-scale reproduction of

    Philipp Bamberger, Fabian Kuhn, Yannic Maus:
    *Local Distributed Algorithms in Highly Dynamic Networks*
    (arXiv:1802.10199, IPDPS 2019)

The package provides:

* a synchronous round-based **dynamic-network simulator** with adversaries of
  graded obliviousness, wake-up schedules, churn and mobility models
  (:mod:`repro.dynamics`, :mod:`repro.runtime`);
* the paper's **packing/covering problem framework**, partial solutions and
  the sliding-window *T-dynamic solution* checker (:mod:`repro.problems`);
* the **algorithmic framework** — T-dynamic and (T, α)-network-static
  algorithm roles and the ``Concat`` combiner of Theorem 1.1
  (:mod:`repro.core`);
* the paper's **algorithms** — ``DColor``/``SColor`` for (degree+1)-colouring
  (Corollary 1.2), ``DMis``/``SMis`` for MIS (Corollary 1.3), their static
  ancestors, recovery-style baselines, ablations, and a maximal-matching
  extension built by the Section 7.1 recipe (:mod:`repro.algorithms`);
* an **experiment harness** regenerating every guarantee the paper states
  (:mod:`repro.analysis`, driven by ``benchmarks/``).

Quickstart
----------
>>> from repro import run_simulation, generators
>>> from repro.dynamics.adversaries import ChurnAdversary
>>> from repro.dynamics.churn import FlipChurn
>>> from repro.algorithms.coloring import dynamic_coloring
>>> from repro.utils import RngFactory
>>> n = 64
>>> base = generators.gnp(n, 0.1, RngFactory(1).stream("topo"))
>>> adversary = ChurnAdversary(n, FlipChurn(base, 0.01), RngFactory(1).stream("adv"))
>>> trace = run_simulation(
...     n=n, algorithm=dynamic_coloring(n), adversary=adversary, rounds=60, seed=1)
>>> trace.num_rounds
60
"""

from repro.version import __version__
from repro.utils.rng import RngFactory
from repro.dynamics import generators
from repro.dynamics.topology import Topology, TopologyDelta
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.runtime.simulator import Simulator, run_simulation
from repro.runtime.trace import ExecutionTrace
from repro.problems import (
    coloring_problem_pair,
    matching_problem_pair,
    mis_problem_pair,
    TDynamicSpec,
)
from repro.core import Concat, default_window, run_combined
from repro import scenarios
from repro.exec import BACKENDS, ExecutionPolicy, use_policy
from repro.scenarios import (
    ResultsStore,
    ScenarioSpec,
    available,
    component,
    load_config,
    run_scenario,
    sweep,
)

__all__ = [
    "__version__",
    "RngFactory",
    "generators",
    "Topology",
    "TopologyDelta",
    "DynamicGraph",
    "Simulator",
    "run_simulation",
    "ExecutionTrace",
    "coloring_problem_pair",
    "mis_problem_pair",
    "matching_problem_pair",
    "TDynamicSpec",
    "Concat",
    "default_window",
    "run_combined",
    "scenarios",
    "ScenarioSpec",
    "component",
    "run_scenario",
    "sweep",
    "available",
    "ResultsStore",
    "load_config",
    "BACKENDS",
    "ExecutionPolicy",
    "use_policy",
]
