"""Store auditing: find interrupted, torn, corrupt or drifted state.

The results store is append-by-rename and content-addressed, and the sweep
journals are flush-per-unit checkpoints — so every irregular on-disk state
has a *meaning*, and :func:`audit_store` (surfaced as ``repro audit``) turns
each one into a :class:`Finding`:

``interrupted``
    A journal under ``<store>/.journals`` — journals are deleted when their
    batch completes, so an existing one *is* an interrupted run.  The finding
    reports completed/total units; ``repro repair`` (or re-running the config
    with ``--resume``) finishes the batch.
``corrupt-journal``
    A journal whose header is missing or not ``repro-journal/1`` — a resume
    would recompute from scratch.
``torn-write``
    A leftover ``*.json.tmp`` scratch file: a crash happened between write
    and rename.  The target entry is still intact (that is the point of the
    rename dance); the scratch is safe to delete and ``repro repair`` does.
``corrupt-entry``
    An entry file that does not parse or has the wrong format version.
``key-drift``
    An entry whose recorded ``key_hash`` no longer equals the content hash
    of its recorded key — the file was hand-edited or the hashing changed.
``misfiled``
    An entry whose file name does not match its label/key-hash — it was
    renamed or copied and can shadow nothing; ``repro gc`` would not protect
    it either.
``schema-drift``
    An entry whose recorded ``row_schema`` is not the column union of its
    rows — the rows were edited after writing.
``stale-shm``
    A ``repro-shm-*`` shared-memory segment on this machine whose owning
    runner process is gone — a killed run never unlinked its published
    topology pool (see :mod:`repro.exec.shm`).  Not a store fact, but the
    same "irregular state has a meaning" contract: the segment pins memory
    until ``repro repair`` unlinks it.

Findings are facts about the tree, not judgements about who caused them;
``repro audit`` exits 1 when any exist, which is what lets CI gate on a
committed results tree being complete and internally consistent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.exec.journal import JOURNAL_FORMAT
from repro.scenarios.store import ResultsStore, StoreEntry, content_key, _HASH_PREFIX_LEN, _slug

__all__ = ["Finding", "audit_store", "journal_status"]

#: Where a store keeps its sweep journals (mirrors ``repro.scenarios.cli``).
JOURNALS_SUBDIR = ".journals"


@dataclass(frozen=True)
class Finding:
    """One irregularity in a results tree."""

    category: str
    path: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"category": self.category, "path": self.path, "message": self.message}

    def describe(self) -> str:
        return f"[{self.category}] {self.path}: {self.message}"


def journal_status(path: Path) -> Dict[str, Any]:
    """Parse one journal checkpoint: ``{"ok", "total", "completed", "torn"}``.

    Tolerates the same states :meth:`~repro.exec.journal.SweepJournal.load`
    does — a torn final line is reported, not fatal — but unlike the loader
    it does not need the batch's units: an audit sees only the file.
    """
    status: Dict[str, Any] = {"ok": False, "total": None, "completed": 0, "torn": False}
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return status
    if not lines:
        return status
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        return status
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        return status
    status["ok"] = True
    status["total"] = header.get("total")
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            status["torn"] = True
            continue
        if isinstance(record, dict) and "i" in record and "row" in record:
            status["completed"] += 1
    return status


def _audit_journals(store_root: Path) -> Iterator[Finding]:
    for path in sorted((store_root / JOURNALS_SUBDIR).glob("*.jsonl")):
        status = journal_status(path)
        if not status["ok"]:
            yield Finding(
                "corrupt-journal",
                str(path),
                f"missing or unrecognised header (expected {JOURNAL_FORMAT!r})",
            )
            continue
        total = status["total"]
        done = status["completed"]
        torn = " (torn final line)" if status["torn"] else ""
        yield Finding(
            "interrupted",
            str(path),
            f"interrupted batch: {done}/{total} units complete{torn}; "
            f"finish it with 'repro repair' or re-run the config with --resume",
        )


def _entry_findings(path: Path, entry: StoreEntry) -> Iterator[Finding]:
    recorded = content_key(entry.key)
    if recorded != entry.key_hash:
        yield Finding(
            "key-drift",
            str(path),
            f"recorded key_hash {entry.key_hash[:12]} != content hash {recorded[:12]} "
            f"of the recorded key (entry was edited after writing)",
        )
        return  # the name check below would re-report the same corruption
    expected_name = f"{_slug(entry.label)}-{entry.key_hash[:_HASH_PREFIX_LEN]}.json"
    if path.name != expected_name:
        yield Finding(
            "misfiled",
            str(path),
            f"file name should be {expected_name} for label {entry.label!r} "
            f"(renamed or copied entry; unreachable by its key)",
        )
    columns: set = set()
    for row in entry.rows:
        columns.update(row)
    if tuple(sorted(columns)) != tuple(entry.row_schema):
        yield Finding(
            "schema-drift",
            str(path),
            f"row_schema {list(entry.row_schema)} does not match the "
            f"column union {sorted(columns)} of the rows",
        )


def _audit_shm() -> Iterator[Finding]:
    from repro.exec.shm import stale_segments

    for name in stale_segments():
        yield Finding(
            "stale-shm",
            f"/dev/shm/{name}",
            "shared-memory topology segment whose owning runner is gone; "
            "it pins memory until unlinked ('repro repair' does)",
        )


def audit_store(store_root: Path | str, *, kind: Optional[str] = None) -> List[Finding]:
    """Every irregularity in the results tree at ``store_root``."""
    store_root = Path(store_root)
    store = ResultsStore(store_root)
    findings: List[Finding] = []
    if kind is not None:
        kind_dirs = [store_root / kind]
    elif store_root.is_dir():
        findings.extend(_audit_journals(store_root))
        findings.extend(_audit_shm())
        kind_dirs = sorted(
            p for p in store_root.iterdir() if p.is_dir() and not p.name.startswith(".")
        )
    else:
        kind_dirs = []
    for directory in kind_dirs:
        if not directory.is_dir():
            continue
        for scratch in sorted(directory.glob("*.json.tmp")):
            findings.append(
                Finding(
                    "torn-write",
                    str(scratch),
                    "leftover scratch file from a crash between write and rename; "
                    "safe to delete ('repro repair' does)",
                )
            )
        for path in sorted(directory.glob("*.json")):
            try:
                entry = store.load(path)
            except ConfigurationError as exc:
                findings.append(Finding("corrupt-entry", str(path), str(exc)))
                continue
            findings.extend(_entry_findings(path, entry))
    return findings
