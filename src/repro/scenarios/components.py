"""Built-in component registrations.

Importing this module (done by ``repro.scenarios.__init__``) populates the
registries of :mod:`repro.scenarios.registry` with every topology family,
adversary, algorithm, wake-up schedule, metric, probe and stop condition the
library ships — the full combination space of ``dynamics/`` × ``algorithms/``
becomes addressable by name.

Factory conventions (``ctx`` is the per-seed
:class:`~repro.scenarios.executor.ScenarioContext`):

* topologies: ``(n, rng, **params) -> Topology``;
* adversaries / algorithms / wake-ups: ``(ctx, **params)``; the context
  provides the base topology, derived rng streams, the window ``T1`` and the
  wake-up schedule;
* metrics: ``(ctx, **params) -> Dict[str, float]`` run after the simulation
  (``ctx.trace`` / ``ctx.adversary`` / ``ctx.algorithm`` are available);
* probes: ``(ctx, **params) -> object`` with ``observe(sim) -> bool`` called
  after every round (truthy return stops the run) and
  ``finish() -> Dict[str, float]``;
* stop conditions: ``(ctx, **params) -> Callable[[ExecutionTrace], bool]``.

The rng stream names deliberately mirror the ones the pre-scenario experiment
code used (``("adversary", "churn")``, ``("adversary", "targeted")``, …) so
migrating an experiment onto the declarative API reproduces its historical
numbers bit for bit.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.dynamics import generators
from repro.dynamics.adversaries.composite import FreezeAfterAdversary, PhaseAdversary
from repro.dynamics.adversaries.locally_static import LocallyStaticAdversary
from repro.dynamics.adversaries.random_churn import ChurnAdversary, MobilityAdversary
from repro.dynamics.adversaries.scripted import StaticAdversary
from repro.dynamics.adversaries.targeted_coloring import TargetedColoringAdversary
from repro.dynamics.adversaries.targeted_mis import TargetedMisAdversary
from repro.dynamics.churn import (
    BurstChurn,
    CompositeChurn,
    EdgeInsertionChurn,
    FlipChurn,
    MarkovEdgeChurn,
    StaticChurn,
)
from repro.dynamics.mobility import RandomWaypointMobility
from repro.dynamics.wakeup import (
    AllAwake,
    ExplicitWakeup,
    StaggeredWakeup,
    UniformRandomWakeup,
)
from repro.algorithms.coloring.ablations import (
    DColorCurrentGraphAblation,
    SColorNoUncolorAblation,
    concat_without_backbone,
)
from repro.algorithms.coloring.baselines import RestartColoring
from repro.algorithms.coloring.basic_static import BasicColoring
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.coloring.dynamic_coloring import DynamicColoring
from repro.algorithms.coloring.scolor import SColor
from repro.algorithms.matching.dmatch import DMatch
from repro.algorithms.matching.dynamic_matching import DynamicMatching
from repro.algorithms.matching.smatch import SMatch
from repro.algorithms.mis.ablations import (
    DMisCurrentGraphAblation,
    SMisNoUndecideAblation,
    concat_without_backbone_mis,
)
from repro.algorithms.mis.baselines import RestartMis
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.dynamic_mis import DynamicMIS
from repro.algorithms.mis.ghaffari import GhaffariMIS
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.mis.smis import SMis
from repro.core.concat import Concat
from repro.analysis.conflicts import conflict_resolution_times
from repro.analysis.convergence import completion_round_for_nodes, rounds_to_completion
from repro.analysis.quality import coloring_quality, matching_quality, mis_quality
from repro.analysis.stability import region_change_count, stability_summary
from repro.core.properties import verify_partial_solution_every_round
from repro.problems.coloring import coloring_problem_pair
from repro.problems.dynamic_problem import TDynamicSpec
from repro.problems.matching import matching_problem_pair
from repro.problems.mis import mis_problem_pair
from repro.types import Interval
from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    PROBES,
    STOP_CONDITIONS,
    TOPOLOGIES,
    WAKEUPS,
)
__all__ = ["problem_pair_by_name"]


def _resolve(ctx, value, **extra):
    """Evaluate a duration parameter against the scenario's variables."""
    return ctx.resolve(value, **extra)


# ---------------------------------------------------------------------------
# topologies — every named generator family, plus parameterised variants
# ---------------------------------------------------------------------------

#: One-line descriptions for the lambda-based generator families (the
#: function-backed ones fall back to their docstrings).
_FAMILY_DOCS = {
    "gnp_sparse": "Erdős–Rényi G(n, p) with expected degree 8.",
    "gnp_dense": "Erdős–Rényi G(n, 0.2).",
    "geometric": "Random geometric graph with ~10 expected neighbours.",
    "ba3": "Barabási–Albert preferential attachment with m=3.",
    "ring": "Cycle C_n.",
    "star": "Star with centre 0.",
    "clique": "Complete graph K_n.",
    "empty": "n awake nodes, no edges.",
}


def _register_family(family_name: str):
    generator = generators.GENERATORS[family_name]
    doc = _FAMILY_DOCS.get(family_name)
    if doc is None:
        lines = (generator.__doc__ or "").strip().splitlines()
        doc = lines[0] if lines else ""
    TOPOLOGIES.register(
        family_name,
        lambda n, rng, _f=family_name: generators.GENERATORS[_f](n, rng),
        doc=doc,
    )


for _family in generators.GENERATORS:
    _register_family(_family)


@TOPOLOGIES.register("gnp")
def _topology_gnp(n, rng, *, p: float = 0.1):
    """Erdős–Rényi G(n, p) with explicit edge probability p."""
    return generators.gnp(n, p, rng)


@TOPOLOGIES.register("gnp_degree")
def _topology_gnp_degree(n, rng, *, degree: float = 8.0):
    """Erdős–Rényi G(n, p) parameterised by expected degree."""
    return generators.gnp(n, min(1.0, degree / max(n - 1, 1)), rng)


@TOPOLOGIES.register("random_regular")
def _topology_regular(n, rng, *, degree: int = 4):
    """Random degree-regular graph."""
    return generators.random_regular(n, degree, rng)


@TOPOLOGIES.register("random_geometric")
def _topology_geometric(n, rng, *, radius: Optional[float] = None):
    """Random geometric graph on the unit square (default radius targets ~10 expected neighbours)."""
    if radius is None:
        radius = math.sqrt(10.0 / max(n, 1) / math.pi)
    return generators.random_geometric(n, radius, rng)


@TOPOLOGIES.register("barabasi_albert")
def _topology_ba(n, rng, *, m: int = 3):
    """Barabási–Albert preferential-attachment graph (clique when n <= m)."""
    if n <= m:
        return generators.clique(n)
    return generators.barabasi_albert(n, m, rng)


# ---------------------------------------------------------------------------
# wake-up schedules
# ---------------------------------------------------------------------------


@WAKEUPS.register("all-at-once")
def _wakeup_all(ctx):
    """Every node is awake from round 1."""
    return AllAwake(ctx.n)


@WAKEUPS.register("staggered")
def _wakeup_staggered(ctx, *, batch_size=None, interval: int = 1):
    """Contiguous batches of nodes wake every `interval` rounds."""
    if batch_size is None:
        batch_size = max(1, ctx.n // (2 * ctx.T1))
    return StaggeredWakeup(ctx.n, batch_size=int(_resolve(ctx, batch_size)), interval=interval)


@WAKEUPS.register("uniform-random")
def _wakeup_uniform(ctx, *, spread="2*T1"):
    """Each node wakes at an independent uniform round in [1, spread]."""
    return UniformRandomWakeup(ctx.n, spread=_resolve(ctx, spread), rng=ctx.stream("wakeup"))


@WAKEUPS.register("explicit")
def _wakeup_explicit(ctx, *, wake_rounds):
    """Explicit node -> wake-round mapping."""
    return ExplicitWakeup({int(v): int(r) for v, r in dict(wake_rounds).items()})


# ---------------------------------------------------------------------------
# adversaries
# ---------------------------------------------------------------------------


@ADVERSARIES.register("static")
def _adversary_static(ctx):
    """The base topology, unchanged every round (optionally gated by the wake-up schedule)."""
    return StaticAdversary(ctx.base, wakeup=ctx.wakeup)


@ADVERSARIES.register("flip-churn")
def _adversary_flip(ctx, *, flip_prob: float = 0.01):
    """Every base edge flips its presence with probability `flip_prob` per round."""
    churn = FlipChurn(ctx.base, flip_prob) if flip_prob > 0 else StaticChurn(ctx.base)
    return ChurnAdversary(ctx.n, churn, ctx.stream("adversary", "churn"), wakeup=ctx.wakeup)


@ADVERSARIES.register("markov-churn")
def _adversary_markov(ctx, *, p_off: float = 0.0, p_on: float = 0.0):
    """Per-edge two-state Markov churn with `p_off` / `p_on` transition probabilities."""
    churn = MarkovEdgeChurn(ctx.base, p_off=p_off, p_on=p_on)
    return ChurnAdversary(ctx.n, churn, ctx.stream("adversary", "churn"), wakeup=ctx.wakeup)


@ADVERSARIES.register("burst-churn")
def _adversary_burst(ctx, *, burst_prob: float = 0.1, drop_fraction: float = 0.5):
    """Occasional single-round bursts deleting a random fraction of the edges."""
    churn = BurstChurn(ctx.base, burst_prob, drop_fraction)
    return ChurnAdversary(ctx.n, churn, ctx.stream("adversary", "burst"), wakeup=ctx.wakeup)


@ADVERSARIES.register("edge-insertion")
def _adversary_insertion(ctx, *, insertions_per_round: int = 3, lifetime: int = 3):
    """Random short-lived extra edges on top of the stable base graph."""
    churn = EdgeInsertionChurn(
        ctx.base, insertions_per_round=insertions_per_round, lifetime=_resolve(ctx, lifetime)
    )
    return ChurnAdversary(ctx.n, churn, ctx.stream("adversary", "insert"), wakeup=ctx.wakeup)


@ADVERSARIES.register("targeted-coloring")
def _adversary_targeted_coloring(ctx, *, attacks_per_round: int = 2, lifetime="2*T1"):
    """Adaptive attacker inserting monochromatic conflict edges against the latest visible colouring."""
    return TargetedColoringAdversary(
        ctx.base,
        attacks_per_round=attacks_per_round,
        lifetime=_resolve(ctx, lifetime),
        rng=ctx.stream("adversary", "targeted"),
    )


@ADVERSARIES.register("targeted-mis")
def _adversary_targeted_mis(
    ctx, *, mode: str = "cut_notification", attacks_per_round: int = 4, lifetime=2
):
    """Adaptive attacker cutting MIS notifications or joining MIS nodes."""
    stream_label = {"cut_notification": "cut", "join_mis": "join"}.get(mode, mode)
    return TargetedMisAdversary(
        ctx.base,
        mode=mode,
        attacks_per_round=attacks_per_round,
        rng=ctx.stream("adversary", stream_label),
        lifetime=_resolve(ctx, lifetime),
    )


@ADVERSARIES.register("locally-static")
def _adversary_locally_static(
    ctx, *, flip_prob: float = 0.05, protected_radius: int = 3, center=None
):
    """Churns everything outside a protected ball whose incident edges stay frozen."""
    if center is None:
        center = max(ctx.base.nodes, key=lambda v: ctx.base.degree(v))
    return LocallyStaticAdversary(
        ctx.base,
        center=int(center),
        protected_radius=protected_radius,
        churn=FlipChurn(ctx.base, flip_prob),
        rng=ctx.stream("adversary", "locally-static"),
    )


@ADVERSARIES.register("freeze-after")
def _adversary_freeze_after(ctx, *, inner, freeze_round):
    """Runs `inner` until `freeze_round`, then repeats the last graph forever."""
    from repro.scenarios.spec import ComponentSpec

    inner_spec = ComponentSpec.coerce(inner)
    inner_adversary = ADVERSARIES.get(inner_spec.name)(ctx, **inner_spec.params)
    return FreezeAfterAdversary(inner_adversary, freeze_round=_resolve(ctx, freeze_round))


@ADVERSARIES.register("mobility")
def _adversary_mobility(
    ctx, *, radius: float = 0.18, speed: float = 0.02, pause_probability: float = 0.0
):
    """Random-waypoint mobility: the geometric graph of nodes moving in the unit square."""
    mobility = RandomWaypointMobility(
        ctx.n,
        radius=radius,
        speed=speed,
        pause_probability=pause_probability,
        rng=ctx.stream("mobility"),
    )
    return MobilityAdversary(mobility, wakeup=ctx.wakeup)


@ADVERSARIES.register("phase")
def _adversary_phase(ctx, *, phases):
    """Phase script: switch between registered adversaries at fixed round boundaries.

    ``phases`` is a list of ``[duration, adversary]`` pairs — duration an int,
    a duration expression (``"2*T1"``), or ``None`` for the final open-ended
    phase; ``adversary`` any component reference (name or
    ``{"name", "params"}``)::

        component("phase", phases=[
            [ "2*T1", {"name": "flip-churn", "params": {"flip_prob": 0.1}} ],
            [ None,   "static" ],
        ])

    Each phase's adversary is built against a phase-indexed child rng factory,
    so two phases of the same kind draw independent randomness instead of
    replaying each other's streams.
    """
    import dataclasses

    from repro.scenarios.spec import ComponentSpec

    built = []
    for index, entry in enumerate(phases):
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ConfigurationError(
                f"each phase must be a [duration, adversary] pair, got {entry!r}"
            )
        duration, inner = entry
        inner_spec = ComponentSpec.coerce(inner)
        phase_ctx = dataclasses.replace(
            ctx, rng_factory=ctx.rng_factory.child("phase", index)
        )
        inner_adversary = ADVERSARIES.get(inner_spec.name)(phase_ctx, **inner_spec.params)
        built.append(
            (None if duration is None else _resolve(ctx, duration), inner_adversary)
        )
    return PhaseAdversary(built)


#: Churn-process kinds available to the "composite-churn" adversary.
_CHURN_KINDS = {
    "static": lambda base: StaticChurn(base),
    "flip": lambda base, *, flip_prob=0.01, **params: FlipChurn(base, flip_prob, **params),
    "markov": lambda base, *, p_off=0.0, p_on=0.0, **params: MarkovEdgeChurn(
        base, p_off=p_off, p_on=p_on, **params
    ),
    "burst": lambda base, *, burst_prob=0.1, drop_fraction=0.5: BurstChurn(
        base, burst_prob, drop_fraction
    ),
    "edge-insertion": lambda base, *, insertions_per_round=3, lifetime=3: EdgeInsertionChurn(
        base, insertions_per_round=insertions_per_round, lifetime=lifetime
    ),
}


@ADVERSARIES.register("composite-churn")
def _adversary_composite_churn(ctx, *, processes):
    """Union of several churn processes animating the base topology.

    ``processes`` is a list of ``{"kind": ..., **params}`` mappings with kinds
    ``static`` / ``flip`` / ``markov`` / ``burst`` / ``edge-insertion``::

        component("composite-churn", processes=[
            {"kind": "flip", "flip_prob": 0.02},
            {"kind": "edge-insertion", "insertions_per_round": 2, "lifetime": 3},
        ])
    """
    if not processes:
        raise ConfigurationError("composite-churn needs at least one process")
    built = []
    for entry in processes:
        params = dict(entry)
        kind = params.pop("kind", None)
        if kind not in _CHURN_KINDS:
            raise ConfigurationError(
                f"unknown churn kind {kind!r}; available: {sorted(_CHURN_KINDS)}"
            )
        built.append(_CHURN_KINDS[kind](ctx.base, **params))
    return ChurnAdversary(
        ctx.n, CompositeChurn(built), ctx.stream("adversary", "composite"), wakeup=ctx.wakeup
    )


# ---------------------------------------------------------------------------
# algorithms
# ---------------------------------------------------------------------------


def _register_plain_algorithm(name: str, cls):
    doc = (cls.__doc__ or "").strip().splitlines()
    ALGORITHMS.register(name, lambda ctx, _cls=cls: _cls(), doc=doc[0] if doc else "")


for _name, _cls in (
    ("basic-coloring", BasicColoring),
    ("scolor", SColor),
    ("dcolor", DColor),
    ("dcolor-current-graph", DColorCurrentGraphAblation),
    ("scolor-no-uncolor", SColorNoUncolorAblation),
    ("smis", SMis),
    ("smis-no-undecide", SMisNoUndecideAblation),
    ("dmis-current-graph", DMisCurrentGraphAblation),
    ("luby-mis", LubyMIS),
    ("ghaffari-mis", GhaffariMIS),
    ("smatch", SMatch),
    ("dmatch", DMatch),
):
    _register_plain_algorithm(_name, _cls)


@ALGORITHMS.register("dmis")
def _algorithm_dmis(ctx, *, revalidate_dominated: bool = False):
    """DMis: dynamic MIS via desire levels over the T1-window backbone."""
    return DMis(revalidate_dominated=revalidate_dominated)


@ALGORITHMS.register("dynamic-coloring")
def _algorithm_dynamic_coloring(ctx, *, window=None):
    """Concat(SColor, DColor): the paper's dynamic (deg+1)-colouring."""
    return DynamicColoring(ctx.T1 if window is None else _resolve(ctx, window))


@ALGORITHMS.register("dynamic-mis")
def _algorithm_dynamic_mis(ctx, *, window=None, revalidate_dominated: bool = False):
    """Concat(SMis, DMis): the paper's dynamic MIS."""
    T1 = ctx.T1 if window is None else _resolve(ctx, window)
    return DynamicMIS(T1, revalidate_dominated=revalidate_dominated)


@ALGORITHMS.register("dynamic-matching")
def _algorithm_dynamic_matching(ctx, *, window=None):
    """Concat(SMatch, DMatch): dynamic maximal matching via the MIS reduction."""
    return DynamicMatching(ctx.T1 if window is None else _resolve(ctx, window))


@ALGORITHMS.register("restart-coloring")
def _algorithm_restart_coloring(ctx, *, period=None):
    """Baseline: restart a static colouring every `period` rounds."""
    return RestartColoring(ctx.T1 if period is None else _resolve(ctx, period))


@ALGORITHMS.register("restart-mis")
def _algorithm_restart_mis(ctx, *, period=None):
    """Baseline: restart a static MIS every `period` rounds."""
    return RestartMis(ctx.T1 if period is None else _resolve(ctx, period))


@ALGORITHMS.register("coloring-no-backbone")
def _algorithm_coloring_no_backbone(ctx, *, window=None):
    """Ablation: Concat colouring without the intersection-graph backbone."""
    return concat_without_backbone(ctx.T1 if window is None else _resolve(ctx, window))


@ALGORITHMS.register("mis-no-backbone")
def _algorithm_mis_no_backbone(ctx, *, window=None):
    """Ablation: Concat MIS without the intersection-graph backbone."""
    return concat_without_backbone_mis(ctx.T1 if window is None else _resolve(ctx, window))


#: The implementation class behind each registered algorithm name — the
#: source of the per-component delivery-contract annotation below.
_ALGORITHM_CLASSES = {
    "basic-coloring": BasicColoring,
    "scolor": SColor,
    "dcolor": DColor,
    "dcolor-current-graph": DColorCurrentGraphAblation,
    "scolor-no-uncolor": SColorNoUncolorAblation,
    "smis": SMis,
    "smis-no-undecide": SMisNoUndecideAblation,
    "dmis-current-graph": DMisCurrentGraphAblation,
    "luby-mis": LubyMIS,
    "ghaffari-mis": GhaffariMIS,
    "smatch": SMatch,
    "dmatch": DMatch,
    "dmis": DMis,
    "dynamic-coloring": DynamicColoring,
    "dynamic-mis": DynamicMIS,
    "dynamic-matching": DynamicMatching,
    "restart-coloring": RestartColoring,
    "restart-mis": RestartMis,
    "coloring-no-backbone": Concat,
    "mis-no-backbone": Concat,
}

# Surface each algorithm's audited message-stability contract in
# ``available(docs=True)`` / `repro components`, so the delivery path an
# algorithm gets is discoverable without reading its source.  Iterating the
# *registry* keeps this loop safe under drift: a stale map entry is simply
# never looked up, and a newly registered algorithm missing from the map is
# caught by the tier-1 docs test (every doc must carry its contract tag)
# rather than by an import-time crash.
for _algo_name in ALGORITHMS:
    _algo_cls = _ALGORITHM_CLASSES.get(_algo_name)
    if _algo_cls is not None:
        # ``as_kernel`` defined on the exact class (not inherited) marks the
        # algorithms with an array kernel: subclass ablations inherit the
        # method but its ``type(self)`` guard declines them at runtime.
        _kernel_tag = " [kernel: array]" if "as_kernel" in _algo_cls.__dict__ else ""
        ALGORITHMS.set_doc(
            _algo_name,
            f"{ALGORITHMS.doc(_algo_name)} "
            f"[delivery: {_algo_cls.message_stability}]{_kernel_tag}",
        )


# ---------------------------------------------------------------------------
# stop conditions
# ---------------------------------------------------------------------------


@STOP_CONDITIONS.register("all-decided")
def _stop_all_decided(ctx):
    """Stop as soon as every awake node has produced an output."""
    return lambda trace: rounds_to_completion(trace) is not None


@STOP_CONDITIONS.register("after-round")
def _stop_after_round(ctx, *, round):
    """Stop once the trace reaches `round` rounds."""
    limit = _resolve(ctx, round)
    return lambda trace: trace.num_rounds >= limit


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

_PROBLEM_PAIRS = {
    "coloring": coloring_problem_pair,
    "mis": mis_problem_pair,
    "matching": matching_problem_pair,
}


def problem_pair_by_name(problem: str):
    """The :class:`~repro.problems.packing_covering.ProblemPair` for a problem name."""
    try:
        return _PROBLEM_PAIRS[problem]()
    except KeyError:
        raise ConfigurationError(
            f"unknown problem {problem!r}; available: {sorted(_PROBLEM_PAIRS)}"
        ) from None


@METRICS.register("validity")
def _metric_validity(ctx, *, problem: str, start_round=1, window=None):
    """Sliding-window T-dynamic validity summary (Theorem 1.1(1))."""
    T = ctx.T1 if window is None else _resolve(ctx, window)
    spec = TDynamicSpec(problem_pair_by_name(problem), T)
    return spec.validity_summary(ctx.trace, start_round=_resolve(ctx, start_round))


@METRICS.register("stability")
def _metric_stability(ctx, *, warmup=0):
    """Output-change statistics after a warm-up prefix."""
    return stability_summary(ctx.trace, warmup=_resolve(ctx, warmup))


@METRICS.register("convergence")
def _metric_convergence(ctx, *, on_incomplete: str = "nan"):
    """Rounds until every awake node is decided (``stop="all-decided"`` runs).

    ``on_incomplete`` selects the ``rounds`` value when the run never
    completed: ``"nan"`` or ``"rounds"`` (the simulated horizon).
    """
    done = rounds_to_completion(ctx.trace)
    if done is not None:
        rounds = float(done)
    elif on_incomplete == "rounds":
        rounds = float(ctx.rounds)
    else:
        rounds = float("nan")
    return {"rounds": rounds, "completed": float(done is not None)}


@METRICS.register("coloring-quality")
def _metric_coloring_quality(ctx, *, graph: str = "union"):
    """Colour-count quality of the final output vs the union or final graph."""
    trace = ctx.trace
    r = trace.num_rounds
    topo = trace.graph.union_graph(r, ctx.T1) if graph == "union" else trace.topology(r)
    return coloring_quality(topo, trace.outputs(r))


@METRICS.register("mis-quality")
def _metric_mis_quality(ctx):
    """MIS size of the final output vs a sequential greedy reference."""
    trace = ctx.trace
    return mis_quality(trace.topology(trace.num_rounds), trace.outputs(trace.num_rounds))


@METRICS.register("matching-quality")
def _metric_matching_quality(ctx):
    """Matching size of the final output vs a sequential greedy reference."""
    trace = ctx.trace
    return matching_quality(trace.topology(trace.num_rounds), trace.outputs(trace.num_rounds))


@METRICS.register("message-size")
def _metric_message_size(ctx):
    """Maximum estimated message size (bits) over the whole run."""
    max_bits = max(record.metrics.max_message_bits for record in ctx.trace)
    return {"max_message_bits": float(max_bits)}


@METRICS.register("trace-summary")
def _metric_trace_summary(ctx):
    """Basic run facts (rounds simulated)."""
    return {"trace_rounds": float(ctx.trace.num_rounds)}


@METRICS.register("output-activity")
def _metric_output_activity(ctx, *, warmup=0):
    """Output-churn totals from the trace's stored changed-node sets.

    Delta-native: reads the per-round changed-output sets the engine recorded
    (O(#changes) total) instead of re-scanning all ``n`` outputs per round.
    Counts every changed node including newly awake ones (round 1 counts
    first outputs), i.e. the same notion as ``RoundMetrics.outputs_changed``.
    """
    trace = ctx.trace
    start = max(1, _resolve(ctx, warmup) + 1)
    per_round = [len(trace.changed_nodes(r)) for r in range(start, trace.num_rounds + 1)]
    if not per_round:
        return {"total_changed_outputs": 0.0, "max_changed_outputs": 0.0, "activity_rounds": 0.0}
    return {
        "total_changed_outputs": float(sum(per_round)),
        "max_changed_outputs": float(max(per_round)),
        "activity_rounds": float(len(per_round)),
    }


@METRICS.register("region-stability")
def _metric_region_stability(ctx, *, grace="2*T1+2"):
    """Output changes inside vs outside a locally-static adversary's protected ball (E5)."""
    protected = ctx.adversary.protected_nodes
    base = ctx.base
    inner = {v for v in protected if base.ball(v, 2) <= protected}
    outer = set(base.nodes) - protected
    window = Interval(_resolve(ctx, grace), ctx.trace.num_rounds)
    return {
        "protected_nodes": float(len(inner)),
        "changes_protected": float(region_change_count(ctx.trace, inner, window)),
        "changes_control": float(region_change_count(ctx.trace, outer, window)),
    }


@METRICS.register("conflict-durations")
def _metric_conflict_durations(ctx, *, max_wait="2*T1"):
    """Resolution times of adversarially inserted conflicts (E3)."""
    durations = conflict_resolution_times(
        ctx.trace, ctx.adversary.attack_log, max_wait=_resolve(ctx, max_wait)
    )
    resolved = [d for d in durations if not d["censored"]]
    if not resolved:
        return {"attacks": 0.0, "mean_duration": float("nan"), "max_duration": float("nan")}
    values = [d["duration"] for d in resolved]
    return {
        "attacks": float(len(resolved)),
        "mean_duration": sum(values) / len(values),
        "max_duration": max(values),
    }


@METRICS.register("freeze-decision")
def _metric_freeze_decision(ctx, *, churn_rounds):
    """Rounds to all-decided after a freeze, and output changes afterwards (E8)."""
    trace = ctx.trace
    frozen_at = _resolve(ctx, churn_rounds)
    decided_round = None
    for r in range(frozen_at + 1, trace.num_rounds + 1):
        outputs = trace.outputs(r)
        if all(outputs.get(v) is not None for v in trace.topology(r).nodes):
            decided_round = r
            break
    changes_after = 0
    if decided_round is not None:
        for r in range(decided_round + 1, trace.num_rounds + 1):
            changes_after += sum(
                1
                for v in trace.topology(r).nodes
                if trace.output_of(v, r) != trace.output_of(v, r - 1)
            )
    return {
        "rounds_after_freeze": float(decided_round - frozen_at)
        if decided_round is not None
        else float("nan"),
        "changes_after_decided": float(changes_after),
    }


@METRICS.register("mis-edge-decay")
def _metric_mis_edge_decay(ctx, *, min_edges: int = 4):
    """Per-seed ingredients of the Lemma 5.2 two-round edge-decay ratio (E6).

    Returns partial sums so the experiment can pool ratios across seeds
    exactly like the pre-scenario implementation did.
    """
    trace = ctx.trace
    edge_counts = []
    for r in range(1, trace.num_rounds + 1):
        intersection = trace.graph.intersection_graph(r, r)
        if r == 1:
            undecided = set(intersection.nodes)
        else:
            previous = trace.outputs(r - 1)
            undecided = {v for v in intersection.nodes if previous.get(v) is None}
        edge_counts.append(len(intersection.induced_edges(undecided)))
    ratios = [
        edge_counts[i + 2] / edge_counts[i]
        for i in range(len(edge_counts) - 2)
        if edge_counts[i] >= min_edges
    ]
    return {
        "ratio_sum": float(sum(ratios)),
        "ratio_count": float(len(ratios)),
        "initial_edges": float(edge_counts[0]) if edge_counts else 0.0,
        "rounds_to_empty": float(
            next((i + 1 for i, c in enumerate(edge_counts) if c == 0), float("nan"))
        ),
    }


@METRICS.register("b1-violations")
def _metric_b1_violations(ctx, *, problem: str, start_round="T1"):
    """Fraction of rounds violating the partial-solution property B.1 (E13b)."""
    start = _resolve(ctx, start_round)
    violations = verify_partial_solution_every_round(
        ctx.trace, problem_pair_by_name(problem), start_round=start
    )
    checked = max(1, ctx.trace.num_rounds - start + 1)
    return {"b1_violation_fraction": len(violations) / checked}


@METRICS.register("last-wakers-convergence")
def _metric_last_wakers(ctx, *, tail: int = 8):
    """Wake and decision rounds of the last ``tail`` nodes to wake up (examples)."""
    trace = ctx.trace
    last_batch = list(range(ctx.n - tail, ctx.n))
    last_batch_wake = max(
        next(r for r in trace.rounds() if v in trace.topology(r).nodes) for v in last_batch
    )
    converged = completion_round_for_nodes(trace, last_batch, start_round=last_batch_wake)
    return {
        "last_batch_wake_round": float(last_batch_wake),
        "last_batch_decided_round": float(converged) if converged is not None else float("nan"),
        "rounds_to_decide_after_wake": float(converged - last_batch_wake)
        if converged
        else float("nan"),
    }


# ---------------------------------------------------------------------------
# probes — per-round observers
# ---------------------------------------------------------------------------


@PROBES.register("palette-shrink")
class _PaletteShrinkProbe:
    """E2: classify uncoloured node-rounds into "palette shrank ≥ 1/4" vs
    "no big shrink", and count colourings conditioned on the latter."""

    def __init__(self, ctx, *, shrink_factor: float = 0.75) -> None:
        self._ctx = ctx
        self._shrink_factor = shrink_factor
        self.shrink_events = 0
        self.no_shrink_events = 0
        self.colored_given_no_shrink = 0
        self._previous_palette: Dict[int, frozenset] = {}
        self._previous_uncolored: set = set()

    def observe(self, sim) -> bool:
        algorithm = self._ctx.algorithm
        outputs = sim.trace.outputs(sim.trace.num_rounds)
        for v in self._previous_uncolored:
            before = self._previous_palette.get(v, frozenset())
            after = algorithm.palette_of(v)
            if not before:
                continue
            if len(after) <= self._shrink_factor * len(before):
                self.shrink_events += 1
            else:
                self.no_shrink_events += 1
                if outputs.get(v) is not None:
                    self.colored_given_no_shrink += 1
        self._previous_uncolored = {
            v for v in sim.trace.topology(sim.trace.num_rounds).nodes if outputs.get(v) is None
        }
        self._previous_palette = {
            v: algorithm.palette_of(v) for v in self._previous_uncolored
        }
        return not self._previous_uncolored

    def finish(self) -> Dict[str, float]:
        return {
            "node_rounds_shrink": float(self.shrink_events),
            "node_rounds_no_shrink": float(self.no_shrink_events),
            "colored_given_no_shrink": float(self.colored_given_no_shrink),
        }


@PROBES.register("palette-invariant")
class _PaletteInvariantProbe:
    """E13a: check the Lemma 4.2 palette invariant ``|P_v| >= |U(v)| + 1`` every
    round, against the algorithm's communication graph (``restricted=True``)
    or the current graph (the ablation's view)."""

    def __init__(self, ctx, *, restricted: bool = True) -> None:
        self._ctx = ctx
        self._restricted = restricted
        self.violations = 0
        self.observations = 0

    def observe(self, sim) -> bool:
        algorithm = self._ctx.algorithm
        r = sim.trace.num_rounds
        outputs = sim.trace.outputs(r)
        topo = sim.trace.topology(r)
        for v in topo.nodes:
            if outputs.get(v) is not None:
                continue
            palette = algorithm.palette_of(v)
            if self._restricted:
                comm_neighbors = algorithm.live_neighbors_of(v)
            else:
                comm_neighbors = topo.neighbors(v)
            uncolored_neighbors = sum(1 for u in comm_neighbors if outputs.get(u) is None)
            self.observations += 1
            if len(palette) < uncolored_neighbors + 1:
                self.violations += 1
        return False

    def finish(self) -> Dict[str, float]:
        trace = self._ctx.trace
        final = trace.outputs(trace.num_rounds)
        uncolored = sum(
            1 for v in trace.topology(trace.num_rounds).nodes if final.get(v) is None
        )
        return {
            "palette_invariant_violation_fraction": self.violations / self.observations
            if self.observations
            else 0.0,
            "uncolored_fraction": uncolored / self._ctx.n,
        }


@PROBES.register("activity")
class _ActivityProbe:
    """Engine-activity observer consuming the round's dirty set and delta.

    Delta-native: reads :attr:`~repro.runtime.simulator.Simulator.last_round_activity`
    (the incremental engine's own bookkeeping) instead of scanning all ``n``
    outputs per round — the probe itself is O(1) per round.  Reports how
    quiescent the run was: mean/max dirty-frontier size, the fraction of
    node-rounds that were active, and the mean topology churn per round.
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._active: list[int] = []
        self._changed: list[int] = []
        self._churn: list[int] = []

    def observe(self, sim) -> bool:
        activity = sim.last_round_activity
        self._active.append(activity.num_active)
        self._changed.append(len(activity.changed_outputs))
        self._churn.append(activity.delta.num_changes if activity.delta is not None else -1)
        return False

    def finish(self) -> Dict[str, float]:
        rounds = max(1, len(self._active))
        total_active = float(sum(self._active))
        churn_known = [c for c in self._churn if c >= 0]
        return {
            "mean_active": total_active / rounds,
            "max_active": float(max(self._active, default=0)),
            "active_node_round_fraction": total_active / (rounds * max(1, self._ctx.n)),
            "mean_changed_outputs": float(sum(self._changed)) / rounds,
            "mean_topology_churn": float(sum(churn_known)) / len(churn_known)
            if churn_known
            else float("nan"),
        }
