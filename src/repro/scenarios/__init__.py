"""Declarative scenario API: registries, specs, and the batch executor.

This package turns experiment configuration into *data*.  Instead of
hand-wiring topology + adversary + wake-up + algorithm inside closures, a
scenario is a :class:`ScenarioSpec` whose components are referenced by
registry name, and the executor handles seed replication, sweeps and
multi-core fan-out:

>>> from repro.scenarios import ScenarioSpec, component, run_scenario, sweep
>>> spec = ScenarioSpec(
...     n=64,
...     topology="gnp_sparse",
...     adversary=component("flip-churn", flip_prob=0.01),
...     algorithm="dynamic-coloring",
...     rounds="4*T1",
...     seeds=(0, 1, 2),
...     metrics=(component("validity", problem="coloring"),),
... )
>>> result = run_scenario(spec)                      # serial
>>> result = run_scenario(spec, parallel=True)       # fan seeds out over cores
>>> grid = sweep(spec, over={"adversary.params.flip_prob": [0.001, 0.1]})
>>> spec == ScenarioSpec.from_json(spec.to_json())   # specs are plain data
True

Discovery is one call — :func:`available` lists every registered component::

    >>> sorted(available())
    ['adversaries', 'algorithms', 'metrics', 'probes', 'stop_conditions', 'topologies', 'wakeups']

New components register with a decorator::

    from repro.scenarios import ADVERSARIES

    @ADVERSARIES.register("meteor-shower")
    def _build(ctx, *, strikes_per_round=3):
        ...
"""

from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    PROBES,
    REGISTRIES,
    STOP_CONDITIONS,
    TOPOLOGIES,
    WAKEUPS,
    Registry,
    available,
)
from repro.scenarios.spec import ComponentSpec, ScenarioSpec, component, resolve_expression
from repro.scenarios.executor import (
    ScenarioContext,
    ScenarioResult,
    run_scenario,
    run_scenario_seed,
    sweep,
)
from repro.scenarios.store import ResultsStore, StoreEntry, canonical_json, content_key
from repro.scenarios.configs import load_config, validate_config, validate_spec

# Populate the registries with every built-in component (import side effects).
from repro.scenarios import components as _components  # noqa: E402,F401

__all__ = [
    "Registry",
    "REGISTRIES",
    "TOPOLOGIES",
    "ADVERSARIES",
    "ALGORITHMS",
    "WAKEUPS",
    "METRICS",
    "PROBES",
    "STOP_CONDITIONS",
    "available",
    "ComponentSpec",
    "ScenarioSpec",
    "component",
    "resolve_expression",
    "ScenarioContext",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_seed",
    "sweep",
    "ResultsStore",
    "StoreEntry",
    "canonical_json",
    "content_key",
    "load_config",
    "validate_config",
    "validate_spec",
]
