"""The ``repro`` command line: config-driven experiment pipeline.

Every workload this repository reports on is a committed config file under
``configs/``; the CLI executes those configs through the scenario registries
and the parallel batch executor, persists the resulting rows in the
content-addressed results store (``results/``), and renders tables *from the
stored rows* — the store, not the process that happened to compute them, is
the source of truth.

Subcommands::

    repro run configs/scenarios/quickstart-coloring.json
    repro sweep configs/sweeps/churn-rate.json --backend process --progress
    repro sweep configs/sweeps/churn-rate.json --resume   # continue a killed run
    repro experiments --all            # regenerate every E1–E13 table
    repro experiments e01 e07 --smoke  # CI-sized parameter sets
    repro bench --all                  # benchmark-scale runs with timings
    repro validate                     # check every committed config
    repro verify --suite smoke         # run the validation-contract suite
    repro diff results /tmp/fresh      # exit 1 on any row drift
    repro audit                        # exit 1 on interrupted/torn/drifted state
    repro repair                       # finish interrupted batches, clean torn writes
    repro log --kind smoke [--json]    # stored entries with provenance
    repro gc                           # prune entries unreachable from configs

``repro diff`` is the drift gate CI builds on: regenerate the smoke tables
into a scratch store, diff against the committed fixtures, and a non-zero
exit code fails the build.  ``repro audit`` is its structural sibling: it
scans a store *tree* (entries, scratch files, journals) for interrupted or
internally inconsistent state, and ``repro repair`` re-runs exactly the
missing units of every interrupted batch it can match back to a committed
config (resume semantics make the reassembled entries byte-identical to an
uninterrupted run).

Execution is controlled per run by ``--backend`` (serial / process / thread /
local-cluster / remote), ``--chunk-size``, ``--workers``, ``--progress`` and
``--resume`` — plus ``--transport``/``--hosts`` for the distributed
``remote`` backend — or per config by an ``"execution"`` block (CLI flags
win); see :mod:`repro.exec`.  Store-backed runs keep a sweep journal under
``<store>/.journals`` so a killed sweep resumes exactly where it stopped.

In-run verification — re-checking every seed executed on the incremental or
kernel delivery path against the authoritative full engine — is controlled
the same way: ``--verify incremental,kernel`` per invocation or a
``"verification"`` block per config (CLI flag wins); see
:mod:`repro.verify`.  ``repro verify`` runs the offline contract suite.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import os
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.version import __version__
from repro.analysis.report import format_table
from repro.exec import (
    BACKENDS,
    TRANSPORTS,
    ExecutionPolicy,
    batch_key,
    collect_stats,
    policy_from_mapping,
    units_for_spec,
    use_policy,
)
from repro.exec.stats import EXEC_DISPATCH, EXEC_JOURNAL, UNIT_METRICS, UNIT_ROUNDS, UNIT_SETUP
from repro.obs.metrics import collect_metrics
from repro.obs.trace import telemetry_from_mapping, trace_to
from repro.scenarios.audit import audit_store, journal_status
from repro.scenarios.configs import (
    ExperimentConfig,
    ScenarioConfig,
    SweepConfig,
    load_config,
    load_experiment_configs,
    validate_config,
)
from repro.scenarios.executor import expand_sweep, run_scenario, sweep
from repro.scenarios.registry import available
from repro.scenarios.store import ResultsStore, StoreEntry, diff_stores
from repro.verify.policy import (
    VerificationPolicy,
    parse_verify_spec,
    use_verification,
    verification_from_mapping,
)

__all__ = ["main"]

#: Where a store keeps its sweep journals (checkpoints of interrupted runs).
JOURNALS_SUBDIR = ".journals"

#: Default locations, relative to the invocation directory (the repo root).
DEFAULT_CONFIGS_DIR = Path("configs")
DEFAULT_STORE_DIR = Path("results")

#: Store kind each experiment scale writes under.
_SCALE_KINDS = {"full": "experiments", "bench": "bench", "smoke": "smoke"}


def _print(message: str = "") -> None:
    print(message)


def _fail(message: str) -> int:
    print(message, file=sys.stderr)
    return 1


def _validate_or_fail(config) -> int:
    problems = validate_config(config)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2
    return 0


def _emit_entry(entry: StoreEntry, *, title: str, columns=None, status: str = "") -> str:
    """Render a table from a *stored* entry (rows read back from disk)."""
    table = format_table(list(entry.rows), title=title, columns=columns)
    _print(table.rstrip("\n"))
    if entry.path is not None and status:
        _print(f"[{status}: {entry.path}]")
    _print()
    return table


# ---------------------------------------------------------------------------
# execution policies (CLI flags ⊕ config "execution" block)
# ---------------------------------------------------------------------------


def _build_policy(
    args: argparse.Namespace,
    config_execution: Optional[Mapping[str, Any]] = None,
    *,
    parallel: bool = False,
) -> ExecutionPolicy:
    """The effective policy: defaults < config ``execution`` block < CLI flags.

    ``parallel`` is the legacy ergonomic switch (``--parallel`` / the absence
    of ``--serial``): it upgrades an otherwise-default ``serial`` backend to
    ``process``, but never overrides an explicit backend choice.
    """
    if config_execution is not None:
        policy = policy_from_mapping(config_execution, where="'execution' block")
    else:
        policy = ExecutionPolicy()
    if parallel and policy.backend == "serial" and (config_execution or {}).get("backend") is None:
        policy = policy.replace(backend="process")
    if getattr(args, "backend", None) is not None:
        policy = policy.replace(backend=args.backend)
    if getattr(args, "chunk_size", None) is not None:
        policy = policy.replace(chunk_size=args.chunk_size)
    if getattr(args, "workers", None) is not None:
        policy = policy.replace(max_workers=args.workers)
    if getattr(args, "resume", False):
        policy = policy.replace(resume=True)
    if getattr(args, "progress", False):
        policy = policy.replace(progress=True)
    if getattr(args, "transport", None) is not None:
        policy = policy.replace(transport=args.transport)
    if getattr(args, "hosts", None):
        hosts = tuple(h.strip() for h in args.hosts.split(",") if h.strip())
        policy = policy.replace(hosts=hosts or None)
    if not getattr(args, "no_store", False):
        policy = policy.replace(journal_dir=str(Path(args.store) / JOURNALS_SUBDIR))
    return policy


def _build_verification(
    args: argparse.Namespace,
    config_verification: Optional[Mapping[str, Any]] = None,
) -> Optional[VerificationPolicy]:
    """The effective verification policy, or ``None`` for "no explicit choice".

    Precedence mirrors :func:`_build_policy`: the config's ``"verification"``
    block sets the baseline and ``--verify`` wins wholesale.  ``None`` (no
    flag, no block) leaves the ambient policy untouched, so the deprecated
    ``REPRO_VERIFY_*`` environment aliases keep working for callers that
    still rely on them.
    """
    flag = getattr(args, "verify", None)
    if flag is not None:
        return parse_verify_spec(flag, where="--verify")
    if config_verification is not None:
        return verification_from_mapping(config_verification, where="'verification' block")
    return None


def _verification_scope(policy: Optional[VerificationPolicy]):
    """Context manager installing ``policy`` for the run (no-op for ``None``)."""
    return nullcontext() if policy is None else use_verification(policy)


def _trace_scope(
    args: argparse.Namespace,
    config_telemetry: Optional[Mapping[str, Any]] = None,
):
    """Context manager installing the run's trace sink (no-op when off).

    Precedence mirrors the policy builders: the ``--trace`` flag wins over a
    config's ``"telemetry"`` block; the ``REPRO_TRACE`` environment variable
    is handled ambiently by :func:`repro.obs.trace.active_sink` and needs no
    scope here.  Tracing never changes stored rows — the sink only observes.
    """
    flag = getattr(args, "trace", None)
    if flag:
        return trace_to(flag)
    if config_telemetry is not None:
        telemetry = telemetry_from_mapping(config_telemetry, where="'telemetry' block")
        if telemetry.trace:
            return trace_to(telemetry.trace)
    return nullcontext()


# ---------------------------------------------------------------------------
# run / sweep
# ---------------------------------------------------------------------------


#: The subcommand that executes each config kind (for wrong-kind errors).
_KIND_COMMANDS = {"scenario": "run", "sweep": "sweep", "experiment": "experiments"}


def _store_target(config, *, scale: Optional[str] = None):
    """``(store kind, label, content key)`` of a config's store entry.

    The single source of truth shared by the write paths (run / sweep /
    experiments) and ``repro gc``'s reachability computation — if the key
    shape ever changes, both sides move together and gc cannot start
    considering freshly written entries unreachable.
    """
    if isinstance(config, ScenarioConfig):
        return "scenarios", config.label, {"kind": "scenario", "spec": config.spec.to_dict()}
    if isinstance(config, SweepConfig):
        key = {"kind": "sweep", "spec": config.spec.to_dict(), "over": dict(config.over)}
        return "sweeps", config.label, key
    if isinstance(config, ExperimentConfig):
        if scale not in _SCALE_KINDS:
            raise ReproError(f"experiment store targets need a scale, got {scale!r}")
        key = {"experiment": config.experiment, "scale": scale, "params": config.params_for(scale)}
        return _SCALE_KINDS[scale], config.experiment, key
    raise ReproError(f"no store target for {config!r}")


def _rows_for_config(config, policy: ExecutionPolicy) -> List[Dict[str, Any]]:
    """Execute a scenario/sweep config under ``policy`` and build its store rows.

    The single row-building path shared by ``repro run``, ``repro sweep`` and
    ``repro repair`` — repair must produce exactly the rows a normal run
    would, or its "byte-identical reassembly" guarantee means nothing.
    """
    if isinstance(config, ScenarioConfig):
        result = run_scenario(config.spec, execution=policy)
        return [{"seed": float(seed), **row} for seed, row in zip(config.spec.seeds, result.rows)]
    if isinstance(config, SweepConfig):
        results = sweep(config.spec, over=config.over, execution=policy)
        rows: List[Dict[str, Any]] = []
        for point in results:
            for seed, row in zip(point.spec.seeds, point.rows):
                rows.append({**dict(point.overrides), "seed": float(seed), **row})
        return rows
    raise ReproError(f"cannot build rows for {config!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    config = load_config(args.config)
    if not isinstance(config, ScenarioConfig):
        return _fail(
            f"{args.config} is a {config.kind} config; "
            f"use 'repro {_KIND_COMMANDS[config.kind]}'"
        )
    code = _validate_or_fail(config)
    if code:
        return code
    policy = _build_policy(args, config.execution, parallel=args.parallel)
    with (
        _trace_scope(args, config.telemetry),
        collect_stats() as stats,
        collect_metrics() as registry,
    ):
        with _verification_scope(_build_verification(args, config.verification)):
            rows = _rows_for_config(config, policy)
    kind, label, key = _store_target(config)
    return _store_and_emit(
        args,
        kind,
        label,
        key,
        rows,
        title=config.label,
        telemetry=registry.as_provenance(stats),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = load_config(args.config)
    if not isinstance(config, SweepConfig):
        return _fail(
            f"{args.config} is a {config.kind} config; "
            f"use 'repro {_KIND_COMMANDS[config.kind]}'"
        )
    code = _validate_or_fail(config)
    if code:
        return code
    policy = _build_policy(args, config.execution, parallel=args.parallel)
    with (
        _trace_scope(args, config.telemetry),
        collect_stats() as stats,
        collect_metrics() as registry,
    ):
        with _verification_scope(_build_verification(args, config.verification)):
            rows = _rows_for_config(config, policy)
    kind, label, key = _store_target(config)
    return _store_and_emit(
        args,
        kind,
        label,
        key,
        rows,
        title=config.label,
        telemetry=registry.as_provenance(stats),
    )


def _store_and_emit(
    args: argparse.Namespace,
    kind: str,
    label: str,
    key: Mapping[str, Any],
    rows: Sequence[Dict[str, Any]],
    *,
    title: str,
    telemetry: Optional[Mapping[str, Any]] = None,
) -> int:
    if args.no_store:
        _print(format_table(list(rows), title=title).rstrip("\n"))
        _print()
        return 0
    store = ResultsStore(args.store)
    entry, status = store.put(
        kind,
        label,
        key,
        rows,
        extra_provenance={"telemetry": dict(telemetry)} if telemetry else None,
    )
    # Re-read from disk: the table is rendered from what was persisted.
    _emit_entry(store.load(entry.path), title=title, status=status)
    return 0


# ---------------------------------------------------------------------------
# experiments / bench
# ---------------------------------------------------------------------------


def _select_experiments(args: argparse.Namespace) -> Dict[str, ExperimentConfig]:
    configs = load_experiment_configs(Path(args.configs) / "experiments")
    if args.all or not args.ids:
        return configs
    selected: Dict[str, ExperimentConfig] = {}
    for experiment_id in args.ids:
        if experiment_id not in configs:
            raise ReproError(
                f"no committed config for experiment {experiment_id!r} "
                f"(have: {', '.join(sorted(configs))})"
            )
        selected[experiment_id] = configs[experiment_id]
    return selected


def _profile_top(profiler, limit: int = 15) -> List[Dict[str, Any]]:
    """The ``limit`` highest-cumulative-time entries of a cProfile run.

    JSON-shaped for the telemetry provenance block: ``repro log --json``
    surfaces the full list, the table view the top function.
    """
    import pstats

    entries: List[Dict[str, Any]] = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        entries.append(
            {
                "function": f"{Path(filename).name}:{line}({name})",
                "calls": int(nc),
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
    entries.sort(key=lambda entry: -entry["cumtime"])
    return entries[:limit]


def _run_experiments(args: argparse.Namespace, *, scale: str, timings: bool) -> int:
    from repro.analysis.experiments.catalog import run_experiment

    configs = _select_experiments(args)
    # Profiling is in-process by definition: pooled workers would hide the
    # hot loop from the parent's profiler, so --profile forces serial.
    profile = bool(getattr(args, "profile", False))
    code = 0
    for config in configs.values():
        problems = validate_config(config)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            code = 2
    if code:
        return code

    store = ResultsStore(args.store)
    tables: List[str] = []
    summary: List[Dict[str, Any]] = []
    # A --trace flag covers the whole selection in one file; opening it per
    # experiment would truncate the previous experiment's events.  Without
    # the flag, each config's own "telemetry" block scopes its experiment.
    flag_scope = trace_to(args.trace) if getattr(args, "trace", None) else nullcontext()
    with flag_scope:
        for experiment_id, config in sorted(configs.items()):
            params = config.params_for(scale)
            serial = args.serial or profile
            policy = _build_policy(args, config.execution, parallel=not serial)
            verification = _build_verification(args, config.verification)
            config_scope = (
                nullcontext()
                if getattr(args, "trace", None)
                else _trace_scope(args, config.telemetry)
            )
            started = time.perf_counter()
            profiler = None
            with config_scope, collect_stats() as stats, collect_metrics() as registry:
                with use_policy(policy), _verification_scope(verification):
                    if profile:
                        import cProfile

                        profiler = cProfile.Profile()
                        profiler.enable()
                    try:
                        rows = run_experiment(experiment_id, params, parallel=not serial)
                    finally:
                        if profiler is not None:
                            profiler.disable()
            elapsed = time.perf_counter() - started
            kind, label, key = _store_target(config, scale=scale)
            telemetry = registry.as_provenance(stats)
            if profiler is not None:
                telemetry = dict(telemetry)
                telemetry["profile"] = _profile_top(profiler)
            store_started = time.perf_counter()
            entry, status = store.put(
                kind,
                label,
                key,
                rows,
                extra_provenance={"telemetry": telemetry} if telemetry else None,
            )
            stored = store.load(entry.path)
            store_elapsed = time.perf_counter() - store_started
            title = f"{config.title}  [{scale}]"
            tables.append(
                _emit_entry(stored, title=title, columns=config.columns, status=status)
            )
            summary.append(
                {
                    "experiment": experiment_id,
                    "rows": float(len(stored.rows)),
                    "status": status,
                    "seconds": round(elapsed, 2),
                    # Phase splits (see repro.exec.stats): in-process unit phases
                    # are complete under serial/thread execution; under pooled
                    # backends the worker-side time shows up in dispatch_s.
                    "setup_s": round(stats.seconds(UNIT_SETUP), 2),
                    "rounds_s": round(stats.seconds(UNIT_ROUNDS), 2),
                    "metrics_s": round(stats.seconds(UNIT_METRICS), 2),
                    "dispatch_s": round(stats.seconds(EXEC_DISPATCH), 2),
                    "journal_s": round(stats.seconds(EXEC_JOURNAL), 3),
                    "store_s": round(store_elapsed, 3),
                }
            )
    if timings and summary:
        _print(format_table(summary, title=f"{len(summary)} experiments ({scale} scale)").rstrip())
        _print(
            "[timing splits: setup/rounds/metrics are in-process unit phases "
            "(complete with --serial or --backend thread); dispatch is backend "
            "wall time incl. pooled workers; journal/store are checkpoint + "
            "results-store writes]"
        )
        _print()
    if args.tables:
        Path(args.tables).parent.mkdir(parents=True, exist_ok=True)
        Path(args.tables).write_text("\n".join(tables), encoding="utf-8")
        _print(f"tables written to {args.tables}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list:
        configs = load_experiment_configs(Path(args.configs) / "experiments")
        listing = [
            {"experiment": experiment_id, "title": config.title}
            for experiment_id, config in sorted(configs.items())
        ]
        _print(format_table(listing, title="committed experiment configs").rstrip())
        return 0
    scale = "smoke" if args.smoke else "full"
    return _run_experiments(args, scale=scale, timings=False)


def _cmd_bench(args: argparse.Namespace) -> int:
    scale = "smoke" if args.smoke else "bench"
    return _run_experiments(args, scale=scale, timings=True)


# ---------------------------------------------------------------------------
# validate / diff
# ---------------------------------------------------------------------------


def _iter_config_paths(configs_dir: Path) -> List[Path]:
    if not configs_dir.is_dir():
        raise ReproError(f"config directory {configs_dir} does not exist")
    return sorted(p for p in configs_dir.rglob("*.json") if p.is_file())


def _cmd_validate(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.configs_or_dirs] or _iter_config_paths(Path(args.configs))
    expanded: List[Path] = []
    for path in paths:
        expanded.extend(_iter_config_paths(path) if path.is_dir() else [path])
    if not expanded:
        return _fail("no config files found")
    failures = 0
    for path in expanded:
        try:
            config = load_config(path)
            problems = validate_config(config)
        except ReproError as exc:
            problems = [str(exc)]
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            _print(f"ok: {path}")
    if failures:
        return _fail(f"{failures} of {len(expanded)} configs failed validation")
    _print(f"all {len(expanded)} configs valid")
    return 0


def _diff_bench(reference: Path, candidate: Path) -> int:
    """Compare two benchmark JSON files (``BENCH_*.json``) per workload.

    Rows are matched on their ``workload`` key and every ``*_rps`` field is
    compared as a new/old throughput ratio.  A workload that vanished from
    the candidate is a failure — a silently dropped row must not read as
    clean — and so is any throughput ratio below 0.9 (a >10% regression).
    """
    payloads = []
    for role, path in (("reference", reference), ("candidate", candidate)):
        if not path.is_file():
            return _fail(f"{role} benchmark file {path} does not exist")
        try:
            payloads.append(json.loads(path.read_text(encoding="utf-8")))
        except json.JSONDecodeError as exc:
            return _fail(f"{role} benchmark file {path} is not valid JSON: {exc}")
    ref_rows = {row["workload"]: row for row in payloads[0].get("rows", [])}
    cand_rows = {row["workload"]: row for row in payloads[1].get("rows", [])}
    if not ref_rows:
        return _fail(f"reference benchmark file {reference} has no rows")

    from repro.obs.report import markdown_table

    failures: List[str] = []
    table_rows: List[Dict[str, Any]] = []
    for workload, ref_row in ref_rows.items():
        cand_row = cand_rows.get(workload)
        if cand_row is None:
            failures.append(f"workload {workload} missing from candidate")
            table_rows.append(
                {"workload": workload, "field": "(all)", "note": "MISSING"}
            )
            continue
        for field in sorted(ref_row):
            if not field.endswith("_rps"):
                continue
            old = ref_row.get(field)
            new = cand_row.get(field)
            if not isinstance(old, (int, float)) or not old:
                # Scale rows carry ``incremental_rps: null`` (only the kernel
                # path completes them) — their ``kernel_rps`` still gates
                # above, but a null-vs-null field is shown, not silently
                # dropped, and a value appearing where the reference had none
                # is a visible note rather than nothing.
                note = "n/a" if new in (None, old) else f"new value {new}"
                table_rows.append({"workload": workload, "field": field, "note": note})
                continue
            if not isinstance(new, (int, float)):
                failures.append(f"{workload}: {field} missing from candidate row")
                table_rows.append(
                    {"workload": workload, "field": field, "old": float(old), "note": "MISSING"}
                )
                continue
            ratio = new / old
            table_rows.append(
                {
                    "workload": workload,
                    "field": field,
                    "old": float(old),
                    "new": float(new),
                    "ratio": round(ratio, 2),
                }
            )
            if ratio < 0.9:
                failures.append(
                    f"{workload}: {field} regressed {old:.1f} -> {new:.1f} "
                    f"({ratio:.2f}x < 0.90x)"
                )
    for workload in cand_rows:
        if workload not in ref_rows:
            table_rows.append({"workload": workload, "field": "(new row)"})
    _print(
        markdown_table(
            table_rows, columns=["workload", "field", "old", "new", "ratio", "note"], precision=1
        ).rstrip()
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return _fail(f"{len(failures)} benchmark regression(s)")
    _print(f"bench diff clean: {len(ref_rows)} workloads within 10% of reference")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.bench:
        return _diff_bench(Path(args.reference), Path(args.candidate))
    for role, root in (("reference", args.reference), ("candidate", args.candidate)):
        # A missing store must not read as "no drift" — that would turn a
        # mispointed CI gate into a silent pass.
        if not Path(root).is_dir():
            return _fail(f"{role} store {root} does not exist")
    reference, candidate = ResultsStore(args.reference), ResultsStore(args.candidate)
    diff = diff_stores(reference, candidate, kind=args.kind)
    _print(diff.describe())
    return 0 if diff.clean else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    store_root = Path(args.store)
    if not store_root.is_dir():
        # Same stance as repro diff: a missing store must not read as clean.
        return _fail(f"store {store_root} does not exist")
    findings = audit_store(store_root, kind=args.kind)
    if args.json:
        _print(
            json.dumps(
                {
                    "store": str(store_root),
                    "clean": not findings,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
        return 1 if findings else 0
    for finding in findings:
        _print(finding.describe())
    if findings:
        return _fail(
            f"{len(findings)} finding{'' if len(findings) == 1 else 's'} in {store_root}"
        )
    _print(f"store {store_root} is clean")
    return 0


def _batch_units_for_config(config) -> Optional[list]:
    """The flat work-unit batch a scenario/sweep config runs as one journal.

    ``None`` for experiment configs — those run many internal batches whose
    journals repair cannot match one-to-one (re-run them with ``--resume``
    instead).
    """
    if isinstance(config, ScenarioConfig):
        return units_for_spec(config.spec)
    if isinstance(config, SweepConfig):
        return expand_sweep(config.spec, config.over)[1]
    return None


def _cmd_repair(args: argparse.Namespace) -> int:
    store_root = Path(args.store)
    if not store_root.is_dir():
        return _fail(f"store {store_root} does not exist")
    verb = "would remove" if args.dry_run else "removed"
    for directory in sorted(p for p in store_root.iterdir() if p.is_dir()):
        if directory.name.startswith("."):
            continue
        for scratch in sorted(directory.glob("*.json.tmp")):
            _print(f"{verb} torn write {scratch}")
            if not args.dry_run:
                scratch.unlink()

    from repro.exec.shm import stale_segments, unlink_stale_segments

    if args.dry_run:
        for name in stale_segments():
            _print(f"would remove stale shm segment {name}")
    else:
        for name in unlink_stale_segments():
            _print(f"removed stale shm segment {name}")

    journals = sorted((store_root / JOURNALS_SUBDIR).glob("*.jsonl"))
    if not journals:
        _print("no interrupted batches")
        return 0

    # Match each journal back to the committed config whose unit batch it
    # checkpoints — the journal file name is the batch's content hash, and
    # expand_sweep/units_for_spec recompute that hash without running anything.
    by_batch: Dict[str, Any] = {}
    for path in _iter_config_paths(Path(args.configs)):
        try:
            config = load_config(path)
            units = _batch_units_for_config(config)
        except ReproError:
            continue  # validate reports broken configs; repair skips them
        if units:
            by_batch[batch_key(units)[:24]] = (path, config)

    code = 0
    for journal_path in journals:
        matched = by_batch.get(journal_path.stem)
        status = journal_status(journal_path)
        done, total = status["completed"], status["total"]
        if matched is None:
            print(
                f"unmatched journal {journal_path} ({done}/{total} units): no committed "
                f"scenario/sweep config produces this batch — either its config was "
                f"edited/deleted (remove the journal with 'repro gc --journals') or it "
                f"belongs to an experiment run (re-run with --resume)",
                file=sys.stderr,
            )
            code = 1
            continue
        config_path, config = matched
        if args.dry_run:
            _print(f"would repair {config_path} ({done}/{total} units journalled)")
            continue
        _print(f"repairing {config_path}: {done}/{total} units journalled, resuming")
        policy = _build_policy(args, config.execution).replace(resume=True)
        with _trace_scope(args, config.telemetry), collect_stats() as stats:
            with collect_metrics() as registry:
                with _verification_scope(_build_verification(args, config.verification)):
                    rows = _rows_for_config(config, policy)
        telemetry = registry.as_provenance(stats)
        kind, label, key = _store_target(config)
        entry, put_status = ResultsStore(args.store).put(
            kind,
            label,
            key,
            rows,
            extra_provenance={"telemetry": telemetry} if telemetry else None,
        )
        # "unchanged" is the byte-identity verification: the reassembled rows
        # equal the previously stored entry exactly.
        _print(f"{put_status}: {entry.path} ({len(rows)} rows)")
    return code


def _cmd_components(_args: argparse.Namespace) -> int:
    for family, docs in available(docs=True).items():
        rows = [{"name": name, "description": doc} for name, doc in docs.items()]
        _print(format_table(rows, title=family).rstrip())
        _print()
    return 0


# ---------------------------------------------------------------------------
# verify (observational-equivalence contracts + metamorphic properties)
# ---------------------------------------------------------------------------


def _cmd_verify(args: argparse.Namespace) -> int:
    # Imported lazily: the contract suite pulls in every registered component
    # plus numpy, which no other subcommand should pay for at import time.
    from repro.verify.contracts import CONTRACTS
    from repro.verify.harness import run_verify, verify_store_target

    if args.list:
        listing = [
            {"contract": name, "description": doc} for name, doc in CONTRACTS.describe().items()
        ]
        _print(format_table(listing, title="validation contracts").rstrip())
        return 0

    contracts: Optional[List[str]] = None
    if args.contracts:
        contracts = [token.strip() for token in args.contracts.split(",") if token.strip()]
    # The full suite runs for minutes; it gets the live ETA line by default.
    progress = bool(getattr(args, "progress", False)) or args.suite == "full"
    verdicts = run_verify(
        suite=args.suite, contracts=contracts, configs_dir=args.configs, progress=progress
    )
    rows = [verdict.as_row() for verdict in verdicts]

    if args.no_store:
        _print(format_table(rows, title=f"repro verify [{args.suite}]").rstrip())
        _print()
    else:
        store = ResultsStore(args.store)
        kind, label, key = verify_store_target(args.suite, contracts)
        entry, status = store.put(kind, label, key, rows)
        # Same stance as run/sweep: render from what was persisted.
        _emit_entry(store.load(entry.path), title=f"repro verify [{args.suite}]", status=status)

    failures = [verdict for verdict in verdicts if verdict.status == "fail"]
    passed = sum(1 for verdict in verdicts if verdict.status == "pass")
    skipped = sum(1 for verdict in verdicts if verdict.status == "skip")
    for verdict in failures:
        print(
            f"FAIL: contract {verdict.contract!r} case {verdict.case!r}: {verdict.detail}",
            file=sys.stderr,
        )
    contracts_run = len({verdict.contract for verdict in verdicts})
    summary = (
        f"{passed} passed, {len(failures)} failed, {skipped} skipped "
        f"across {contracts_run} contract{'' if contracts_run == 1 else 's'}"
    )
    if failures:
        return _fail(summary)
    _print(summary)
    return 0


# ---------------------------------------------------------------------------
# gc / log (store housekeeping and provenance)
# ---------------------------------------------------------------------------


def _reachable_entry_paths(store: ResultsStore, configs_dir: Path) -> set:
    """Every store path a committed config can (re)generate.

    This is the gc root set: an entry not in it belongs to a deleted or
    edited config (content addressing leaves the old file behind when a
    config's key changes) and can be pruned.

    A config that fails to load raises: a root set computed from a broken
    config tree would mark that config's entries unreachable and delete
    results that may have taken hours to generate.
    """
    reachable = set()
    for path in _iter_config_paths(configs_dir):
        try:
            config = load_config(path)
        except ReproError as exc:
            raise ReproError(
                f"cannot compute gc reachability: {exc} "
                f"(fix or delete the config before collecting garbage)"
            ) from exc
        if isinstance(config, ExperimentConfig):
            for scale in _SCALE_KINDS:
                kind, label, key = _store_target(config, scale=scale)
                reachable.add(store.entry_path(kind, label, key))
        else:
            kind, label, key = _store_target(config)
            reachable.add(store.entry_path(kind, label, key))
    # Full-suite verify runs are regenerable from the committed tree, so they
    # are gc roots too (contract-subset runs are scratch work and prunable).
    from repro.verify.harness import verify_store_target

    for suite in ("smoke", "full"):
        kind, label, key = verify_store_target(suite)
        reachable.add(store.entry_path(kind, label, key))
    return reachable


def _cmd_gc(args: argparse.Namespace) -> int:
    store_root = Path(args.store)
    if not store_root.is_dir():
        return _fail(f"store {store_root} does not exist")
    store = ResultsStore(store_root)
    reachable = _reachable_entry_paths(store, Path(args.configs))
    kept = 0
    doomed: List[Path] = []
    for directory in sorted(p for p in store_root.iterdir() if p.is_dir()):
        if directory.name.startswith("."):
            continue  # journals and other housekeeping state are not entries
        for path in sorted(directory.glob("*.json")):
            if path in reachable:
                kept += 1
            else:
                doomed.append(path)
    if args.journals:
        journals = sorted((store_root / JOURNALS_SUBDIR).glob("*.jsonl"))
        doomed.extend(journals)
    verb = "would remove" if args.dry_run else "removed"
    for path in doomed:
        _print(f"{verb} {path}")
        if not args.dry_run:
            path.unlink()
    _print(
        f"{verb} {len(doomed)} unreachable entr{'y' if len(doomed) == 1 else 'ies'}, "
        f"kept {kept} reachable from {args.configs}"
    )
    return 0


def _cmd_log(args: argparse.Namespace) -> int:
    store_root = Path(args.store)
    if not store_root.is_dir():
        return _fail(f"store {store_root} does not exist")
    store = ResultsStore(store_root)
    rows: List[Dict[str, Any]] = []
    for entry in store.entries(args.kind):
        experiment = entry.key.get("experiment", "")
        if args.experiment and experiment != args.experiment:
            continue
        if args.label and args.label not in entry.label:
            continue
        mtime = ""
        if entry.path is not None and entry.path.exists():
            stamp = _datetime.datetime.fromtimestamp(entry.path.stat().st_mtime)
            mtime = stamp.strftime("%Y-%m-%d %H:%M:%S")
        telemetry = entry.provenance.get("telemetry") or {}
        phases = telemetry.get("phases") or {}
        top = sorted(
            phases.items(), key=lambda item: item[1].get("seconds", 0.0), reverse=True
        )[:3]
        row: Dict[str, Any] = {
            "kind": entry.kind,
            "label": entry.label,
            "key": entry.key_hash[:12],
            "rows": len(entry.rows),
            "version": str(entry.provenance.get("repro_version", "")),
            "git": str(entry.provenance.get("git_sha") or "")[:10],
            "written": mtime,
            "phases": " ".join(
                f"{name}={block.get('seconds', 0.0):.2f}s" for name, block in top
            ),
        }
        hotspots = telemetry.get("profile") or []
        if hotspots:
            head = hotspots[0]
            row["hotspot"] = f"{head.get('function')} {head.get('cumtime', 0.0):.2f}s"
        if args.json and telemetry:
            row["telemetry"] = telemetry
        rows.append(row)
    # Oldest first, so --limit N tails off the N most recently written.
    rows.sort(key=lambda row: (row["written"], row["kind"], row["label"]))
    total = len(rows)
    if args.limit:
        rows = rows[-args.limit :]
    if args.json:
        _print(json.dumps({"total": total, "entries": rows}, indent=2))
        return 0
    if not rows:
        _print("no matching store entries")
        return 0
    title = f"{total} store entr{'y' if total == 1 else 'ies'}"
    if len(rows) != total:
        title += f" ({len(rows)} most recent shown)"
    _print(format_table(rows, title=title))
    return 0


# ---------------------------------------------------------------------------
# trace / report (the observability consumer verbs)
# ---------------------------------------------------------------------------


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import summarize_trace
    from repro.obs.trace import read_trace, validate_trace

    path = Path(args.trace_file)
    if not path.is_file():
        return _fail(f"trace file {path} does not exist")

    if args.validate:
        problems = validate_trace(path)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return _fail(f"{len(problems)} schema problem(s) in {path}")
        _print(f"trace {path} is schema-valid")
        return 0

    events = read_trace(path)
    if args.event:
        wanted = {token.strip() for token in args.event.split(",") if token.strip()}
        events = [event for event in events if event.get("event") in wanted]
    if args.limit:
        events = events[: args.limit]
    if args.raw:
        for event in events:
            _print(json.dumps(event, sort_keys=True, separators=(",", ":")))
        return 0
    _print(summarize_trace(events).rstrip())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_study

    store_root = Path(args.store)
    if not store_root.is_dir():
        return _fail(f"store {store_root} does not exist")
    rendered = render_study(ResultsStore(store_root), kind=args.kind)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered, encoding="utf-8")
        _print(f"report written to {out}")
    else:
        _print(rendered.rstrip())
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=str(DEFAULT_STORE_DIR),
        help=f"results store directory (default: {DEFAULT_STORE_DIR})",
    )


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    """The execution-policy flags shared by every executing subcommand."""
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS.available()),
        help="execution backend (default: from the config's 'execution' block, else serial)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        metavar="N",
        help="work units per dispatch chunk (default: auto-sized from the batch)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker count for pooled backends (default: CPU count)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse the sweep journal of an interrupted run instead of recomputing",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report units done, rows/sec and ETA on stderr while running",
    )
    parser.add_argument(
        "--transport",
        choices=list(TRANSPORTS.available()),
        help="remote transport for --backend remote (default: loopback)",
    )
    parser.add_argument(
        "--hosts",
        metavar="H1,H2=4",
        help="comma-separated fleet for --backend remote: 'host' or 'host=slots' "
        "entries (slots = that worker's in-flight limit)",
    )


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    """The tracing flag shared by every executing subcommand."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write an NDJSON structured-event trace of the run to PATH "
        "(round/chunk/dispatch lifecycle; store rows are unaffected). "
        "Default: from the config's 'telemetry' block, else the REPRO_TRACE "
        "environment variable, else off",
    )


def _add_verification_options(parser: argparse.ArgumentParser) -> None:
    """The in-run verification flag shared by every executing subcommand."""
    parser.add_argument(
        "--verify",
        metavar="MODES",
        help="delivery paths to re-check against the full engine per seed: "
        "comma-separated from incremental,kernel, or 'none' to disable "
        "(default: from the config's 'verification' block, else off)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Config-driven experiment pipeline for the dynamic-network reproduction.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one committed ScenarioSpec config")
    run.add_argument("config", help="path to a scenario config (JSON)")
    run.add_argument("--parallel", action="store_true", help="fan seeds out over cores")
    run.add_argument("--no-store", action="store_true", help="print only, skip the results store")
    _add_store_options(run)
    _add_execution_options(run)
    _add_verification_options(run)
    _add_telemetry_options(run)
    run.set_defaults(fn=_cmd_run)

    sweep_cmd = sub.add_parser("sweep", help="run a committed spec + override-grid config")
    sweep_cmd.add_argument("config", help="path to a sweep config (JSON)")
    sweep_cmd.add_argument("--parallel", action="store_true", help="fan units out over cores")
    sweep_cmd.add_argument(
        "--no-store", action="store_true", help="print only, skip the results store"
    )
    _add_store_options(sweep_cmd)
    _add_execution_options(sweep_cmd)
    _add_verification_options(sweep_cmd)
    _add_telemetry_options(sweep_cmd)
    sweep_cmd.set_defaults(fn=_cmd_sweep)

    experiments = sub.add_parser(
        "experiments", help="regenerate E1–E13 tables from committed configs"
    )
    experiments.add_argument("ids", nargs="*", help="experiment ids (e01 … e13)")
    experiments.add_argument("--all", action="store_true", help="run every committed experiment")
    experiments.add_argument(
        "--smoke", action="store_true", help="use the CI-sized smoke parameter sets"
    )
    experiments.add_argument("--list", action="store_true", help="list committed experiments")
    experiments.add_argument("--serial", action="store_true", help="disable the process pool")
    experiments.add_argument("--tables", help="also write all tables to this file")
    experiments.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree root (default: {DEFAULT_CONFIGS_DIR})",
    )
    _add_store_options(experiments)
    _add_execution_options(experiments)
    _add_verification_options(experiments)
    _add_telemetry_options(experiments)
    experiments.set_defaults(fn=_cmd_experiments)

    bench = sub.add_parser("bench", help="benchmark-scale experiment runs with wall times")
    bench.add_argument("ids", nargs="*", help="experiment ids (e01 … e13)")
    bench.add_argument("--all", action="store_true", help="run every committed experiment")
    bench.add_argument("--smoke", action="store_true", help="smoke-sized dry run of the harness")
    bench.add_argument("--serial", action="store_true", help="disable the process pool")
    bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run (forces serial) and store the top cumulative "
        "entries in the telemetry provenance ('repro log' shows the hotspot)",
    )
    bench.add_argument("--tables", help="also write all tables to this file")
    bench.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree root (default: {DEFAULT_CONFIGS_DIR})",
    )
    _add_store_options(bench)
    _add_execution_options(bench)
    _add_verification_options(bench)
    _add_telemetry_options(bench)
    bench.set_defaults(fn=_cmd_bench)

    validate = sub.add_parser("validate", help="validate committed configs without running them")
    validate.add_argument(
        "configs_or_dirs", nargs="*", help="config files or directories (default: configs/)"
    )
    validate.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree root (default: {DEFAULT_CONFIGS_DIR})",
    )
    validate.set_defaults(fn=_cmd_validate)

    diff = sub.add_parser("diff", help="compare two results stores; exit 1 on drift")
    diff.add_argument("reference", help="reference store directory (e.g. the committed results/)")
    diff.add_argument("candidate", help="candidate store directory (e.g. a fresh regeneration)")
    diff.add_argument("--kind", help="restrict to one store kind (e.g. smoke)")
    diff.add_argument(
        "--bench",
        action="store_true",
        help=(
            "treat the two paths as benchmark JSON files (BENCH_*.json): "
            "compare *_rps fields per workload, exit 1 on a >10%% regression "
            "or a vanished workload"
        ),
    )
    diff.set_defaults(fn=_cmd_diff)

    audit = sub.add_parser(
        "audit", help="scan a results tree for interrupted/torn/drifted state; exit 1 on findings"
    )
    audit.add_argument("--kind", help="restrict to one store kind (e.g. smoke, sweeps)")
    audit.add_argument("--json", action="store_true", help="machine-readable findings")
    _add_store_options(audit)
    audit.set_defaults(fn=_cmd_audit)

    repair = sub.add_parser(
        "repair",
        help="finish interrupted batches (re-running only their missing units) "
        "and clean torn writes",
    )
    repair.add_argument(
        "--dry-run", action="store_true", help="report what would be repaired without running"
    )
    repair.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree journals are matched against (default: {DEFAULT_CONFIGS_DIR})",
    )
    _add_store_options(repair)
    _add_execution_options(repair)
    _add_verification_options(repair)
    _add_telemetry_options(repair)
    repair.set_defaults(fn=_cmd_repair)

    components = sub.add_parser("components", help="list every registered scenario component")
    components.set_defaults(fn=_cmd_components)

    verify = sub.add_parser(
        "verify",
        help="run the observational-equivalence contract suite; exit 1 on any failure",
    )
    verify.add_argument(
        "--suite",
        choices=["smoke", "full"],
        default="smoke",
        help="case sizes: smoke is CI-sized, full widens n/rounds/seeds (default: smoke)",
    )
    verify.add_argument(
        "--contracts",
        metavar="C1,C2",
        help="run only these contracts (comma-separated; default: all registered)",
    )
    verify.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree the manipulation-exists contract scans (default: {DEFAULT_CONFIGS_DIR})",
    )
    verify.add_argument(
        "--no-store", action="store_true", help="print only, skip the results store"
    )
    verify.add_argument(
        "--list", action="store_true", help="list registered contracts without running them"
    )
    verify.add_argument(
        "--progress",
        action="store_true",
        help="live contract counter with ETA on stderr (default for --suite full)",
    )
    _add_store_options(verify)
    verify.set_defaults(fn=_cmd_verify)

    gc = sub.add_parser(
        "gc", help="prune store entries unreachable from the committed configs"
    )
    gc.add_argument(
        "--dry-run", action="store_true", help="list what would be removed without removing it"
    )
    gc.add_argument(
        "--journals",
        action="store_true",
        help="also remove sweep-journal checkpoints of interrupted runs",
    )
    gc.add_argument(
        "--configs",
        default=str(DEFAULT_CONFIGS_DIR),
        help=f"config tree root defining reachability (default: {DEFAULT_CONFIGS_DIR})",
    )
    _add_store_options(gc)
    gc.set_defaults(fn=_cmd_gc)

    log = sub.add_parser("log", help="list stored entries with their provenance")
    log.add_argument("--kind", help="restrict to one store kind (e.g. smoke, sweeps)")
    log.add_argument("--experiment", help="restrict to one experiment id (e.g. e01)")
    log.add_argument("--label", help="restrict to labels containing this substring")
    log.add_argument("--limit", type=int, metavar="N", help="show only the last N entries")
    log.add_argument("--json", action="store_true", help="machine-readable entry listing")
    _add_store_options(log)
    log.set_defaults(fn=_cmd_log)

    trace = sub.add_parser(
        "trace", help="summarize or filter an NDJSON trace written with --trace/REPRO_TRACE"
    )
    trace.add_argument("trace_file", help="path to an NDJSON trace file")
    trace.add_argument(
        "--event", metavar="E1,E2", help="restrict to these event types (comma-separated)"
    )
    trace.add_argument(
        "--raw", action="store_true", help="dump matching events as NDJSON instead of summarizing"
    )
    trace.add_argument("--limit", type=int, metavar="N", help="stop after the first N events")
    trace.add_argument(
        "--validate",
        action="store_true",
        help="check every event against the trace schema; exit 1 on any problem",
    )
    trace.set_defaults(fn=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="render a Markdown study summary (heat tables, phase splits) from stored entries",
    )
    report.add_argument("--kind", help="restrict to one store kind (e.g. smoke, sweeps)")
    report.add_argument(
        "--out", metavar="FILE", help="write the Markdown to FILE instead of stdout"
    )
    _add_store_options(report)
    report.set_defaults(fn=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro`` / ``python -m repro``; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        return _fail(f"error: {exc}")
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # Output truncated by a closed pipe (`repro log | head`): exit
        # quietly with the conventional 128+SIGPIPE code, keeping the
        # interpreter from tracebacking on the final stdout flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
