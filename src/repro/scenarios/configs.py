"""Committed config files: loading and validation for the ``repro`` pipeline.

Three config kinds live under ``configs/`` (see ``configs/README.md``):

``scenario``
    One :class:`~repro.scenarios.spec.ScenarioSpec` — ``{"kind": "scenario",
    "spec": {…}}``.  A bare spec dict (the output of ``ScenarioSpec.to_json``)
    is also accepted.
``sweep``
    A base spec plus a grid of dotted-path overrides — ``{"kind": "sweep",
    "spec": {…}, "over": {"n": [64, 128], …}}``.
``experiment``
    A catalogued E1–E13 experiment plus its parameter sets — ``{"kind":
    "experiment", "experiment": "e01", "title": …, "params": {…},
    "bench_params": {…}, "smoke_params": {…}}``.

:func:`validate_config` checks a config *without running it*: every component
name must exist in its registry (unknown names produce a message listing
near-miss suggestions from ``available()`` instead of a raw lookup error deep
inside the registry), sweep grids must expand to constructible specs, and
experiment parameters must match the experiment function's signature.
"""

from __future__ import annotations

import json
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    PROBES,
    STOP_CONDITIONS,
    TOPOLOGIES,
    WAKEUPS,
    Registry,
    suggestion_hint,
)
from repro.scenarios.spec import ComponentSpec, ScenarioSpec

__all__ = [
    "Config",
    "ExperimentConfig",
    "ScenarioConfig",
    "SweepConfig",
    "load_config",
    "load_experiment_configs",
    "validate_config",
    "validate_spec",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """A committed single-scenario config."""

    spec: ScenarioSpec
    path: Optional[Path] = None
    execution: Optional[Mapping[str, Any]] = None
    verification: Optional[Mapping[str, Any]] = None
    telemetry: Optional[Mapping[str, Any]] = None

    kind = "scenario"

    @property
    def label(self) -> str:
        return self.spec.label


@dataclass(frozen=True)
class SweepConfig:
    """A committed spec-plus-grid config."""

    spec: ScenarioSpec
    over: Mapping[str, Sequence[Any]]
    path: Optional[Path] = None
    execution: Optional[Mapping[str, Any]] = None
    verification: Optional[Mapping[str, Any]] = None
    telemetry: Optional[Mapping[str, Any]] = None

    kind = "sweep"

    @property
    def label(self) -> str:
        return self.spec.label


@dataclass(frozen=True)
class ExperimentConfig:
    """A committed E1–E13 experiment config with its three parameter scales."""

    experiment: str
    title: str
    params: Mapping[str, Any] = field(default_factory=dict)
    bench_params: Optional[Mapping[str, Any]] = None
    smoke_params: Optional[Mapping[str, Any]] = None
    columns: Optional[Tuple[str, ...]] = None
    path: Optional[Path] = None
    execution: Optional[Mapping[str, Any]] = None
    verification: Optional[Mapping[str, Any]] = None
    telemetry: Optional[Mapping[str, Any]] = None

    kind = "experiment"

    @property
    def label(self) -> str:
        return self.experiment

    def params_for(self, scale: str) -> Dict[str, Any]:
        """The parameter set for one scale (smoke/bench fall back to full)."""
        if scale == "full":
            return dict(self.params)
        if scale == "bench":
            return dict(self.bench_params if self.bench_params is not None else self.params)
        if scale == "smoke":
            return dict(self.smoke_params if self.smoke_params is not None else self.params)
        raise ConfigurationError(f"unknown experiment scale {scale!r} (full/bench/smoke)")


Config = Union[ScenarioConfig, SweepConfig, ExperimentConfig]


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def _load_json(path: Path) -> Mapping[str, Any]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"config {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"config {path} must be a JSON object, got {type(data).__name__}")
    return data


def load_config(path: Union[str, Path]) -> Config:
    """Load one config file, dispatching on its ``"kind"``."""
    path = Path(path)
    data = _load_json(path)
    kind = data.get("kind")
    if kind is None and "n" in data and "algorithm" in data:
        kind = "scenario"  # a bare ScenarioSpec dict, e.g. spec.to_json() output
        data = {"kind": "scenario", "spec": dict(data)}
    execution = data.get("execution")
    if execution is not None and not isinstance(execution, Mapping):
        raise ConfigurationError(
            f"config {path}: 'execution' must be a JSON object, got {execution!r}"
        )
    execution = None if execution is None else dict(execution)
    verification = data.get("verification")
    if verification is not None and not isinstance(verification, Mapping):
        raise ConfigurationError(
            f"config {path}: 'verification' must be a JSON object, got {verification!r}"
        )
    verification = None if verification is None else dict(verification)
    telemetry = data.get("telemetry")
    if telemetry is not None and not isinstance(telemetry, Mapping):
        raise ConfigurationError(
            f"config {path}: 'telemetry' must be a JSON object, got {telemetry!r}"
        )
    telemetry = None if telemetry is None else dict(telemetry)
    if kind == "scenario":
        if "spec" not in data:
            raise ConfigurationError(f"scenario config {path} is missing its 'spec'")
        _reject_unknown(path, data, {"kind", "spec", "execution", "verification", "telemetry"})
        return ScenarioConfig(
            spec=ScenarioSpec.from_dict(data["spec"]),
            path=path,
            execution=execution,
            verification=verification,
            telemetry=telemetry,
        )
    if kind == "sweep":
        for required in ("spec", "over"):
            if required not in data:
                raise ConfigurationError(f"sweep config {path} is missing its {required!r}")
        _reject_unknown(
            path, data, {"kind", "spec", "over", "execution", "verification", "telemetry"}
        )
        over = data["over"]
        if not isinstance(over, Mapping) or not over:
            raise ConfigurationError(f"sweep config {path}: 'over' must be a non-empty object")
        for axis, values in over.items():
            # A bare scalar would TypeError below and a string would sweep its
            # characters — both are config mistakes, not grids.
            if isinstance(values, (str, bytes)) or not isinstance(values, SequenceABC):
                raise ConfigurationError(
                    f"sweep config {path}: axis {axis!r} must be a JSON list of values, "
                    f"got {values!r}"
                )
        return SweepConfig(
            spec=ScenarioSpec.from_dict(data["spec"]),
            over={str(k): list(v) for k, v in over.items()},
            path=path,
            execution=execution,
            verification=verification,
            telemetry=telemetry,
        )
    if kind == "experiment":
        for required in ("experiment", "title"):
            if required not in data:
                raise ConfigurationError(f"experiment config {path} is missing its {required!r}")
        _reject_unknown(
            path,
            data,
            {
                "kind",
                "experiment",
                "title",
                "params",
                "bench_params",
                "smoke_params",
                "columns",
                "execution",
                "verification",
                "telemetry",
            },
        )
        columns = data.get("columns")
        return ExperimentConfig(
            experiment=str(data["experiment"]),
            title=str(data["title"]),
            params=dict(data.get("params", {})),
            bench_params=None if data.get("bench_params") is None else dict(data["bench_params"]),
            smoke_params=None if data.get("smoke_params") is None else dict(data["smoke_params"]),
            columns=None if columns is None else tuple(columns),
            path=path,
            execution=execution,
            verification=verification,
            telemetry=telemetry,
        )
    raise ConfigurationError(
        f"config {path} has unknown kind {kind!r} (expected scenario, sweep or experiment)"
    )


def _reject_unknown(path: Path, data: Mapping[str, Any], allowed: set) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ConfigurationError(f"config {path} has unknown keys {sorted(unknown)}")


def load_experiment_configs(directory: Union[str, Path]) -> Dict[str, ExperimentConfig]:
    """Load every experiment config under ``directory``, keyed by experiment id."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"experiment config directory {directory} does not exist")
    configs: Dict[str, ExperimentConfig] = {}
    for path in sorted(directory.glob("*.json")):
        config = load_config(path)
        if not isinstance(config, ExperimentConfig):
            raise ConfigurationError(f"{path} is a {config.kind} config, expected an experiment")
        if config.experiment in configs:
            raise ConfigurationError(
                f"duplicate experiment id {config.experiment!r} "
                f"({configs[config.experiment].path} and {path})"
            )
        configs[config.experiment] = config
    return configs


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def _check_component(
    registry: Registry,
    family: str,
    ref: Optional[ComponentSpec],
    role: str,
    problems: List[str],
) -> None:
    if ref is None or ref.name in registry:
        return
    hint = suggestion_hint(ref.name, registry.available())
    problems.append(
        f"unknown {registry.kind} {ref.name!r} (as {role}){hint} "
        f"— available({family!r}) lists the registered names"
    )


def validate_spec(spec: ScenarioSpec) -> List[str]:
    """Check every component reference of ``spec`` against its registry.

    Returns a list of problem messages ([] when the spec is well-formed);
    unknown names come with near-miss suggestions so a typo like
    ``"dynamic-colorng"`` points at ``"dynamic-coloring"`` instead of failing
    with a lookup error deep inside the executor.
    """
    problems: List[str] = []
    _check_component(TOPOLOGIES, "topologies", spec.topology, "topology", problems)
    _check_component(ADVERSARIES, "adversaries", spec.adversary, "adversary", problems)
    _check_component(ALGORITHMS, "algorithms", spec.algorithm, "algorithm", problems)
    _check_component(WAKEUPS, "wakeups", spec.wakeup, "wakeup", problems)
    for index, metric in enumerate(spec.metrics):
        _check_component(METRICS, "metrics", metric, f"metrics[{index}]", problems)
    _check_component(PROBES, "probes", spec.probe, "probe", problems)
    _check_component(STOP_CONDITIONS, "stop_conditions", spec.stop, "stop condition", problems)
    return problems


def _validate_execution(config: Config, where: str) -> List[str]:
    """Problems with a config's optional ``"execution"`` block."""
    if config.execution is None:
        return []
    from repro.exec.policy import policy_from_mapping

    try:
        policy_from_mapping(config.execution, where="'execution' block")
    except ConfigurationError as exc:
        return [f"{where}{exc}"]
    return []


def _validate_verification(config: Config, where: str) -> List[str]:
    """Problems with a config's optional ``"verification"`` block."""
    if config.verification is None:
        return []
    from repro.verify.policy import verification_from_mapping

    try:
        verification_from_mapping(config.verification, where="'verification' block")
    except ConfigurationError as exc:
        return [f"{where}{exc}"]
    return []


def _validate_telemetry(config: Config, where: str) -> List[str]:
    """Problems with a config's optional ``"telemetry"`` block."""
    if config.telemetry is None:
        return []
    from repro.obs.trace import telemetry_from_mapping

    try:
        telemetry_from_mapping(config.telemetry, where="'telemetry' block")
    except ConfigurationError as exc:
        return [f"{where}{exc}"]
    return []


def validate_config(config: Config) -> List[str]:
    """Validate one loaded config; returns problem messages ([] when clean)."""
    where = f"{config.path}: " if config.path is not None else ""
    if isinstance(config, ScenarioConfig):
        problems = [where + problem for problem in validate_spec(config.spec)]
        problems.extend(_validate_execution(config, where))
        problems.extend(_validate_verification(config, where))
        problems.extend(_validate_telemetry(config, where))
        return problems
    if isinstance(config, SweepConfig):
        problems = [where + problem for problem in validate_spec(config.spec)]
        problems.extend(_validate_execution(config, where))
        problems.extend(_validate_verification(config, where))
        problems.extend(_validate_telemetry(config, where))
        for axis, values in config.over.items():
            if not values:
                problems.append(f"{where}sweep axis {axis!r} has no values")
                continue
            try:
                point = config.spec.with_overrides({axis: values[0]})
            except ConfigurationError as exc:
                problems.append(f"{where}sweep axis {axis!r} is not applicable: {exc}")
                continue
            for problem in validate_spec(point):
                message = f"{where}sweep axis {axis!r}: {problem}"
                if message not in problems:
                    problems.append(message)
        return problems
    if isinstance(config, ExperimentConfig):
        from repro.analysis.experiments.catalog import EXPERIMENTS, experiment_defaults

        problems = _validate_execution(config, where)
        problems.extend(_validate_verification(config, where))
        problems.extend(_validate_telemetry(config, where))
        if config.experiment not in EXPERIMENTS:
            hint = suggestion_hint(config.experiment, EXPERIMENTS)
            problems.append(
                f"{where}unknown experiment {config.experiment!r}{hint} "
                f"(available: {', '.join(sorted(EXPERIMENTS))})"
            )
            return problems
        known = experiment_defaults(config.experiment)
        for scale in ("full", "bench", "smoke"):
            for name in config.params_for(scale):
                if name not in known:
                    hint = suggestion_hint(name, known)
                    message = (
                        f"{where}experiment {config.experiment!r} has no parameter "
                        f"{name!r}{hint} (accepted: {', '.join(sorted(known))})"
                    )
                    if message not in problems:
                        problems.append(message)
        return problems
    raise ConfigurationError(f"cannot validate {config!r}")
