"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the *data* form of one experiment configuration:
which topology family to generate, which adversary animates it, which
algorithm runs on it, how nodes wake up, how long to simulate, which seeds to
replicate over, and which metrics to extract from the trace.  All components
are referenced by registry name (see :mod:`repro.scenarios.registry`), so a
spec is plain JSON-able data — it can live in a config file, be swept over,
or be shipped to a worker process.

Durations (``rounds``, wake-up spreads, warm-ups, …) may be given either as
plain integers or as small arithmetic expressions over the scenario's derived
quantities — ``"6*T1"``, ``"20*log2n + 10"`` — evaluated per scenario by
:func:`resolve_expression`.  This keeps "run for six windows" declarative
instead of forcing callers to precompute ``default_window(n)`` themselves.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["ComponentSpec", "ScenarioSpec", "component", "resolve_expression"]


# ---------------------------------------------------------------------------
# duration expressions
# ---------------------------------------------------------------------------

#: Characters allowed in a duration expression once variable names are removed.
_EXPR_SAFE = re.compile(r"^[\d\s+\-*/().]*$")


def resolve_expression(value: Union[int, float, str], **names: float) -> int:
    """Resolve an integer duration that may be an arithmetic expression.

    ``value`` is either a number (returned as ``int``) or a string expression
    over the supplied variables, e.g. ``resolve_expression("6*T1 + 2", T1=24)``.
    Only the variables passed as keyword arguments plus literals and
    ``+ - * / ( )`` are allowed.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"expected an integer or expression, got {value!r}")
    if isinstance(value, (int, float)):
        return int(value)
    if not isinstance(value, str):
        raise ConfigurationError(f"expected an integer or expression, got {value!r}")
    stripped = value
    for name in sorted(names, key=len, reverse=True):
        stripped = stripped.replace(name, "")
    if not _EXPR_SAFE.match(stripped):
        raise ConfigurationError(
            f"illegal duration expression {value!r}; allowed variables: {sorted(names)}"
        )
    try:
        resolved = eval(value, {"__builtins__": {}}, dict(names))  # noqa: S307 - sanitised above
    except Exception as exc:
        raise ConfigurationError(f"cannot evaluate duration expression {value!r}: {exc}") from exc
    return int(resolved)


def standard_variables(*, n: int, T1: int, **extra: float) -> Dict[str, float]:
    """The variable set duration expressions are evaluated against."""
    return {"n": float(n), "T1": float(T1), "log2n": math.log2(max(n, 2)), **extra}


# ---------------------------------------------------------------------------
# component references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentSpec:
    """A registry name plus keyword parameters for its factory."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(f"component name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def coerce(cls, value: Union["ComponentSpec", str, Mapping[str, Any]]) -> "ComponentSpec":
        """Accept a ComponentSpec, a bare name, or a ``{"name", "params"}`` mapping."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "params"}
            if unknown:
                raise ConfigurationError(f"unexpected component keys {sorted(unknown)} in {value!r}")
            if "name" not in value:
                raise ConfigurationError(f"component spec {value!r} is missing its 'name'")
            return cls(value["name"], dict(value.get("params", {})))
        raise ConfigurationError(f"cannot interpret {value!r} as a component spec")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComponentSpec):
            return NotImplemented
        return self.name == other.name and dict(self.params) == dict(other.params)

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted((k, repr(v)) for k, v in self.params.items()))))


def component(name: str, **params: Any) -> ComponentSpec:
    """Ergonomic constructor: ``component("flip-churn", flip_prob=0.05)``."""
    return ComponentSpec(name, params)


def _coerce_optional(value: Any) -> Optional[ComponentSpec]:
    return None if value is None else ComponentSpec.coerce(value)


# ---------------------------------------------------------------------------
# the scenario specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-declarative experiment configuration.

    Parameters
    ----------
    n:
        Upper bound on the number of nodes (global knowledge).
    algorithm / adversary / topology / wakeup:
        Component references (registry name + params).  ``wakeup=None`` means
        every node is awake from round 1.
    rounds:
        Simulation length — an ``int`` or an expression over ``T1`` /
        ``log2n`` / ``n`` (e.g. ``"6*T1"``).
    seeds:
        The replication seeds; every seed is one independent run.
    metrics:
        Post-run extractors applied to the trace; their key/value results are
        merged (in order) into the per-seed row.
    probe:
        Optional per-round observer (for measurements that need to watch the
        simulation step by step); its ``finish()`` row is merged last.
    stop:
        Optional early-stop condition evaluated after every round.
    window:
        Explicit ``T1`` override; defaults to
        :func:`repro.core.windows.default_window` of ``n``.
    window_scale:
        Alternative to ``window``: scale the default ``Θ(log n)`` window via
        :func:`repro.core.windows.window_for` (e.g. ``0.5`` for stress tests,
        ``2.0`` for extra slack).  Mutually exclusive with ``window``.
    expose_state_to_adversary:
        Forwarded to the simulator (adaptive adversaries may inspect state).
    delivery:
        Optional delivery-path override forwarded to the simulator:
        ``"auto"`` (the default when ``None``), ``"full"``,
        ``"incremental"`` or ``"kernel"``.  ``"kernel"`` raises at
        simulator construction when the algorithm has no array kernel.
    trace_retention:
        Optional trace memory knob forwarded to the simulator: ``"full"``
        (the default when ``None``) keeps every round's complete output
        vector; ``"stats"`` keeps only O(#changes) per-round updates on the
        array kernel path and reconstructs full vectors lazily — derived
        metrics are byte-identical, memory stays bounded at 10^5–10^6 nodes
        (see :class:`repro.runtime.trace.ExecutionTrace`).  Omitted from
        :meth:`to_dict` when ``None`` so existing store keys are unchanged.
    name:
        Free-form label copied into results.
    """

    n: int
    algorithm: ComponentSpec
    adversary: ComponentSpec = field(default_factory=lambda: ComponentSpec("static"))
    topology: ComponentSpec = field(default_factory=lambda: ComponentSpec("gnp_sparse"))
    rounds: Union[int, str] = "4*T1"
    seeds: Tuple[int, ...] = (0, 1, 2)
    wakeup: Optional[ComponentSpec] = None
    metrics: Tuple[ComponentSpec, ...] = ()
    probe: Optional[ComponentSpec] = None
    stop: Optional[ComponentSpec] = None
    window: Optional[int] = None
    window_scale: Optional[float] = None
    expose_state_to_adversary: bool = False
    delivery: Optional[str] = None
    trace_retention: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or self.n < 1:
            raise ConfigurationError(f"n must be a positive integer, got {self.n!r}")
        object.__setattr__(self, "algorithm", ComponentSpec.coerce(self.algorithm))
        object.__setattr__(self, "adversary", ComponentSpec.coerce(self.adversary))
        object.__setattr__(self, "topology", ComponentSpec.coerce(self.topology))
        object.__setattr__(self, "wakeup", _coerce_optional(self.wakeup))
        object.__setattr__(self, "probe", _coerce_optional(self.probe))
        object.__setattr__(self, "stop", _coerce_optional(self.stop))
        metrics = self.metrics
        if isinstance(metrics, (str, Mapping)) or isinstance(metrics, ComponentSpec):
            metrics = (metrics,)
        object.__setattr__(self, "metrics", tuple(ComponentSpec.coerce(m) for m in metrics))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ConfigurationError("a scenario needs at least one seed")
        object.__setattr__(self, "seeds", seeds)
        if isinstance(self.rounds, bool) or not isinstance(self.rounds, (int, str)):
            raise ConfigurationError(f"rounds must be an int or expression, got {self.rounds!r}")
        if isinstance(self.rounds, int) and self.rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {self.rounds}")
        if self.window is not None and (not isinstance(self.window, int) or self.window < 1):
            raise ConfigurationError(f"window must be a positive integer, got {self.window!r}")
        if self.window_scale is not None:
            if isinstance(self.window_scale, bool) or not isinstance(
                self.window_scale, (int, float)
            ):
                raise ConfigurationError(
                    f"window_scale must be a number, got {self.window_scale!r}"
                )
            if self.window_scale <= 0:
                raise ConfigurationError(
                    f"window_scale must be > 0, got {self.window_scale!r}"
                )
            object.__setattr__(self, "window_scale", float(self.window_scale))
            if self.window is not None:
                raise ConfigurationError("pass either 'window' or 'window_scale', not both")
        # Kept in sync with repro.runtime.simulator._DELIVERY_MODES (specs
        # must stay importable without pulling in the runtime).
        if self.delivery is not None and self.delivery not in (
            "auto",
            "full",
            "incremental",
            "kernel",
        ):
            raise ConfigurationError(
                "delivery must be one of ('auto', 'full', 'incremental', 'kernel'), "
                f"got {self.delivery!r}"
            )
        # Kept in sync with repro.runtime.trace.RETENTION_MODES (same
        # importability constraint as the delivery modes above).
        if self.trace_retention is not None and self.trace_retention not in ("full", "stats"):
            raise ConfigurationError(
                "trace_retention must be one of ('full', 'stats'), "
                f"got {self.trace_retention!r}"
            )

    # -- labels & derived values -------------------------------------------------

    @property
    def label(self) -> str:
        """The display label of this scenario (name, or the algorithm's name)."""
        return self.name or self.algorithm.name

    def resolved_window(self) -> int:
        """The window ``T1`` this scenario runs with."""
        from repro.core.windows import default_window, window_for

        if self.window is not None:
            return self.window
        if self.window_scale is not None:
            return window_for(self.n, self.window_scale)
        return default_window(self.n)

    def resolved_rounds(self) -> int:
        """The concrete number of rounds (duration expressions evaluated)."""
        rounds = resolve_expression(
            self.rounds, **standard_variables(n=self.n, T1=self.resolved_window())
        )
        if rounds < 0:
            raise ConfigurationError(f"rounds expression {self.rounds!r} resolved to {rounds}")
        return rounds

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_dict` reconstructs exactly."""
        def comp(value: Optional[ComponentSpec]):
            return None if value is None else value.to_dict()

        data = {
            "n": self.n,
            "algorithm": comp(self.algorithm),
            "adversary": comp(self.adversary),
            "topology": comp(self.topology),
            "rounds": self.rounds,
            "seeds": list(self.seeds),
            "wakeup": comp(self.wakeup),
            "metrics": [m.to_dict() for m in self.metrics],
            "probe": comp(self.probe),
            "stop": comp(self.stop),
            "window": self.window,
            "window_scale": self.window_scale,
            "expose_state_to_adversary": self.expose_state_to_adversary,
            "delivery": self.delivery,
            "name": self.name,
        }
        # Omitted at its None default: the dict doubles as the result-store
        # content key, and a knob that cannot change any stored row must not
        # re-key (or drift-fail) every config committed before it existed.
        if self.trace_retention is not None:
            data["trace_retention"] = self.trace_retention
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (also accepts hand-written JSON configs)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown ScenarioSpec keys {sorted(unknown)}")
        if "n" not in data or "algorithm" not in data:
            raise ConfigurationError("a scenario spec needs at least 'n' and 'algorithm'")
        kwargs: Dict[str, Any] = dict(data)
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(kwargs["seeds"])
        if "metrics" in kwargs and kwargs["metrics"] is not None:
            kwargs["metrics"] = tuple(kwargs["metrics"])
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialise to JSON (``sort_keys=True`` for stable diffs)."""
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from its JSON form."""
        return cls.from_dict(json.loads(text))

    # -- derivation --------------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Return a copy with dotted-path overrides applied.

        Paths address the :meth:`to_dict` structure: ``{"n": 64}``,
        ``{"adversary.params.flip_prob": 0.05}``, ``{"algorithm.name": "dmis"}``.
        This is the primitive :func:`repro.scenarios.executor.sweep` uses to
        expand one spec into a grid.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            target: Any = data
            for part in parts[:-1]:
                if not isinstance(target, dict):
                    raise ConfigurationError(f"cannot descend into {path!r} at {part!r}")
                if target.get(part) is None:
                    target[part] = {}
                target = target[part]
            if not isinstance(target, dict):
                raise ConfigurationError(f"cannot apply override {path!r}")
            target[parts[-1]] = value
        return type(self).from_dict(data)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Field-level :func:`dataclasses.replace` convenience."""
        return replace(self, **changes)
