"""Scenario execution: seed replication, sweeps, and the batch engine.

:func:`run_scenario` turns one :class:`~repro.scenarios.spec.ScenarioSpec`
into per-seed result rows; :func:`sweep` expands a spec into a grid of
scenarios via dotted-path overrides and runs them all.  Execution is
delegated to the :mod:`repro.exec` subsystem: the independent work units —
one ``(scenario point, seed)`` pair each — are dispatched in chunks through
a pluggable backend (``serial`` / ``process`` / ``thread`` /
``local-cluster``) selected by an :class:`~repro.exec.policy.ExecutionPolicy`.
``parallel=True`` remains the ergonomic switch for "fan out over cores"
(the ``process`` backend); the ``execution=`` parameter — or an ambient
policy installed with :func:`repro.exec.use_policy`, which is how the CLI's
``--backend``/``--chunk-size``/``--resume`` flags reach the experiment
entry points — takes full control.

Determinism is a hard requirement: a work unit is a pure function of
``(spec, seed)`` (every random stream derives from the seed through
:class:`~repro.utils.rng.RngFactory`), units are dispatched and re-assembled
in a fixed order, and aggregation folds rows in seed order.  Every backend
therefore produces *identical* rows to the serial path — byte for byte —
and pooled backends fall back to serial execution automatically if worker
processes cannot be spawned (restricted environments, non-picklable
third-party components).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.utils.rng import RngFactory
from repro.analysis.sweep import Replication, aggregate_rows
from repro.runtime.simulator import Simulator, delivery_mode
from repro.verify.policy import (
    VERIFY_INCREMENTAL_ENV,
    VERIFY_KERNEL_ENV,
    VerificationPolicy,
    active_verification,
)
from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    PROBES,
    STOP_CONDITIONS,
    TOPOLOGIES,
    WAKEUPS,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ScenarioContext",
    "ScenarioResult",
    "VERIFY_INCREMENTAL_ENV",
    "VERIFY_KERNEL_ENV",
    "expand_sweep",
    "run_scenario",
    "run_scenario_seed",
    "sweep",
]

Row = Dict[str, float]

# VERIFY_INCREMENTAL_ENV / VERIFY_KERNEL_ENV are re-exported for backward
# compatibility: the in-run verification gate is now configured through
# :class:`repro.verify.policy.VerificationPolicy` (the ``--verify`` CLI flag,
# a config's ``"verification"`` block, or ``REPRO_VERIFY``); the two historic
# env vars keep working as deprecated aliases resolved by
# :func:`repro.verify.policy.active_verification`.


@dataclass
class ScenarioContext:
    """Everything one seed-replication of a scenario has in scope.

    Component factories receive the context while it is being populated (the
    base topology exists before the adversary is built, the adversary before
    the algorithm); metric extractors and probes see the fully populated
    context including the finished ``trace``.
    """

    spec: ScenarioSpec
    seed: int
    n: int
    T1: int
    rounds: int
    rng_factory: RngFactory
    base: Any = None
    wakeup: Any = None
    adversary: Any = None
    algorithm: Any = None
    trace: Any = None

    def stream(self, *names: object) -> np.random.Generator:
        """A named random stream derived from this replication's seed."""
        return self.rng_factory.stream(*names)

    def resolve(self, value, **extra: float) -> int:
        """Resolve a duration parameter (int or ``"2*T1"``-style expression)."""
        from repro.scenarios.spec import resolve_expression, standard_variables

        return resolve_expression(value, **standard_variables(n=self.n, T1=self.T1, **extra))


def _build_context(spec: ScenarioSpec, seed: int) -> ScenarioContext:
    n = spec.n
    ctx = ScenarioContext(
        spec=spec,
        seed=int(seed),
        n=n,
        T1=spec.resolved_window(),
        rounds=spec.resolved_rounds(),
        rng_factory=RngFactory(int(seed)),
    )
    # Built through the per-process topology cache: repeated (family, params,
    # n, seed) tuples — adversary/algorithm grid points, resumed sweeps —
    # reuse the immutable Topology instead of regenerating it (the cache
    # spawns the identical ("topology", name, n) stream on a miss, so hits
    # and misses are byte-indistinguishable).
    from repro.exec.cache import cached_base_topology

    topology = spec.topology
    ctx.base = cached_base_topology(topology.name, topology.params, n, ctx.seed)
    if spec.wakeup is not None:
        ctx.wakeup = WAKEUPS.get(spec.wakeup.name)(ctx, **spec.wakeup.params)
    ctx.adversary = ADVERSARIES.get(spec.adversary.name)(ctx, **spec.adversary.params)
    ctx.algorithm = ALGORITHMS.get(spec.algorithm.name)(ctx, **spec.algorithm.params)
    return ctx


def _execute_seed(spec: ScenarioSpec, seed: int) -> Tuple[Row, Simulator]:
    """Run one seed-replication and return its metric row plus the simulator.

    Reports per-phase timings (setup / round loop / metric extraction) into
    the ambient :mod:`repro.exec.stats` collector when one is installed —
    that is where ``repro bench``'s timing splits come from.
    """
    from repro.exec.stats import UNIT_METRICS, UNIT_ROUNDS, UNIT_SETUP, timed_phase
    from repro.obs.trace import active_sink

    sink = active_sink()
    if sink is not None:
        sink.emit(
            "unit_begin",
            label=spec.label,
            seed=int(seed),
            algorithm=spec.algorithm.name,
            adversary=spec.adversary.name,
        )
    with timed_phase(UNIT_SETUP):
        ctx = _build_context(spec, seed)
        stop_when = None
        if spec.stop is not None:
            stop_when = STOP_CONDITIONS.get(spec.stop.name)(ctx, **spec.stop.params)
        sim = Simulator(
            n=ctx.n,
            algorithm=ctx.algorithm,
            adversary=ctx.adversary,
            seed=ctx.seed,
            delivery=spec.delivery or "auto",
            trace_retention=spec.trace_retention or "full",
            expose_state_to_adversary=spec.expose_state_to_adversary,
            # With a probe, the round loop below owns the stop check — passing
            # the predicate to the simulator too would evaluate it twice a round.
            stop_when=None if spec.probe is not None else stop_when,
        )
        probe = None
        if spec.probe is not None:
            probe = PROBES.get(spec.probe.name)(ctx, **spec.probe.params)
    with timed_phase(UNIT_ROUNDS):
        if probe is not None:
            for _ in range(ctx.rounds):
                sim.run(1)
                if probe.observe(sim):
                    break
                if stop_when is not None and stop_when(sim.trace):
                    break
        else:
            sim.run(ctx.rounds)
    ctx.trace = sim.trace

    row: Row = {}
    with timed_phase(UNIT_METRICS):
        for metric in spec.metrics:
            row.update(METRICS.get(metric.name)(ctx, **metric.params))
        if probe is not None:
            row.update(probe.finish())
    if sink is not None:
        sink.emit(
            "unit_end",
            seed=int(seed),
            rounds=sim.trace.num_rounds,
            delivery=sim.delivery,
        )
    return row, sim


def _comparable_trace_rows(trace) -> List[tuple]:
    """Flatten a trace into the tuples the incremental-verification gate compares."""
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in trace
    ]


def _verify_against_full(spec: ScenarioSpec, seed: int, row: Row, sim: Simulator) -> None:
    """Re-run ``(spec, seed)`` on the full path and demand identical traces."""
    from repro.exec.stats import collect_stats

    path = sim.delivery
    blame = (
        "the algorithm's message_stability='pure' declaration is wrong"
        if path == "incremental"
        else "the array kernel diverges from its reference algorithm"
    )
    # The throwaway collector keeps the verification re-run's phase
    # timings out of the caller's stats — `repro bench` splits must
    # reflect one execution per seed, not the debug double-run.  The spec's
    # own delivery override is dropped: an explicit ``delivery="kernel"``
    # would beat the ambient delivery_mode() and verify against itself.
    # The retention knob is reset too, so a "stats" run is checked against
    # an independently-recorded full-retention reference trace.
    with delivery_mode("full"), collect_stats():
        full_row, full_sim = _execute_seed(
            spec.replace(delivery=None, trace_retention=None), seed
        )
    fast_rows = _comparable_trace_rows(sim.trace)
    full_rows = _comparable_trace_rows(full_sim.trace)
    # Metric rows are compared only for probe-less runs: a probe may
    # legitimately report the *engine's* per-round activity (e.g. the
    # "activity" probe reads the dirty set), which differs between
    # delivery paths by design.  The model-level record — every round's
    # topology, outputs and metrics — must always match.
    rows_comparable = spec.probe is None
    if fast_rows != full_rows or (rows_comparable and row != full_row):
        if len(fast_rows) != len(full_rows):
            raise SimulationError(
                f"{path} delivery simulated {len(fast_rows)} rounds but "
                f"the full path {len(full_rows)} for algorithm {spec.algorithm.name!r} "
                f"(seed {seed}): {blame}"
            )
        for fast, full in zip(fast_rows, full_rows):
            if fast != full:
                raise SimulationError(
                    f"{path} delivery diverged from the full path at round "
                    f"{fast[0]} for algorithm {spec.algorithm.name!r} (seed {seed}): "
                    f"{blame}"
                )
        raise SimulationError(
            f"{path} delivery produced a different metric row than the "
            f"full path for algorithm {spec.algorithm.name!r} (seed {seed}): "
            f"{blame}"
        )


#: (modes, delivery, algorithm) triples already warned about — the loud
#: degradation warning fires once per distinct situation, not once per seed.
_DEGRADED_WARNED: Set[Tuple[Tuple[str, ...], str, str]] = set()


def _warn_degraded(policy: VerificationPolicy, spec: ScenarioSpec, sim: Simulator) -> None:
    """A verified path was requested but the seed ran elsewhere — say so loudly."""
    key = (policy.modes(), sim.delivery, spec.algorithm.name)
    if key in _DEGRADED_WARNED:
        return
    _DEGRADED_WARNED.add(key)
    wanted = " and ".join(repr(mode) for mode in policy.modes())
    warnings.warn(
        f"verification of the {wanted} delivery path was requested, but this "
        f"seed of algorithm {spec.algorithm.name!r} executed on the "
        f"{sim.delivery!r} path (not kernel-eligible, or delivery pinned "
        f"elsewhere) — the requested gate did not run",
        UserWarning,
        stacklevel=3,
    )


def run_scenario_seed(spec: ScenarioSpec, seed: int) -> Row:
    """Run one seed-replication of ``spec`` and return its metric row.

    This is the deterministic work unit of the batch executor: the same
    ``(spec, seed)`` pair always yields the same row, in any process.

    When the active :class:`~repro.verify.policy.VerificationPolicy` (the
    ``--verify`` CLI flag, a config's ``"verification"`` block, the
    ``REPRO_VERIFY`` environment variable, or the deprecated
    ``REPRO_VERIFY_INCREMENTAL``/``REPRO_VERIFY_KERNEL`` aliases) covers the
    delivery path this seed ran on, the seed is re-executed on the full path
    and the two traces must match row for row — the gate that catches an
    algorithm declaring a ``"pure"`` contract it does not honour, or a
    vectorised kernel drifting from its reference.  Requesting a path the
    seed did not run on warns loudly instead of silently passing.
    """
    row, sim = _execute_seed(spec, seed)
    policy = active_verification()
    if policy.enabled:
        if policy.wants(sim.delivery):
            _verify_against_full(spec, seed, row, sim)
        else:
            _warn_degraded(policy, spec, sim)
    return row


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioResult:
    """The per-seed rows of one scenario (plus the overrides that produced it)."""

    spec: ScenarioSpec
    rows: Tuple[Row, ...]
    overrides: Mapping[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The scenario's display label."""
        return self.spec.label

    def replication(self) -> Replication:
        """The rows as an :class:`~repro.analysis.sweep.Replication`."""
        return Replication(label=self.label, rows=self.rows)

    def aggregate(
        self,
        *,
        mean_keys: Sequence[str] = (),
        std_keys: Sequence[str] = (),
        max_keys: Sequence[str] = (),
        extra: Optional[Mapping[str, float]] = None,
    ) -> Row:
        """Collapse the per-seed rows into one aggregated row (means/stds/maxima)."""
        return aggregate_rows(
            self.replication(),
            mean_keys=mean_keys,
            std_keys=std_keys,
            max_keys=max_keys,
            extra=extra,
        )

    def mean(self, key: str) -> float:
        """Mean of ``key`` over the seed rows (NaNs skipped)."""
        return self.replication().mean(key)

    def max(self, key: str) -> float:
        """Maximum of ``key`` over the seed rows (NaNs skipped)."""
        return self.replication().max(key)


# ---------------------------------------------------------------------------
# the batch engine (dispatch lives in repro.exec)
# ---------------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    execution: Optional[Any] = None,
) -> ScenarioResult:
    """Run every seed of ``spec`` and collect the per-seed rows.

    With ``parallel=True`` the seed replications run in worker processes;
    ``execution`` (an :class:`~repro.exec.policy.ExecutionPolicy`, a backend
    name, or an ``"execution"`` config mapping) selects the backend, chunking
    and checkpointing explicitly.  Every execution mode produces rows
    identical to the serial run (see module docstring).
    """
    from repro.exec import resolve_policy, run_units, units_for_spec

    units = units_for_spec(spec)
    policy = resolve_policy(parallel=parallel, max_workers=max_workers, execution=execution)
    rows = run_units(units, policy, label=spec.label)
    return ScenarioResult(spec=spec, rows=tuple(rows))


def expand_sweep(
    spec: ScenarioSpec, over: Mapping[str, Sequence[Any]]
) -> Tuple[List[Tuple[Mapping[str, Any], ScenarioSpec]], List[Any], List[Tuple[int, int]]]:
    """Expand a sweep grid into ``(points, units, bounds)`` without running it.

    ``points`` is one ``(overrides, point spec)`` pair per grid point in
    row-major order of ``over``; ``units`` is the flat work-unit batch of the
    whole sweep (the list whose :func:`~repro.exec.units.batch_key` names the
    sweep journal — which is how ``repro audit``/``repro repair`` match an
    interrupted checkpoint back to its committed config); ``bounds`` are each
    point's ``(start, end)`` slice into the batch.
    """
    from repro.exec import units_for_spec

    if not over:
        raise ConfigurationError("sweep() needs at least one override axis")
    keys = list(over)
    axes = [list(over[key]) for key in keys]
    for key, values in zip(keys, axes):
        if not values:
            raise ConfigurationError(f"sweep axis {key!r} has no values")

    points: List[Tuple[Mapping[str, Any], ScenarioSpec]] = []
    for combo in itertools.product(*axes):
        overrides = dict(zip(keys, combo))
        points.append((overrides, spec.with_overrides(overrides)))

    units: List[Any] = []
    bounds: List[Tuple[int, int]] = []
    for _, point_spec in points:
        start = len(units)
        units.extend(units_for_spec(point_spec))
        bounds.append((start, len(units)))
    return points, units, bounds


def sweep(
    spec: ScenarioSpec,
    over: Mapping[str, Sequence[Any]],
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    execution: Optional[Any] = None,
) -> List[ScenarioResult]:
    """Run the cartesian grid of ``over`` overrides applied to ``spec``.

    ``over`` maps dotted paths into the spec (see
    :meth:`~repro.scenarios.spec.ScenarioSpec.with_overrides`) to value lists::

        sweep(spec, over={
            "n": [64, 128, 256],
            "adversary.params.flip_prob": [0.001, 0.01, 0.1],
        }, parallel=True)

    Returns one :class:`ScenarioResult` per grid point, in row-major order of
    the ``over`` mapping; every point carries the overrides that produced it.
    All ``len(grid) × len(seeds)`` work units run as one batch (one worker
    pool, one sweep journal, one progress line); see :func:`run_scenario` for
    the ``execution`` parameter.
    """
    from repro.exec import resolve_policy, run_units

    points, units, bounds = expand_sweep(spec, over)
    policy = resolve_policy(parallel=parallel, max_workers=max_workers, execution=execution)
    rows = run_units(units, policy, label=spec.label if spec.name else "sweep")
    return [
        ScenarioResult(spec=point_spec, rows=tuple(rows[start:end]), overrides=overrides)
        for (overrides, point_spec), (start, end) in zip(points, bounds)
    ]
