"""Content-addressed, file-backed store for experiment result rows.

Every run of the pipeline (``repro run`` / ``repro sweep`` / ``repro
experiments``) produces *rows* — lists of plain JSON-able dicts — from a
*key* — the plain JSON-able description of the work (a scenario spec, an
experiment id plus its parameters).  The store persists each ``(key, rows)``
pair as one JSON file whose name embeds the SHA-256 hash of the canonical
form of the key::

    results/
      smoke/e01-5f2a9c01d3b4.json          # <label>-<hash12>.json
      experiments/e01-8c1d20aa97fe.json
      scenarios/quickstart-coloring-03ab….json

Three properties follow from content addressing:

* **Idempotence** — rerunning the same key with unchanged code regenerates
  identical rows, so :meth:`ResultsStore.put` leaves the existing file
  byte-for-byte untouched (provenance included).
* **Drift detection** — if the code changes behaviour, the key hashes still
  match but the rows differ; :func:`diff_stores` (surfaced as ``repro
  diff``) reports exactly which labels drifted and how.
* **Reproducibility** — each entry carries the full key (e.g. the spec
  dict), the package version, the git commit and the row schema, so a stored
  table is re-derivable from its own metadata.

Entries compare by *rows*, never by provenance: a fixture regenerated at a
different commit with identical rows is "unchanged".
"""

from __future__ import annotations

import hashlib
import json
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.version import __version__

__all__ = [
    "FORMAT_VERSION",
    "ResultsStore",
    "StoreDiff",
    "StoreEntry",
    "canonical_json",
    "content_key",
    "diff_rows",
]

Row = Dict[str, Any]

#: Bumped whenever the on-disk entry layout changes incompatibly.
FORMAT_VERSION = "repro-store/1"

#: Hex digits of the key hash embedded in an entry's file name.
_HASH_PREFIX_LEN = 12

_SLUG_RE = re.compile(r"[^a-zA-Z0-9._-]+")


def canonical_json(value: Any) -> str:
    """The canonical serialisation content addresses are computed from.

    Compact separators and sorted keys make the result independent of dict
    insertion order; ``ensure_ascii`` makes it independent of locale.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_key(key: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical form of ``key``."""
    return hashlib.sha256(canonical_json(key).encode("ascii")).hexdigest()


def _slug(label: str) -> str:
    slug = _SLUG_RE.sub("-", label).strip("-")
    return slug or "entry"


def _git_sha() -> Optional[str]:
    """Best-effort commit hash of the working tree the run happened in."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _row_schema(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Sorted union of the column names appearing in ``rows``."""
    keys: set = set()
    for row in rows:
        keys.update(row)
    return sorted(keys)


@dataclass(frozen=True)
class StoreEntry:
    """One stored result set: key, provenance, and the rows themselves."""

    kind: str
    label: str
    key: Mapping[str, Any]
    key_hash: str
    rows: Tuple[Row, ...]
    provenance: Mapping[str, Any] = field(default_factory=dict)
    row_schema: Tuple[str, ...] = ()
    path: Optional[Path] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "kind": self.kind,
            "label": self.label,
            "key": dict(self.key),
            "key_hash": self.key_hash,
            "provenance": dict(self.provenance),
            "row_schema": list(self.row_schema),
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, path: Optional[Path] = None) -> "StoreEntry":
        if data.get("format") != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported store entry format {data.get('format')!r} in {path or data!r}; "
                f"expected {FORMAT_VERSION!r}"
            )
        return cls(
            kind=data["kind"],
            label=data["label"],
            key=dict(data["key"]),
            key_hash=data["key_hash"],
            rows=tuple(dict(row) for row in data["rows"]),
            provenance=dict(data.get("provenance", {})),
            row_schema=tuple(data.get("row_schema", ())),
            path=path,
        )


def diff_rows(expected: Sequence[Row], actual: Sequence[Row]) -> List[str]:
    """Human-readable differences between two row lists ([] when identical).

    Comparison happens on the canonical JSON form, so ``nan == nan`` and
    ``1 == 1.0`` behave the way stored fixtures need them to.
    """
    problems: List[str] = []
    if len(expected) != len(actual):
        problems.append(f"row count changed: {len(expected)} -> {len(actual)}")
    schema_a, schema_b = _row_schema(expected), _row_schema(actual)
    if schema_a != schema_b:
        gone = sorted(set(schema_a) - set(schema_b))
        new = sorted(set(schema_b) - set(schema_a))
        if gone:
            problems.append(f"columns removed: {gone}")
        if new:
            problems.append(f"columns added: {new}")
    for index, (row_a, row_b) in enumerate(zip(expected, actual)):
        if canonical_json(row_a) == canonical_json(row_b):
            continue
        cells = [
            f"{column}: {row_a.get(column)!r} -> {row_b.get(column)!r}"
            for column in sorted(set(row_a) | set(row_b))
            if canonical_json(row_a.get(column)) != canonical_json(row_b.get(column))
        ]
        problems.append(f"row {index} changed ({'; '.join(cells)})")
    return problems


@dataclass
class StoreDiff:
    """The outcome of comparing two stores (or a store against fresh rows)."""

    missing: List[str] = field(default_factory=list)
    extra: List[str] = field(default_factory=list)
    changed: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not (self.missing or self.extra or self.changed)

    def describe(self) -> str:
        if self.clean:
            return "stores match"
        lines: List[str] = []
        for name in self.missing:
            lines.append(f"missing from the second store: {name}")
        for name in self.extra:
            lines.append(f"only in the second store: {name}")
        for name, problems in sorted(self.changed.items()):
            lines.append(f"{name}: rows differ")
            lines.extend(f"  - {problem}" for problem in problems)
        return "\n".join(lines)


class ResultsStore:
    """A directory of content-addressed result entries, grouped by kind."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # -- paths -----------------------------------------------------------------

    def entry_path(self, kind: str, label: str, key: Mapping[str, Any]) -> Path:
        """Where the entry for ``key`` lives (exists or not)."""
        key_hash = content_key(key)
        return self.root / kind / f"{_slug(label)}-{key_hash[:_HASH_PREFIX_LEN]}.json"

    # -- writing ---------------------------------------------------------------

    def put(
        self,
        kind: str,
        label: str,
        key: Mapping[str, Any],
        rows: Sequence[Row],
        *,
        extra_provenance: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[StoreEntry, str]:
        """Persist ``rows`` under ``key``; returns ``(entry, status)``.

        ``status`` is ``"unchanged"`` when an entry for the same key already
        holds identical rows (the file is left byte-for-byte untouched — this
        is what makes reruns idempotent), ``"updated"`` when the rows drifted
        and the entry was rewritten, and ``"created"`` otherwise.

        ``extra_provenance`` (e.g. a run's telemetry block) is merged into
        the entry's provenance.  Provenance never participates in identity:
        an "unchanged" entry keeps its original provenance untouched.
        """
        key_hash = content_key(key)
        path = self.entry_path(kind, label, key)
        status = "created"
        if path.exists():
            try:
                existing = self.load(path)
            except ConfigurationError:
                # A truncated/corrupt entry (e.g. an interrupted earlier run)
                # must not wedge the key forever — rewrite it.
                status = "updated"
            else:
                if canonical_json([dict(r) for r in existing.rows]) == canonical_json(
                    [dict(r) for r in rows]
                ):
                    return existing, "unchanged"
                status = "updated"
        provenance: Dict[str, Any] = {"repro_version": __version__, "git_sha": _git_sha()}
        if extra_provenance:
            provenance.update(extra_provenance)
        entry = StoreEntry(
            kind=kind,
            label=label,
            key=dict(key),
            key_hash=key_hash,
            rows=tuple(dict(row) for row in rows),
            provenance=provenance,
            row_schema=tuple(_row_schema(rows)),
            path=path,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a crash mid-write never leaves a torn entry.
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(
            json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        scratch.replace(path)
        return entry, status

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def load(path: Path | str) -> StoreEntry:
        """Load one entry file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read store entry {path}: {exc}") from exc
        return StoreEntry.from_dict(data, path=path)

    def get(self, kind: str, label: str, key: Mapping[str, Any]) -> Optional[StoreEntry]:
        """The stored entry for ``key``, or ``None``."""
        path = self.entry_path(kind, label, key)
        return self.load(path) if path.exists() else None

    def entries(self, kind: Optional[str] = None) -> Iterator[StoreEntry]:
        """All entries in the store (or in one kind), in file-name order."""
        if not self.root.is_dir():
            return
        kinds = [kind] if kind is not None else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )
        for sub in kinds:
            directory = self.root / sub
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                yield self.load(path)

    # -- comparison ------------------------------------------------------------

    def diff(self, other: "ResultsStore", *, kind: Optional[str] = None) -> StoreDiff:
        """Compare this store (the reference) against ``other``."""
        return diff_stores(self, other, kind=kind)


def _index(store: ResultsStore, kind: Optional[str]) -> Dict[str, StoreEntry]:
    """Entries keyed by display identity (kind/label, hash-suffixed on clashes)."""
    by_name: Dict[str, StoreEntry] = {}
    for entry in store.entries(kind):
        name = f"{entry.kind}/{entry.label}"
        if name in by_name:
            clash = by_name.pop(name)
            by_name[f"{name}-{clash.key_hash[:_HASH_PREFIX_LEN]}"] = clash
            name = f"{name}-{entry.key_hash[:_HASH_PREFIX_LEN]}"
        by_name[name] = entry
    return by_name


def diff_stores(
    reference: ResultsStore, candidate: ResultsStore, *, kind: Optional[str] = None
) -> StoreDiff:
    """Compare two stores entry by entry (matched by kind + label).

    An entry whose key changed (e.g. its config was edited) *and* whose rows
    changed reports both facts; provenance differences are ignored.
    """
    ref, cand = _index(reference, kind), _index(candidate, kind)
    diff = StoreDiff()
    diff.missing = sorted(set(ref) - set(cand))
    diff.extra = sorted(set(cand) - set(ref))
    for name in sorted(set(ref) & set(cand)):
        a, b = ref[name], cand[name]
        problems: List[str] = []
        if a.key_hash != b.key_hash:
            problems.append(f"key changed: {a.key_hash[:12]} -> {b.key_hash[:12]}")
        problems.extend(diff_rows(list(a.rows), list(b.rows)))
        if problems:
            diff.changed[name] = problems
    return diff
