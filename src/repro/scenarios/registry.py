"""String-keyed component registries for the declarative scenario API.

A :class:`Registry` maps short stable names ("flip-churn", "dynamic-coloring",
"gnp_sparse", …) to component *factories*.  Scenario specifications refer to
components exclusively by these names, which is what makes a
:class:`~repro.scenarios.spec.ScenarioSpec` pure data: it survives JSON
round-trips, crosses process boundaries unharmed (the parallel executor
rebuilds every component inside the worker), and new components become
available to every experiment the moment they are registered.

Seven registries cover the moving parts of a simulation::

    TOPOLOGIES       (n, rng, **params)        -> Topology
    ADVERSARIES      (ctx, **params)           -> Adversary
    ALGORITHMS       (ctx, **params)           -> DistributedAlgorithm
    WAKEUPS          (ctx, **params)           -> WakeupSchedule
    METRICS          (ctx, **params)           -> Dict[str, float]   (post-run)
    PROBES           (ctx, **params)           -> probe object        (per-round)
    STOP_CONDITIONS  (ctx, **params)           -> (trace) -> bool

where ``ctx`` is the per-seed :class:`~repro.scenarios.executor.ScenarioContext`.

Registering a new component is one decorator::

    from repro.scenarios import ADVERSARIES

    @ADVERSARIES.register("my-burst-storm")
    def _build(ctx, *, burst_prob=0.1, drop_fraction=0.5):
        ...

The built-in components are registered in
:mod:`repro.scenarios.components`; :func:`available` lists everything.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "suggestion_hint",
    "TOPOLOGIES",
    "ADVERSARIES",
    "ALGORITHMS",
    "WAKEUPS",
    "METRICS",
    "PROBES",
    "STOP_CONDITIONS",
    "REGISTRIES",
    "available",
]

T = TypeVar("T")


def suggestion_hint(name: object, candidates) -> str:
    """A ``"; did you mean …?"`` suffix for unknown-name errors ("" if no match).

    The single source of truth for near-miss suggestions: registry lookups,
    config validation and the experiment catalog all build their messages
    through this helper.
    """
    suggestions = difflib.get_close_matches(str(name), list(candidates), n=3, cutoff=0.4)
    return f"; did you mean {', '.join(suggestions)}?" if suggestions else ""


class Registry:
    """A named mapping from string keys to component factories.

    Keys are case-sensitive, must be non-empty strings, and may be registered
    only once (re-registering the same key raises :class:`RegistryError`
    unless ``overwrite=True`` — useful in tests and notebooks).
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, Callable] = {}
        self._docs: Dict[str, str] = {}

    @property
    def kind(self) -> str:
        """Human-readable name of the component family (e.g. ``"adversary"``)."""
        return self._kind

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        overwrite: bool = False,
        doc: Optional[str] = None,
    ):
        """Register ``factory`` under ``name``.

        Usable as a decorator (``@REGISTRY.register("name")``) or called
        directly (``REGISTRY.register("name", factory)``); returns the factory
        either way.  ``doc`` overrides the component description surfaced by
        :meth:`describe` / ``available(docs=True)``; by default the first line
        of the factory's docstring is used.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError(f"{self._kind} registry keys must be non-empty strings, got {name!r}")

        def decorate(target: Callable) -> Callable:
            if target is None or not callable(target):
                raise RegistryError(
                    f"{self._kind} {name!r} must be registered with a callable factory, got {target!r}"
                )
            if name in self._entries and not overwrite:
                raise RegistryError(
                    f"{self._kind} {name!r} is already registered; pass overwrite=True to replace it"
                )
            self._entries[name] = target
            if doc is not None:
                self._docs[name] = doc.strip()
            else:
                docstring = getattr(target, "__doc__", None) or ""
                self._docs[name] = docstring.strip().splitlines()[0] if docstring.strip() else ""
            return target

        if factory is None:
            return decorate
        return decorate(factory)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (no-op if absent); mainly for test isolation."""
        self._entries.pop(name, None)
        self._docs.pop(name, None)

    def set_doc(self, name: str, doc: str) -> None:
        """Replace the one-line description of an already-registered component.

        Used by :mod:`repro.scenarios.components` to enrich docs with
        metadata known only after registration (e.g. an algorithm's declared
        delivery contract).
        """
        if name not in self._entries:
            raise RegistryError(
                f"unknown {self._kind} {name!r}{self._hint(name)}; "
                f"available: {list(self.available())}"
            )
        self._docs[name] = doc.strip()

    def get(self, name: str) -> Callable:
        """Look up the factory registered under ``name``.

        Unknown names raise :class:`RegistryError` with near-miss suggestions
        (``"did you mean …?"``) alongside the full list of registered names.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self._kind} {name!r}{self._hint(name)}; "
                f"available: {list(self.available())}"
            ) from None

    def _hint(self, name: str) -> str:
        return suggestion_hint(name, self.available())

    def available(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def doc(self, name: str) -> str:
        """The one-line description of component ``name`` ("" if undocumented)."""
        if name not in self._entries:
            raise RegistryError(
                f"unknown {self._kind} {name!r}{self._hint(name)}; "
                f"available: {list(self.available())}"
            )
        return self._docs.get(name, "")

    def describe(self) -> Dict[str, str]:
        """``{name: one-line description}`` for every registered component."""
        return {name: self._docs.get(name, "") for name in self.available()}

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self._kind!r}, {len(self._entries)} entries)"


#: Base-topology families: ``(n, rng, **params) -> Topology``.
TOPOLOGIES = Registry("topology")

#: Graph-sequence adversaries: ``(ctx, **params) -> Adversary``.
ADVERSARIES = Registry("adversary")

#: Distributed algorithms under test: ``(ctx, **params) -> DistributedAlgorithm``.
ALGORITHMS = Registry("algorithm")

#: Wake-up schedules: ``(ctx, **params) -> WakeupSchedule``.
WAKEUPS = Registry("wakeup")

#: Post-run metric extractors: ``(ctx, **params) -> Dict[str, float]``.
METRICS = Registry("metric")

#: Per-round observers: ``(ctx, **params) -> probe`` with ``observe``/``finish``.
PROBES = Registry("probe")

#: Early-stop predicates: ``(ctx, **params) -> Callable[[ExecutionTrace], bool]``.
STOP_CONDITIONS = Registry("stop condition")

#: All registries by family name — the scenario discovery surface.
REGISTRIES: Dict[str, Registry] = {
    "topologies": TOPOLOGIES,
    "adversaries": ADVERSARIES,
    "algorithms": ALGORITHMS,
    "wakeups": WAKEUPS,
    "metrics": METRICS,
    "probes": PROBES,
    "stop_conditions": STOP_CONDITIONS,
}


def _ensure_contracts() -> None:
    """Pull the validation-contract family into ``REGISTRIES`` on demand.

    :mod:`repro.verify.contracts` registers itself under ``"contracts"`` at
    import time; importing it lazily here keeps the discovery surface
    complete without making every scenario import pay for the harness.
    """
    if "contracts" in REGISTRIES:
        return
    try:
        import repro.verify.contracts  # noqa: F401 - imported for its registration side effect
    except ImportError:  # pragma: no cover - harness genuinely unavailable
        pass


def available(kind: Optional[str] = None, *, docs: bool = False):
    """List the registered component names.

    ``available()`` returns ``{family: (name, …)}`` for every registry;
    ``available("adversaries")`` returns just that family's names.  With
    ``docs=True`` every name comes with its one-line description instead:
    ``{family: {name: doc}}`` / ``{name: doc}``.
    """
    _ensure_contracts()
    if kind is None:
        if docs:
            return {family: registry.describe() for family, registry in REGISTRIES.items()}
        return {family: registry.available() for family, registry in REGISTRIES.items()}
    if kind not in REGISTRIES:
        raise RegistryError(f"unknown registry {kind!r}; available: {sorted(REGISTRIES)}")
    return REGISTRIES[kind].describe() if docs else REGISTRIES[kind].available()
