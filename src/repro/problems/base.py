"""Base class for locally checkable distributed graph problems.

A distributed graph problem (Definition 2.2) is a set of pairs ``(G, y)`` of
a graph and an output vector.  The paper restricts attention to problems whose
feasibility can be verified by checking a constant-radius neighbourhood of
every node (the class ``LD(O(1))`` of [FKP11] / LCL problems of [NS93]); MIS
and colouring need radius 1.

:class:`DistributedGraphProblem` captures exactly that: subclasses implement
the per-node LCL condition :meth:`check_node`, and the generic methods derive
full-solution checks, violation listings and partial-assignment handling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Mapping

from repro.types import Assignment, NodeId, Value
from repro.dynamics.topology import Topology

__all__ = ["DistributedGraphProblem"]


class DistributedGraphProblem(ABC):
    """A locally checkable graph problem.

    Subclasses provide :meth:`check_node` — the LCL condition of node ``v``
    given the graph and the (complete in ``v``'s neighbourhood) output values.
    """

    #: Human-readable problem name.
    name: str = "problem"

    #: Radius of the LCL check (all shipped problems use radius 1).
    radius: int = 1

    # -- per-node LCL condition -------------------------------------------------

    @abstractmethod
    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Whether the LCL condition of ``v`` holds under ``assignment``.

        Implementations may assume ``assignment.get(v)`` is not ``⊥`` — the
        callers below only invoke the check on nodes with an output — but must
        tolerate ``⊥`` values on neighbours (treating them as unconstrained or
        constrained, depending on the problem's partial-solution semantics, is
        the job of :mod:`repro.problems.packing_covering`, not of this method;
        here neighbours are expected to carry real values).
        """

    # -- whole-graph checks --------------------------------------------------------

    def value_of(self, assignment: Assignment, v: NodeId) -> Value:
        """The output of ``v`` (``None`` = ⊥ when missing)."""
        return assignment.get(v)

    def is_solution(self, graph: Topology, assignment: Assignment) -> bool:
        """Whether ``assignment`` is a (complete) solution on ``graph``.

        Requires every node of the graph to produce an output ``≠ ⊥`` and the
        LCL condition to hold everywhere (Definition 2.2: "In a solution we
        require that all nodes produce some output").
        """
        for v in graph.nodes:
            if assignment.get(v) is None:
                return False
        return all(self.check_node(graph, assignment, v) for v in graph.nodes)

    def violations(self, graph: Topology, assignment: Assignment) -> List[NodeId]:
        """Nodes whose LCL condition fails (⊥ nodes are reported as violations)."""
        bad: List[NodeId] = []
        for v in graph.nodes:
            if assignment.get(v) is None or not self.check_node(graph, assignment, v):
                bad.append(v)
        return sorted(bad)

    def undecided_nodes(self, graph: Topology, assignment: Assignment) -> List[NodeId]:
        """Nodes of ``graph`` whose output is ⊥."""
        return sorted(v for v in graph.nodes if assignment.get(v) is None)

    # -- misc ------------------------------------------------------------------------

    def describe(self) -> str:
        """One-line description for reports."""
        return f"{self.name} (LCL radius {self.radius})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def restrict_assignment(assignment: Assignment, nodes) -> Mapping[NodeId, Value]:
    """Restrict an assignment to a node set (helper shared by the checkers)."""
    keep = set(nodes)
    return {v: value for v, value in assignment.items() if v in keep}
