"""T-dynamic solutions: the paper's sliding-window feasibility notion.

For a problem pair ``(P, C)`` and window size ``T``, the output vector of
round ``r`` is a *T-dynamic solution* (Section 1.1 / end of Section 3) iff

* it is a solution of the packing problem ``P`` on the intersection graph
  ``G^{T∩}_r``, and
* it is a solution of the covering problem ``C`` on the union graph
  ``G^{T∪}_r``

(both over the node set ``V^{T∩}_r`` — nodes awake for fewer than ``T`` rounds
are unconstrained).  :class:`TDynamicSpec` evaluates this per round on a
recorded trace and aggregates per-run statistics; the checker is entirely
independent of the algorithms (it only looks at recorded topologies and
outputs), so the test-suite can use it as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import Assignment, NodeId, Round
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.problems.packing_covering import ProblemPair

__all__ = ["TDynamicCheckResult", "TDynamicSpec"]


@dataclass(frozen=True)
class TDynamicCheckResult:
    """Outcome of checking one round's output against the T-dynamic definition.

    Attributes
    ----------
    round_index:
        The checked round ``r``.
    constrained_nodes:
        ``|V^{T∩}_r|`` — the number of nodes actually constrained this round.
    packing_violations:
        Nodes violating the packing LCL on the intersection graph (includes
        constrained nodes with ⊥ output).
    covering_violations:
        Nodes violating the covering LCL on the union graph.
    undecided_nodes:
        Constrained nodes whose output is ⊥ (counted separately because a
        ⊥ output violates *both* halves by definition of a solution).
    """

    round_index: Round
    constrained_nodes: int
    packing_violations: Sequence[NodeId] = field(default_factory=tuple)
    covering_violations: Sequence[NodeId] = field(default_factory=tuple)
    undecided_nodes: Sequence[NodeId] = field(default_factory=tuple)

    @property
    def is_valid(self) -> bool:
        """Whether the round's output is a T-dynamic solution."""
        return not self.packing_violations and not self.covering_violations and not self.undecided_nodes

    @property
    def num_violations(self) -> int:
        """Total number of violating nodes (union of the three lists)."""
        return len(set(self.packing_violations) | set(self.covering_violations) | set(self.undecided_nodes))


class TDynamicSpec:
    """A problem pair together with a window size ``T``."""

    def __init__(self, pair: ProblemPair, T: int) -> None:
        if T < 1:
            raise ConfigurationError(f"window size T must be >= 1, got {T}")
        self._pair = pair
        self._T = T

    @property
    def pair(self) -> ProblemPair:
        """The packing/covering pair."""
        return self._pair

    @property
    def T(self) -> int:
        """The window size."""
        return self._T

    # -- per-round check ---------------------------------------------------------

    def check_round(self, graph: DynamicGraph, outputs: Assignment, r: Round) -> TDynamicCheckResult:
        """Check the round-``r`` output recorded in ``graph`` against the definition."""
        intersection = graph.intersection_graph(r, self._T)
        union = graph.union_graph(r, self._T)
        constrained = intersection.nodes
        undecided = tuple(sorted(v for v in constrained if outputs.get(v) is None))
        packing_bad = tuple(
            v
            for v in sorted(constrained)
            if outputs.get(v) is not None
            and not self._pair.packing.check_node(intersection, outputs, v)
        )
        covering_bad = tuple(
            v
            for v in sorted(constrained)
            if outputs.get(v) is not None
            and not self._pair.covering.check_node(union, outputs, v)
        )
        return TDynamicCheckResult(
            round_index=r,
            constrained_nodes=len(constrained),
            packing_violations=packing_bad,
            covering_violations=covering_bad,
            undecided_nodes=undecided,
        )

    # -- whole-trace checks ------------------------------------------------------

    def check_trace(self, trace, *, start_round: int = 1, end_round: Optional[int] = None) -> List[TDynamicCheckResult]:
        """Check every recorded round of an :class:`~repro.runtime.trace.ExecutionTrace`."""
        end = trace.num_rounds if end_round is None else min(end_round, trace.num_rounds)
        results = []
        for r in range(start_round, end + 1):
            results.append(self.check_round(trace.graph, trace.outputs(r), r))
        return results

    def validity_summary(self, trace, *, start_round: int = 1, end_round: Optional[int] = None) -> Dict[str, float]:
        """Aggregate validity statistics over a trace (used by experiments E4/E7/E9)."""
        results = self.check_trace(trace, start_round=start_round, end_round=end_round)
        if not results:
            return {
                "rounds_checked": 0.0,
                "valid_rounds": 0.0,
                "valid_fraction": 1.0,
                "max_violations": 0.0,
                "mean_violations": 0.0,
                "constrained_rounds": 0.0,
            }
        valid = sum(1 for res in results if res.is_valid)
        violations = [res.num_violations for res in results]
        constrained = sum(1 for res in results if res.constrained_nodes > 0)
        return {
            "rounds_checked": float(len(results)),
            "valid_rounds": float(valid),
            "valid_fraction": valid / len(results),
            "max_violations": float(max(violations)),
            "mean_violations": float(sum(violations) / len(violations)),
            "constrained_rounds": float(constrained),
        }

    def describe(self) -> str:
        """One-line description for reports."""
        return f"T-dynamic({self._pair.name}, T={self._T})"
