"""The independent-set problem (the packing half of MIS).

Output encoding (Definition 2.2): ``1`` = in the set, ``0`` = not in the set
(dominated), ``⊥`` = undecided.  The packing property is that no two adjacent
nodes both output ``1``; removing edges can only remove such constraints, so
the problem is packing (Definition 3.1).

Partial packing (Section 5.2): an assignment with ⊥ entries is partial packing
iff no two adjacent nodes are both in the set — undecided nodes can always be
completed to ``0`` (dominated) without violating anyone's condition.
"""

from __future__ import annotations

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.packing_covering import PackingProblem

__all__ = ["IndependentSetProblem"]


class IndependentSetProblem(PackingProblem):
    """``M = {v : y_v = 1}`` must be an independent set."""

    name = "independent-set"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """No neighbour of an MIS node may also be an MIS node."""
        if assignment.get(v) != 1:
            return True
        return all(assignment.get(u) != 1 for u in graph.neighbors(v))

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial packing: identical to the full condition (⊥ neighbours are harmless)."""
        return self.check_node(graph, assignment, v)

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def members(assignment: Assignment) -> frozenset[NodeId]:
        """The set ``M`` encoded by an assignment."""
        return frozenset(v for v, value in assignment.items() if value == 1)
