"""Distributed graph problems: LCL base, packing/covering split, T-dynamic variants.

The paper transfers a static graph problem to the dynamic setting by
decomposing it into a *packing* part (preserved under edge removal, checked on
the intersection graph ``G^{T∩}_r``) and a *covering* part (preserved under
edge insertion, checked on the union graph ``G^{T∪}_r``); see Sections 2–3.

Concrete problems shipped here:

* independent set (packing) + dominating set (covering) = **MIS**;
* proper colouring (packing) + degree+1 colour range (covering) =
  **(degree+1)-colouring**;
* matching validity (covering) + matching maximality (packing) =
  **maximal matching** (the §7.1 recipe exercise);
* vertex-cover coverage (packing) + minimality (covering) =
  **minimal vertex cover** (extra).
"""

from repro.problems.base import DistributedGraphProblem
from repro.problems.packing_covering import CoveringProblem, PackingProblem, ProblemPair
from repro.problems.independent_set import IndependentSetProblem
from repro.problems.dominating_set import DominatingSetProblem
from repro.problems.mis import mis_problem_pair, is_maximal_independent_set
from repro.problems.coloring import (
    DegreePlusOneRangeProblem,
    ProperColoringProblem,
    coloring_problem_pair,
    is_proper_coloring,
)
from repro.problems.matching import (
    MatchingMaximalityProblem,
    MatchingValidityProblem,
    matching_problem_pair,
    UNMATCHED,
)
from repro.problems.vertex_cover import (
    VertexCoverCoverageProblem,
    VertexCoverMinimalityProblem,
    vertex_cover_problem_pair,
)
from repro.problems.dynamic_problem import TDynamicCheckResult, TDynamicSpec

__all__ = [
    "DistributedGraphProblem",
    "PackingProblem",
    "CoveringProblem",
    "ProblemPair",
    "IndependentSetProblem",
    "DominatingSetProblem",
    "mis_problem_pair",
    "is_maximal_independent_set",
    "ProperColoringProblem",
    "DegreePlusOneRangeProblem",
    "coloring_problem_pair",
    "is_proper_coloring",
    "MatchingValidityProblem",
    "MatchingMaximalityProblem",
    "matching_problem_pair",
    "UNMATCHED",
    "VertexCoverCoverageProblem",
    "VertexCoverMinimalityProblem",
    "vertex_cover_problem_pair",
    "TDynamicSpec",
    "TDynamicCheckResult",
]
