"""The maximal-independent-set problem as a packing/covering pair (Section 3).

``MIS = independent set (packing) ∧ dominating set (covering)``: the set
``M = {v : y_v = 1}`` must be independent and every node outside it must have
a neighbour inside it.
"""

from __future__ import annotations

from typing import AbstractSet

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.dominating_set import DominatingSetProblem
from repro.problems.independent_set import IndependentSetProblem
from repro.problems.packing_covering import ProblemPair

__all__ = ["mis_problem_pair", "is_maximal_independent_set", "mis_assignment_from_set"]


def mis_problem_pair() -> ProblemPair:
    """The (independent set, dominating set) pair defining MIS."""
    return ProblemPair(packing=IndependentSetProblem(), covering=DominatingSetProblem())


def is_maximal_independent_set(graph: Topology, members: AbstractSet[NodeId]) -> bool:
    """Direct set-based check that ``members`` is an MIS of ``graph``.

    Useful for tests and for validating the static baselines without going
    through the assignment encoding.
    """
    member_set = frozenset(members)
    if not member_set <= graph.nodes:
        return False
    for v in member_set:
        if any(u in member_set for u in graph.neighbors(v)):
            return False
    for v in graph.nodes - member_set:
        if not any(u in member_set for u in graph.neighbors(v)):
            return False
    return True


def mis_assignment_from_set(graph: Topology, members: AbstractSet[NodeId]) -> Assignment:
    """Encode a node set as the paper's 1/0 output vector over ``graph``'s nodes."""
    member_set = frozenset(members)
    return {v: (1 if v in member_set else 0) for v in graph.nodes}
