"""The (degree+1)-colouring problem as a packing/covering pair (Section 4).

* ``CP`` — *proper colouring* without a bound on the number of colours: no two
  adjacent nodes share a colour.  Removing edges removes constraints, so the
  problem is packing.
* ``CC`` — *(degree+1) colour range*: the colour of ``v`` must lie in
  ``{1, …, deg(v) + 1}`` (adjacent nodes may share colours).  Adding edges only
  enlarges the allowed range, so the problem is covering.

Their intersection is the standard (degree+1) list-free colouring problem.

Partial solutions (Section 4.1, discussion before the proof of Lemma 4.1):

* partial packing ⇔ the coloured nodes form a proper colouring (the remaining
  nodes can always be completed greedily with fresh colours);
* partial covering ⇔ every coloured node's colour is within ``deg(v) + 1``
  (the condition depends only on ``v`` itself, so it must hold for every
  completion).
"""

from __future__ import annotations

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.packing_covering import CoveringProblem, PackingProblem, ProblemPair

__all__ = [
    "ProperColoringProblem",
    "DegreePlusOneRangeProblem",
    "coloring_problem_pair",
    "is_proper_coloring",
    "num_colors_used",
]


class ProperColoringProblem(PackingProblem):
    """No two adjacent coloured nodes may share a colour (packing)."""

    name = "proper-coloring"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        color = assignment.get(v)
        if color is None:
            return False
        return all(assignment.get(u) != color for u in graph.neighbors(v))

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial packing: coloured nodes must not clash with coloured neighbours."""
        color = assignment.get(v)
        if color is None:
            return True
        for u in graph.neighbors(v):
            other = assignment.get(u)
            if other is not None and other == color:
                return False
        return True


class DegreePlusOneRangeProblem(CoveringProblem):
    """Every coloured node's colour must lie in ``{1, …, deg(v) + 1}`` (covering)."""

    name = "degree-plus-one-range"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        color = assignment.get(v)
        if color is None:
            return False
        return isinstance(color, int) and 1 <= color <= graph.degree(v) + 1

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial covering: identical condition, but only for coloured nodes."""
        color = assignment.get(v)
        if color is None:
            return True
        return isinstance(color, int) and 1 <= color <= graph.degree(v) + 1


def coloring_problem_pair() -> ProblemPair:
    """The (proper colouring, degree+1 range) pair defining (degree+1)-colouring."""
    return ProblemPair(packing=ProperColoringProblem(), covering=DegreePlusOneRangeProblem())


def is_proper_coloring(graph: Topology, assignment: Assignment, *, require_complete: bool = True) -> bool:
    """Direct check that ``assignment`` properly colours ``graph``.

    With ``require_complete`` (default) every node must be coloured; otherwise
    only coloured nodes are checked against coloured neighbours.
    """
    for v in graph.nodes:
        color = assignment.get(v)
        if color is None:
            if require_complete:
                return False
            continue
        for u in graph.neighbors(v):
            other = assignment.get(u)
            if other is not None and other == color:
                return False
    return True


def num_colors_used(assignment: Assignment) -> int:
    """Number of distinct colours among the coloured nodes."""
    return len({value for value in assignment.values() if value is not None})
