"""The dominating-set problem (the covering half of MIS).

Output encoding: ``1`` = dominator (in the set), ``0`` = dominated, ``⊥`` =
undecided.  The covering property requires every node with output ``0`` to
have a neighbour with output ``1``; adding edges can only add such neighbours,
so the problem is covering (Definition 3.1).

Partial covering (Section 5.2): an assignment is partial covering iff every
node already in state ``0`` has a ``1``-neighbour — if some ``0`` node lacks
one, the completion that sets all ⊥ nodes to ``0`` violates its condition, so
no quantification over completions is needed.
"""

from __future__ import annotations

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.packing_covering import CoveringProblem

__all__ = ["DominatingSetProblem"]


class DominatingSetProblem(CoveringProblem):
    """``M = {v : y_v = 1}`` must dominate every node with ``y_v = 0``."""

    name = "dominating-set"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """A non-member must have a member neighbour."""
        if assignment.get(v) == 1:
            return True
        return any(assignment.get(u) == 1 for u in graph.neighbors(v))

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial covering: only nodes already declared dominated (0) are constrained."""
        value = assignment.get(v)
        if value != 0:
            return True
        return any(assignment.get(u) == 1 for u in graph.neighbors(v))
