"""Packing / covering problems and partial solutions (Definitions 3.1 and 3.2).

* A problem is **packing** if any solution for ``G`` remains a solution after
  removing edges (edges are constraints; fewer constraints cannot hurt).
* A problem is **covering** if any solution for ``G`` remains a solution after
  adding edges (edges help to cover; more edges cannot hurt).

Partial solutions (Definition 3.2) allow ⊥ outputs:

* ``φ`` is *partial packing* if **some** completion of ``φ`` satisfies the LCL
  condition at every node that already has an output;
* ``φ`` is *partial covering* if **every** completion of ``φ`` satisfies the
  LCL condition at every node that already has an output.

Quantifying over all completions is not tractable generically, but for every
problem the paper uses (and every problem shipped here) there is a simple
direct characterisation — e.g. for colouring, partial packing ⇔ the coloured
nodes form a proper colouring (Section 4), and for MIS, partial packing ⇔ no
two adjacent MIS nodes, partial covering ⇔ every dominated node has an MIS
neighbour (Section 5.2).  Subclasses therefore implement the characterisation
directly via :meth:`PackingProblem.is_partial_packing` /
:meth:`CoveringProblem.is_partial_covering`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.base import DistributedGraphProblem

__all__ = ["PackingProblem", "CoveringProblem", "ProblemPair"]


class PackingProblem(DistributedGraphProblem):
    """A problem whose solutions survive edge deletions (Definition 3.1)."""

    def is_partial_packing(self, graph: Topology, assignment: Assignment) -> bool:
        """Whether ``assignment`` (with ⊥ entries) is partial packing on ``graph``.

        Default implementation: the LCL condition must hold at every node with
        an output, evaluated only against neighbours that also have an output.
        Subclasses override when their characterisation differs.
        """
        return not self.partial_packing_violations(graph, assignment)

    def partial_packing_violations(self, graph: Topology, assignment: Assignment) -> List[NodeId]:
        """Nodes with an output whose partial-packing condition fails."""
        bad: List[NodeId] = []
        for v in graph.nodes:
            if assignment.get(v) is None:
                continue
            if not self.check_node_partial(graph, assignment, v):
                bad.append(v)
        return sorted(bad)

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Per-node partial-packing condition (defaults to :meth:`check_node`)."""
        return self.check_node(graph, assignment, v)


class CoveringProblem(DistributedGraphProblem):
    """A problem whose solutions survive edge insertions (Definition 3.1)."""

    def is_partial_covering(self, graph: Topology, assignment: Assignment) -> bool:
        """Whether ``assignment`` (with ⊥ entries) is partial covering on ``graph``."""
        return not self.partial_covering_violations(graph, assignment)

    def partial_covering_violations(self, graph: Topology, assignment: Assignment) -> List[NodeId]:
        """Nodes with an output whose partial-covering condition fails."""
        bad: List[NodeId] = []
        for v in graph.nodes:
            if assignment.get(v) is None:
                continue
            if not self.check_node_partial(graph, assignment, v):
                bad.append(v)
        return sorted(bad)

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Per-node partial-covering condition (defaults to :meth:`check_node`)."""
        return self.check_node(graph, assignment, v)


@dataclass(frozen=True)
class ProblemPair:
    """A packing problem and a covering problem whose intersection is the target LCL.

    The classic examples (Section 3): independent set × dominating set = MIS,
    proper colouring × degree+1 range = (degree+1)-colouring.
    """

    packing: PackingProblem
    covering: CoveringProblem

    @property
    def name(self) -> str:
        """Combined name, e.g. ``"independent-set ∧ dominating-set"``."""
        return f"{self.packing.name} ∧ {self.covering.name}"

    def is_partial_solution(self, graph: Topology, assignment: Assignment) -> bool:
        """Partial solution for the pair (Definition 3.2): partial packing *and* partial covering."""
        return self.packing.is_partial_packing(graph, assignment) and self.covering.is_partial_covering(
            graph, assignment
        )

    def partial_violations(self, graph: Topology, assignment: Assignment) -> List[NodeId]:
        """Union of partial-packing and partial-covering violations."""
        bad = set(self.packing.partial_packing_violations(graph, assignment))
        bad.update(self.covering.partial_covering_violations(graph, assignment))
        return sorted(bad)

    def is_full_solution(self, graph: Topology, assignment: Assignment) -> bool:
        """Complete solution for both problems (all nodes decided, both LCLs hold)."""
        return self.packing.is_solution(graph, assignment) and self.covering.is_solution(
            graph, assignment
        )
