"""Minimal vertex cover as a packing/covering pair (extra problem).

Output encoding: ``1`` = in the cover, ``0`` = not in the cover, ``⊥`` =
undecided.

* **Coverage** — every edge has at least one endpoint in the cover — survives
  edge deletions (a deleted edge no longer needs covering), so it is the
  *packing* half and is checked on the intersection graph.
* **Minimality** — every cover node has at least one neighbour outside the
  cover (i.e. it is not redundant)¹ — survives edge insertions (the witness
  edge stays), so it is the *covering* half and is checked on the union graph.

¹ This is the standard local notion of (inclusion-)minimality used for LCL
formulations: a node whose neighbours are all in the cover could be removed.
It is the complement view of the MIS conditions (the complement of an MIS is a
minimal vertex cover), which is also how the test-suite cross-validates the
two problem definitions.
"""

from __future__ import annotations

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.packing_covering import CoveringProblem, PackingProblem, ProblemPair

__all__ = [
    "VertexCoverCoverageProblem",
    "VertexCoverMinimalityProblem",
    "vertex_cover_problem_pair",
]


class VertexCoverCoverageProblem(PackingProblem):
    """Every edge must have an endpoint with output 1 (packing half)."""

    name = "vertex-cover-coverage"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        if assignment.get(v) == 1:
            return True
        if assignment.get(v) is None:
            return False
        return all(assignment.get(u) == 1 for u in graph.neighbors(v))

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial packing: a decided non-cover node may not have a decided non-cover neighbour."""
        if assignment.get(v) != 0:
            return True
        return all(assignment.get(u) != 0 for u in graph.neighbors(v))


class VertexCoverMinimalityProblem(CoveringProblem):
    """Every cover node needs a neighbour outside the cover (covering half)."""

    name = "vertex-cover-minimality"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        if assignment.get(v) != 1:
            return assignment.get(v) is not None
        return any(assignment.get(u) == 0 for u in graph.neighbors(v))

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial covering: a decided cover node needs a *decided* outside witness.

        If all of ``v``'s neighbours were in the cover (or could still end up
        there), the completion putting every ⊥ neighbour into the cover would
        violate ``v``'s minimality, so the witness must already exist.
        """
        if assignment.get(v) != 1:
            return True
        return any(assignment.get(u) == 0 for u in graph.neighbors(v))


def vertex_cover_problem_pair() -> ProblemPair:
    """The (coverage, minimality) pair defining minimal vertex cover."""
    return ProblemPair(packing=VertexCoverCoverageProblem(), covering=VertexCoverMinimalityProblem())
