"""Maximal matching as a packing/covering pair (the §7.1 recipe exercise).

Output encoding: each node outputs its matched partner's id, the sentinel
:data:`UNMATCHED` (``-1``) when it is decidedly unmatched, or ``⊥`` when
undecided.

Under the paper's Definition 3.1 the roles of the two halves are the *reverse*
of what one might guess at first:

* **Matching validity** — "matched pointers are mutual, each node has at most
  one partner, and matched partners are adjacent" — is preserved when edges
  are **added** (an existing matched edge stays an edge), so it is the
  *covering* half and is therefore required on the union graph ``G^{T∪}_r``:
  a matched pair must have been adjacent at some point in the window.
* **Maximality** — "every edge has at least one matched endpoint" — is
  preserved when edges are **removed** (deleting an edge cannot create an
  uncovered edge), so it is the *packing* half and is required on the
  intersection graph ``G^{T∩}_r``: every edge that existed throughout the
  window must be covered.

This gives dynamic maximal matching exactly the same sliding-window semantics
as MIS and colouring and demonstrates that the framework's recipe extends
beyond the two problems worked out in the paper.
"""

from __future__ import annotations

from repro.types import Assignment, NodeId
from repro.dynamics.topology import Topology
from repro.problems.packing_covering import CoveringProblem, PackingProblem, ProblemPair

__all__ = [
    "UNMATCHED",
    "MatchingValidityProblem",
    "MatchingMaximalityProblem",
    "matching_problem_pair",
    "matched_pairs",
]

#: Output value of a node that has decided it is not matched.
UNMATCHED = -1


class MatchingValidityProblem(CoveringProblem):
    """Pointers must be mutual, single and along edges (covering half)."""

    name = "matching-validity"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        value = assignment.get(v)
        if value is None:
            return False
        if value == UNMATCHED:
            return True
        partner = value
        if partner == v or partner not in graph.nodes:
            return False
        if not graph.has_edge(v, partner):
            return False
        return assignment.get(partner) == v

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial covering: a decided matched node needs its partner decided and mutual.

        A node pointing at a partner whose output is still ⊥ is *not* partial
        covering: the completion in which the partner declares itself
        unmatched violates ``v``'s condition.
        """
        value = assignment.get(v)
        if value is None or value == UNMATCHED:
            return True
        return self.check_node(graph, assignment, v)


class MatchingMaximalityProblem(PackingProblem):
    """Every edge must have at least one matched endpoint (packing half)."""

    name = "matching-maximality"

    def check_node(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        value = assignment.get(v)
        if value is None:
            return False
        if value != UNMATCHED:
            return True
        # v is unmatched: every neighbour must be matched (to someone).
        for u in graph.neighbors(v):
            other = assignment.get(u)
            if other is None or other == UNMATCHED:
                return False
        return True

    def check_node_partial(self, graph: Topology, assignment: Assignment, v: NodeId) -> bool:
        """Partial packing: an unmatched node may still have undecided neighbours.

        Undecided neighbours can later match (e.g. with each other or with
        ``v``'s other neighbours), so only a *decidedly unmatched* neighbour of
        a decidedly unmatched node is a violation — that edge can never be
        covered by any completion that keeps the two decisions.
        """
        value = assignment.get(v)
        if value is None or value != UNMATCHED:
            return True
        for u in graph.neighbors(v):
            if assignment.get(u) == UNMATCHED:
                return False
        return True


def matching_problem_pair() -> ProblemPair:
    """The (maximality, validity) pair defining maximal matching."""
    return ProblemPair(packing=MatchingMaximalityProblem(), covering=MatchingValidityProblem())


def matched_pairs(assignment: Assignment) -> frozenset[tuple[NodeId, NodeId]]:
    """The set of mutually matched pairs encoded by an assignment (canonical order)."""
    pairs = set()
    for v, value in assignment.items():
        if value is None or value == UNMATCHED:
            continue
        partner = value
        if assignment.get(partner) == v:
            pairs.add((min(v, partner), max(v, partner)))
    return frozenset(pairs)
