"""Shared type aliases and small value types used across the package.

The module is intentionally dependency-light: it only defines aliases,
sentinels and tiny frozen dataclasses that every other layer (dynamics,
runtime, problems, algorithms, analysis) can import without creating cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Mapping, Tuple

#: Nodes are identified by non-negative integers ``0 … n-1``.
NodeId = int

#: Rounds are numbered ``1, 2, 3, …`` (round 0 is the empty pre-start state).
Round = int

#: An undirected edge in canonical form ``(min(u, v), max(u, v))``.
Edge = Tuple[NodeId, NodeId]

#: Colours are positive integers ``1 … deg+1`` (paper notation ``[k]``).
Color = int

#: A per-node output value.  ``None`` encodes the paper's ``⊥`` ("no output").
Value = Hashable

#: A (possibly partial) output vector: node -> value, ``None`` meaning ``⊥``.
Assignment = Mapping[NodeId, Value]

#: Sentinel re-export so call sites can write ``BOTTOM`` instead of ``None``
#: when they mean "the node has not produced an output yet".
BOTTOM = None


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    Raises
    ------
    ValueError
        If ``u == v`` (the dynamic-graph model uses simple graphs).
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed (node {u})")
    return (u, v) if u < v else (v, u)


class MisState(enum.Enum):
    """Tri-state output of the MIS algorithms (Sections 5.1 and 5.2).

    The paper encodes a node's output as ``1`` (in the independent set),
    ``0`` (dominated) or ``⊥`` (undecided).  The enum keeps the intent
    readable; :func:`mis_state_to_value` converts to the paper's encoding.
    """

    MIS = "mis"
    DOMINATED = "dominated"
    UNDECIDED = "undecided"

    @property
    def decided(self) -> bool:
        """Whether the node has committed to an output (``mis`` or ``dominated``)."""
        return self is not MisState.UNDECIDED


def mis_state_to_value(state: MisState) -> Value:
    """Map a :class:`MisState` to the paper's vector notation (1 / 0 / ``⊥``)."""
    if state is MisState.MIS:
        return 1
    if state is MisState.DOMINATED:
        return 0
    return BOTTOM


def value_to_mis_state(value: Value) -> MisState:
    """Inverse of :func:`mis_state_to_value`."""
    if value == 1:
        return MisState.MIS
    if value == 0:
        return MisState.DOMINATED
    if value is BOTTOM:
        return MisState.UNDECIDED
    raise ValueError(f"not a valid MIS output value: {value!r}")


@dataclass(frozen=True)
class Interval:
    """A closed round interval ``[start, end]`` used by stability statements.

    The paper's locally-static guarantees are phrased over intervals
    ``[r, r2]``; this tiny type avoids passing bare tuples around.
    """

    start: Round
    end: Round

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty interval [{self.start}, {self.end}]")

    def __contains__(self, r: object) -> bool:
        return isinstance(r, int) and self.start <= r <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1

    def shift(self, offset: int) -> "Interval":
        """Return the interval translated by ``offset`` rounds."""
        return Interval(self.start + offset, self.end + offset)

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the overlap with ``other`` or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)
