"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure mode of the simulator / framework with a single except
clause while still being able to distinguish configuration problems from
protocol violations detected at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class RegistryError(ConfigurationError):
    """Raised on unknown or duplicate keys in a scenario component registry."""


class TopologyError(ReproError):
    """Raised when a topology or dynamic-graph operation is invalid.

    Examples: referencing a node outside the potential node set, providing a
    shrinking awake-node set (the model requires ``V_0 ⊆ V_1 ⊆ …``), or adding
    a self-loop (the model uses simple graphs).
    """


class AdversaryError(ReproError):
    """Raised when an adversary produces an illegal graph sequence."""


class SimulationError(ReproError):
    """Raised when the round engine detects an inconsistent execution."""


class AlgorithmError(ReproError):
    """Raised when a distributed algorithm violates its own interface.

    For instance a :class:`~repro.core.interfaces.DynamicAlgorithm` that
    deletes part of its input (violating property A.1) raises this error when
    run with runtime checks enabled.
    """


class ProblemDefinitionError(ReproError):
    """Raised when a graph-problem definition is used inconsistently."""


class VerificationError(ReproError):
    """Raised by property verifiers when a trace violates a stated guarantee."""
