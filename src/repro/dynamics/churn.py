"""Edge-churn processes that animate a static base topology.

The paper's "highly dynamic" setting is about the *frequency* of potential
changes, not about wholesale re-randomisation of the graph every round
(Section 1: "highly dynamic networks do not refer to a huge amount of edges
that change in every round but rather to the frequency of potential
changes").  These processes therefore perturb a base topology edge-by-edge so
that the churn *rate* is a controllable experiment parameter:

* :class:`MarkovEdgeChurn` — every base edge is an independent two-state
  Markov chain (present/absent) with configurable ``p_off``/``p_on``.
* :class:`FlipChurn` — every base edge flips its state each round with a
  fixed probability (symmetric special case of the above).
* :class:`BurstChurn` — occasional bursts delete a random fraction of the
  currently present edges for one round (models link-failure bursts).
* :class:`EdgeInsertionChurn` — repeatedly inserts a batch of random
  *non-base* edges for a configurable lifetime (models fleeting contacts).

Each process is a :class:`ChurnProcess`: it is stepped once per round and
returns the edge set of that round (always among awake nodes handled by the
adversary layer).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge, canonical_edge
from repro.utils.validation import check_non_negative, check_probability
from repro.dynamics.topology import Topology

__all__ = [
    "ChurnProcess",
    "EdgeDelta",
    "advance_churn",
    "quiescence_skip",
    "StaticChurn",
    "MarkovEdgeChurn",
    "FlipChurn",
    "BurstChurn",
    "EdgeInsertionChurn",
    "CompositeChurn",
]

#: Whether provably-inert churn rounds may skip their RNG draw (see
#: :func:`quiescence_skip` and :meth:`ChurnProcess.quiescent`).
_QUIESCENCE_SKIP = True


@contextmanager
def quiescence_skip(enabled: bool) -> Iterator[None]:
    """Toggle the quiescent-round RNG-draw skip (equivalence-test hook).

    Skipping is *provably unobservable* — a process only reports quiescent
    from an absorbing state, where the skipped draws could never change any
    future delta — but the equivalence tests still run both settings on
    shared seeds and byte-compare the traces.  Default: enabled.
    """
    global _QUIESCENCE_SKIP
    previous = _QUIESCENCE_SKIP
    _QUIESCENCE_SKIP = bool(enabled)
    try:
        yield
    finally:
        _QUIESCENCE_SKIP = previous


#: The ``(added, removed)`` edge change of one churn round.
EdgeDelta = Tuple[FrozenSet[Edge], FrozenSet[Edge]]


class ChurnProcess(ABC):
    """A per-round stochastic process producing the round's edge set.

    A process is driven through exactly one of two APIs per run:

    * :meth:`step` — the original bulk API returning the full edge set; or
    * :meth:`step_delta` — the incremental API returning the ``(added,
      removed)`` change relative to the previous ``step_delta`` call (the
      state before the first call counts as the empty edge set, so the first
      delta carries the whole initial edge set as ``added``).

    Both consume identical randomness for identical seeds, so a run is
    bit-reproducible regardless of which API drives it.  ``step_delta``
    returns ``None`` for processes without native delta support (bulk
    processes like :class:`BurstChurn`); callers then fall back to diffing
    consecutive :meth:`step` results.
    """

    @abstractmethod
    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        """Advance one round and return the edges present this round."""

    def step_delta(self, round_index: int, rng: np.random.Generator) -> Optional[EdgeDelta]:
        """Advance one round and return the edge changes, or ``None``.

        ``None`` means "no native delta support — and no state was consumed";
        the caller must then drive the process through :meth:`step` instead.
        """
        return None

    @abstractmethod
    def reset(self) -> None:
        """Return the process to its initial state (for replication)."""

    def quiescent(self) -> bool:
        """``True`` iff the process is in an *absorbing* state.

        Quiescent means: every future step provably returns an empty delta
        regardless of the RNG values drawn, so :func:`advance_churn` may skip
        the draw entirely without observable effect (the skipped values could
        only have reached this same process, whose behaviour no longer depends
        on them).  Processes that cannot prove this return ``False`` (the
        default) and are always stepped.
        """
        return False


def advance_churn(
    churn: "ChurnProcess",
    present: FrozenSet[Edge],
    round_index: int,
    rng: np.random.Generator,
) -> Tuple[FrozenSet[Edge], FrozenSet[Edge], FrozenSet[Edge]]:
    """Advance ``churn`` one round and return ``(added, removed, new_present)``.

    Uses the native :meth:`ChurnProcess.step_delta` when the process supports
    it and falls back to diffing consecutive :meth:`ChurnProcess.step` results
    otherwise; ``present`` is the caller-maintained edge set from the previous
    round.  Shared by every delta-emitting adversary that drives a churn
    process, so the delta contract lives in one place.

    When the process reports itself :meth:`ChurnProcess.quiescent` (and the
    skip is enabled — see :func:`quiescence_skip`), the RNG draw is skipped
    and the empty delta returned directly; byte-identical by the absorbing
    argument in :meth:`ChurnProcess.quiescent`.
    """
    if _QUIESCENCE_SKIP and churn.quiescent():
        return frozenset(), frozenset(), present
    native = churn.step_delta(round_index, rng)
    if native is None:
        edges = churn.step(round_index, rng)
        return edges - present, present - edges, edges
    added, removed = native
    if removed:
        present = present - removed
    if added:
        present = present | added
    return added, removed, present


class StaticChurn(ChurnProcess):
    """No churn at all: the base edge set is returned every round."""

    def __init__(self, base: Topology) -> None:
        self._edges = base.edges
        self._primed = False
        self._all_present: Optional[np.ndarray] = None

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        return self._edges

    def step_delta(self, round_index: int, rng: np.random.Generator) -> EdgeDelta:
        if not self._primed:
            self._primed = True
            return self._edges, frozenset()
        return frozenset(), frozenset()

    def reset(self) -> None:
        self._primed = False

    def quiescent(self) -> bool:
        # After the priming delta there is nothing left to change.
        return self._primed

    def kernel_universe(self) -> Tuple[Edge, ...]:
        """The fixed edge universe, canonically sorted (array-kernel hook)."""
        return tuple(sorted(self._edges))

    def kernel_advance(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Presence mask over :meth:`kernel_universe` for this round.

        Returns the *same* all-true array every call so the kernel engine's
        identity short-circuit recognises the unchanged round.
        """
        if self._all_present is None:
            self._all_present = np.ones(len(self._edges), dtype=bool)
        self._primed = True
        return self._all_present


class MarkovEdgeChurn(ChurnProcess):
    """Independent per-edge two-state Markov chains over the base edge set.

    Each base edge is *present* or *absent*; a present edge disappears next
    round with probability ``p_off`` and an absent edge reappears with
    probability ``p_on``.  The stationary fraction of present edges is
    ``p_on / (p_on + p_off)`` (1 if both are 0).

    Parameters
    ----------
    base:
        The base topology whose edges are animated.
    p_off, p_on:
        Per-round transition probabilities.
    start_present:
        Whether edges start in the present state (default) or absent.
    """

    def __init__(
        self,
        base: Topology,
        p_off: float,
        p_on: float,
        *,
        start_present: bool = True,
    ) -> None:
        check_probability("p_off", p_off)
        check_probability("p_on", p_on)
        self._base_edges: Sequence[Edge] = tuple(sorted(base.edges))
        self._p_off = float(p_off)
        self._p_on = float(p_on)
        self._start_present = bool(start_present)
        self._present = np.full(len(self._base_edges), self._start_present, dtype=bool)
        self._num_present = len(self._base_edges) if self._start_present else 0
        self._primed = False

    @property
    def p_off(self) -> float:
        return self._p_off

    @property
    def p_on(self) -> float:
        return self._p_on

    def reset(self) -> None:
        self._present = np.full(len(self._base_edges), self._start_present, dtype=bool)
        self._num_present = len(self._base_edges) if self._start_present else 0
        self._primed = False

    def quiescent(self) -> bool:
        # Absorbing iff no transition can ever fire again: both probabilities
        # zero, or the only live transition has no edges left to act on.  The
        # priming delta (which reports the initial present set) must still be
        # emitted, hence the ``_primed`` guard.
        if not self._primed:
            return False
        if self._p_off == 0.0 and self._p_on == 0.0:
            return True
        if self._p_on == 0.0 and self._num_present == 0:
            return True
        return self._p_off == 0.0 and self._num_present == len(self._base_edges)

    def _advance(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """One Markov transition; returns the (turned-on, turned-off) masks."""
        u = rng.random(len(self._base_edges))
        turn_off = self._present & (u < self._p_off)
        turn_on = (~self._present) & (u < self._p_on)
        self._present = (self._present & ~turn_off) | turn_on
        self._num_present += int(turn_on.sum()) - int(turn_off.sum())
        return turn_on, turn_off

    def kernel_universe(self) -> Tuple[Edge, ...]:
        """The base edge universe, canonically sorted (array-kernel hook)."""
        return tuple(self._base_edges)

    def kernel_advance(self, round_index: int, rng: np.random.Generator) -> np.ndarray:
        """Presence mask over :meth:`kernel_universe` for this round.

        Consumes exactly the randomness :meth:`step_delta` would (one draw of
        ``len(base_edges)`` uniforms per non-skipped round), keeping kernel
        and classic runs on a shared seed byte-identical.  The returned mask
        is a fresh array after a real transition and the *same* array object
        when the round was skipped as quiescent, matching the engine's
        identity short-circuit.
        """
        if len(self._base_edges) == 0:
            # Mirror step_delta's early return: no draw, no priming.
            return self._present
        if _QUIESCENCE_SKIP and self.quiescent():
            return self._present
        self._advance(rng)
        self._primed = True
        return self._present

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        if len(self._base_edges) == 0:
            return frozenset()
        self._advance(rng)
        return frozenset(
            e for e, present in zip(self._base_edges, self._present) if present
        )

    def step_delta(self, round_index: int, rng: np.random.Generator) -> EdgeDelta:
        if len(self._base_edges) == 0:
            return frozenset(), frozenset()
        turn_on, turn_off = self._advance(rng)
        edges = self._base_edges
        if not self._primed:
            # First call: report the whole present set as added (the delta
            # contract starts from the empty edge set).
            self._primed = True
            return (
                frozenset(edges[int(i)] for i in np.nonzero(self._present)[0]),
                frozenset(),
            )
        added = frozenset(edges[int(i)] for i in np.nonzero(turn_on)[0])
        removed = frozenset(edges[int(i)] for i in np.nonzero(turn_off)[0])
        return added, removed


class FlipChurn(MarkovEdgeChurn):
    """Symmetric churn: every base edge flips its state with probability ``flip_prob``."""

    def __init__(self, base: Topology, flip_prob: float, *, start_present: bool = True) -> None:
        super().__init__(base, p_off=flip_prob, p_on=flip_prob, start_present=start_present)
        self._flip_prob = check_probability("flip_prob", flip_prob)

    @property
    def flip_prob(self) -> float:
        return self._flip_prob


class BurstChurn(ChurnProcess):
    """Deletes a random fraction of the base edges for single-round bursts.

    Between bursts the full base edge set is present.  With probability
    ``burst_prob`` per round, a fraction ``drop_fraction`` of the edges is
    removed for exactly that round.
    """

    def __init__(self, base: Topology, burst_prob: float, drop_fraction: float) -> None:
        check_probability("burst_prob", burst_prob)
        check_probability("drop_fraction", drop_fraction)
        self._base_edges: Sequence[Edge] = tuple(sorted(base.edges))
        self._burst_prob = float(burst_prob)
        self._drop_fraction = float(drop_fraction)

    def reset(self) -> None:
        return None

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        if not self._base_edges or rng.random() >= self._burst_prob:
            return frozenset(self._base_edges)
        keep = max(0, int(round(len(self._base_edges) * (1.0 - self._drop_fraction))))
        if keep >= len(self._base_edges):
            return frozenset(self._base_edges)
        indices = rng.choice(len(self._base_edges), size=keep, replace=False)
        return frozenset(self._base_edges[int(i)] for i in indices)


class EdgeInsertionChurn(ChurnProcess):
    """Keeps the base edges and repeatedly inserts short-lived extra edges.

    Every round, ``insertions_per_round`` uniformly random node pairs (that
    are not base edges) are added and stay present for ``lifetime`` rounds.
    This models fleeting contacts on top of a stable backbone and is the
    workload used to probe conflict resolution (experiment E3 uses the
    *targeted* variant in :mod:`repro.dynamics.adversaries.targeted_coloring`;
    this one is oblivious).
    """

    def __init__(
        self,
        base: Topology,
        insertions_per_round: int,
        lifetime: int,
    ) -> None:
        check_non_negative("insertions_per_round", insertions_per_round)
        if lifetime < 1:
            raise ConfigurationError(f"lifetime must be >= 1, got {lifetime}")
        self._base = base
        self._nodes: Sequence[int] = tuple(sorted(base.nodes))
        self._insertions = int(insertions_per_round)
        self._lifetime = int(lifetime)
        self._active: Dict[Edge, int] = {}
        self._primed = False

    def reset(self) -> None:
        self._active.clear()
        self._primed = False

    def _advance(
        self, round_index: int, rng: np.random.Generator
    ) -> Tuple[Set[Edge], Set[Edge]]:
        """Expire and insert; returns (expired edges, freshly inserted edges)."""
        expired = {e for e, expiry in self._active.items() if expiry <= round_index}
        for e in expired:
            del self._active[e]
        fresh: Set[Edge] = set()
        n = len(self._nodes)
        if n >= 2:
            for _ in range(self._insertions):
                u, v = rng.choice(n, size=2, replace=False)
                e = canonical_edge(self._nodes[int(u)], self._nodes[int(v)])
                if e in self._base.edges:
                    continue
                if e not in self._active:
                    fresh.add(e)
                self._active[e] = round_index + self._lifetime
        return expired, fresh

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        self._advance(round_index, rng)
        return frozenset(self._base.edges) | frozenset(self._active)

    def step_delta(self, round_index: int, rng: np.random.Generator) -> EdgeDelta:
        expired, fresh = self._advance(round_index, rng)
        if not self._primed:
            self._primed = True
            return frozenset(self._base.edges) | frozenset(self._active), frozenset()
        # An edge that expired and was re-inserted in the same round never
        # left the edge set, so it belongs in neither side of the delta.
        added = frozenset(e for e in fresh if e not in expired)
        removed = frozenset(e for e in expired if e not in self._active)
        return added, removed


class CompositeChurn(ChurnProcess):
    """Union of the edge sets produced by several churn processes."""

    def __init__(self, processes: Sequence[ChurnProcess]) -> None:
        if not processes:
            raise ConfigurationError("CompositeChurn needs at least one process")
        self._processes: List[ChurnProcess] = list(processes)

    def reset(self) -> None:
        for proc in self._processes:
            proc.reset()

    def quiescent(self) -> bool:
        # Only the composite as a whole may be skipped: skipping a single
        # quiescent sub-process would shift the shared RNG stream consumed by
        # its non-quiescent siblings.
        return all(proc.quiescent() for proc in self._processes)

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        edges: Set[Edge] = set()
        for proc in self._processes:
            edges |= proc.step(round_index, rng)
        return frozenset(edges)
