"""Edge-churn processes that animate a static base topology.

The paper's "highly dynamic" setting is about the *frequency* of potential
changes, not about wholesale re-randomisation of the graph every round
(Section 1: "highly dynamic networks do not refer to a huge amount of edges
that change in every round but rather to the frequency of potential
changes").  These processes therefore perturb a base topology edge-by-edge so
that the churn *rate* is a controllable experiment parameter:

* :class:`MarkovEdgeChurn` — every base edge is an independent two-state
  Markov chain (present/absent) with configurable ``p_off``/``p_on``.
* :class:`FlipChurn` — every base edge flips its state each round with a
  fixed probability (symmetric special case of the above).
* :class:`BurstChurn` — occasional bursts delete a random fraction of the
  currently present edges for one round (models link-failure bursts).
* :class:`EdgeInsertionChurn` — repeatedly inserts a batch of random
  *non-base* edges for a configurable lifetime (models fleeting contacts).

Each process is a :class:`ChurnProcess`: it is stepped once per round and
returns the edge set of that round (always among awake nodes handled by the
adversary layer).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge, canonical_edge
from repro.utils.validation import check_non_negative, check_probability
from repro.dynamics.topology import Topology

__all__ = [
    "ChurnProcess",
    "StaticChurn",
    "MarkovEdgeChurn",
    "FlipChurn",
    "BurstChurn",
    "EdgeInsertionChurn",
    "CompositeChurn",
]


class ChurnProcess(ABC):
    """A per-round stochastic process producing the round's edge set."""

    @abstractmethod
    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        """Advance one round and return the edges present this round."""

    @abstractmethod
    def reset(self) -> None:
        """Return the process to its initial state (for replication)."""


class StaticChurn(ChurnProcess):
    """No churn at all: the base edge set is returned every round."""

    def __init__(self, base: Topology) -> None:
        self._edges = base.edges

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        return self._edges

    def reset(self) -> None:  # nothing to do
        return None


class MarkovEdgeChurn(ChurnProcess):
    """Independent per-edge two-state Markov chains over the base edge set.

    Each base edge is *present* or *absent*; a present edge disappears next
    round with probability ``p_off`` and an absent edge reappears with
    probability ``p_on``.  The stationary fraction of present edges is
    ``p_on / (p_on + p_off)`` (1 if both are 0).

    Parameters
    ----------
    base:
        The base topology whose edges are animated.
    p_off, p_on:
        Per-round transition probabilities.
    start_present:
        Whether edges start in the present state (default) or absent.
    """

    def __init__(
        self,
        base: Topology,
        p_off: float,
        p_on: float,
        *,
        start_present: bool = True,
    ) -> None:
        check_probability("p_off", p_off)
        check_probability("p_on", p_on)
        self._base_edges: Sequence[Edge] = tuple(sorted(base.edges))
        self._p_off = float(p_off)
        self._p_on = float(p_on)
        self._start_present = bool(start_present)
        self._present = np.full(len(self._base_edges), self._start_present, dtype=bool)

    @property
    def p_off(self) -> float:
        return self._p_off

    @property
    def p_on(self) -> float:
        return self._p_on

    def reset(self) -> None:
        self._present = np.full(len(self._base_edges), self._start_present, dtype=bool)

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        if len(self._base_edges) == 0:
            return frozenset()
        u = rng.random(len(self._base_edges))
        turn_off = self._present & (u < self._p_off)
        turn_on = (~self._present) & (u < self._p_on)
        self._present = (self._present & ~turn_off) | turn_on
        return frozenset(
            e for e, present in zip(self._base_edges, self._present) if present
        )


class FlipChurn(MarkovEdgeChurn):
    """Symmetric churn: every base edge flips its state with probability ``flip_prob``."""

    def __init__(self, base: Topology, flip_prob: float, *, start_present: bool = True) -> None:
        super().__init__(base, p_off=flip_prob, p_on=flip_prob, start_present=start_present)
        self._flip_prob = check_probability("flip_prob", flip_prob)

    @property
    def flip_prob(self) -> float:
        return self._flip_prob


class BurstChurn(ChurnProcess):
    """Deletes a random fraction of the base edges for single-round bursts.

    Between bursts the full base edge set is present.  With probability
    ``burst_prob`` per round, a fraction ``drop_fraction`` of the edges is
    removed for exactly that round.
    """

    def __init__(self, base: Topology, burst_prob: float, drop_fraction: float) -> None:
        check_probability("burst_prob", burst_prob)
        check_probability("drop_fraction", drop_fraction)
        self._base_edges: Sequence[Edge] = tuple(sorted(base.edges))
        self._burst_prob = float(burst_prob)
        self._drop_fraction = float(drop_fraction)

    def reset(self) -> None:
        return None

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        if not self._base_edges or rng.random() >= self._burst_prob:
            return frozenset(self._base_edges)
        keep = max(0, int(round(len(self._base_edges) * (1.0 - self._drop_fraction))))
        if keep >= len(self._base_edges):
            return frozenset(self._base_edges)
        indices = rng.choice(len(self._base_edges), size=keep, replace=False)
        return frozenset(self._base_edges[int(i)] for i in indices)


class EdgeInsertionChurn(ChurnProcess):
    """Keeps the base edges and repeatedly inserts short-lived extra edges.

    Every round, ``insertions_per_round`` uniformly random node pairs (that
    are not base edges) are added and stay present for ``lifetime`` rounds.
    This models fleeting contacts on top of a stable backbone and is the
    workload used to probe conflict resolution (experiment E3 uses the
    *targeted* variant in :mod:`repro.dynamics.adversaries.targeted_coloring`;
    this one is oblivious).
    """

    def __init__(
        self,
        base: Topology,
        insertions_per_round: int,
        lifetime: int,
    ) -> None:
        check_non_negative("insertions_per_round", insertions_per_round)
        if lifetime < 1:
            raise ConfigurationError(f"lifetime must be >= 1, got {lifetime}")
        self._base = base
        self._nodes: Sequence[int] = tuple(sorted(base.nodes))
        self._insertions = int(insertions_per_round)
        self._lifetime = int(lifetime)
        self._active: Dict[Edge, int] = {}

    def reset(self) -> None:
        self._active.clear()

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        expired = [e for e, expiry in self._active.items() if expiry <= round_index]
        for e in expired:
            del self._active[e]
        n = len(self._nodes)
        if n >= 2:
            for _ in range(self._insertions):
                u, v = rng.choice(n, size=2, replace=False)
                e = canonical_edge(self._nodes[int(u)], self._nodes[int(v)])
                if e in self._base.edges:
                    continue
                self._active[e] = round_index + self._lifetime
        return frozenset(self._base.edges) | frozenset(self._active)


class CompositeChurn(ChurnProcess):
    """Union of the edge sets produced by several churn processes."""

    def __init__(self, processes: Sequence[ChurnProcess]) -> None:
        if not processes:
            raise ConfigurationError("CompositeChurn needs at least one process")
        self._processes: List[ChurnProcess] = list(processes)

    def reset(self) -> None:
        for proc in self._processes:
            proc.reset()

    def step(self, round_index: int, rng: np.random.Generator) -> FrozenSet[Edge]:
        edges: Set[Edge] = set()
        for proc in self._processes:
            edges |= proc.step(round_index, rng)
        return frozenset(edges)
