"""Immutable per-round graph snapshots and the deltas between them.

A :class:`Topology` is the communication graph ``G_r = (V_r, E_r)`` of a
single round: the set of awake nodes and the set of undirected edges between
them.  Topologies are immutable so that recorded traces cannot be mutated
after the fact, and hashable edge/neighbour queries are O(1).

The paper's model (and the highly-dynamic literature in general) describes a
round as a *small set of changes* applied to the previous graph.
:class:`TopologyDelta` is that change set — added/removed nodes and edges —
and :meth:`Topology.apply` materialises the successor graph from it while
structurally sharing every untouched neighbour set (and, when possible, the
node and edge frozensets) with the predecessor, so the per-round cost is
proportional to the amount of change rather than to the graph size.

The class intentionally does not depend on :mod:`networkx` for its hot-path
operations (neighbour iteration during message delivery); conversion helpers
are provided for analysis code that wants the richer networkx API.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.types import Edge, NodeId, canonical_edge

__all__ = [
    "ArrayDelta",
    "Topology",
    "TopologyDelta",
    "EMPTY_DELTA",
    "empty_topology",
    "topology_from_networkx",
]

_EMPTY_NODES: FrozenSet[NodeId] = frozenset()
_EMPTY_EDGES: FrozenSet[Edge] = frozenset()


def _node_set(nodes: Iterable[NodeId]) -> FrozenSet[NodeId]:
    """Coerce to a frozenset of ints (trusting an existing frozenset)."""
    if isinstance(nodes, frozenset):
        return nodes
    return frozenset(int(v) for v in nodes)


def _edge_set(edges: Iterable[Tuple[NodeId, NodeId]]) -> FrozenSet[Edge]:
    """Canonicalise to a frozenset of edges.

    An already-canonical frozenset (the common case — every producer in
    :mod:`repro.dynamics` maintains canonical ``(min, max)`` tuples) is
    returned as-is after an O(#changes) order check; anything else is
    canonicalised edge by edge.
    """
    if isinstance(edges, frozenset):
        if all(u < v for u, v in edges):
            return edges
        return frozenset(canonical_edge(u, v) for u, v in edges)
    return frozenset(canonical_edge(u, v) for u, v in edges)


class TopologyDelta:
    """The change set between two consecutive topologies.

    A delta is *exact*: added items must be absent from the predecessor and
    removed items must be present (checked by :meth:`Topology.apply`), so a
    stored delta is always byte-identical to the from-scratch diff of the two
    snapshots it connects.

    Parameters
    ----------
    added_nodes / removed_nodes:
        Nodes that wake up / disappear.  (The simulator's dynamic-graph model
        never removes awake nodes, but the delta type itself is general.)
    added_edges / removed_edges:
        Undirected edges inserted / deleted; canonicalised unless already
        given as frozensets of canonical edges.
    """

    __slots__ = ("added_nodes", "removed_nodes", "added_edges", "removed_edges")

    def __init__(
        self,
        *,
        added_nodes: Iterable[NodeId] = _EMPTY_NODES,
        removed_nodes: Iterable[NodeId] = _EMPTY_NODES,
        added_edges: Iterable[Tuple[NodeId, NodeId]] = _EMPTY_EDGES,
        removed_edges: Iterable[Tuple[NodeId, NodeId]] = _EMPTY_EDGES,
    ) -> None:
        object.__setattr__(self, "added_nodes", _node_set(added_nodes))
        object.__setattr__(self, "removed_nodes", _node_set(removed_nodes))
        object.__setattr__(self, "added_edges", _edge_set(added_edges))
        object.__setattr__(self, "removed_edges", _edge_set(removed_edges))
        if self.added_nodes & self.removed_nodes:
            raise TopologyError("a node cannot be both added and removed in one delta")
        if self.added_edges & self.removed_edges:
            raise TopologyError("an edge cannot be both added and removed in one delta")

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError("TopologyDelta is immutable")

    def is_empty(self) -> bool:
        """Whether the delta changes nothing."""
        return not (
            self.added_nodes or self.removed_nodes or self.added_edges or self.removed_edges
        )

    def __bool__(self) -> bool:
        return not self.is_empty()

    @property
    def num_changes(self) -> int:
        """Total number of node + edge changes."""
        return (
            len(self.added_nodes)
            + len(self.removed_nodes)
            + len(self.added_edges)
            + len(self.removed_edges)
        )

    def touched_nodes(self) -> FrozenSet[NodeId]:
        """Every node whose awake state or neighbourhood this delta changes."""
        touched = set(self.added_nodes) | set(self.removed_nodes)
        for u, v in self.added_edges:
            touched.add(u)
            touched.add(v)
        for u, v in self.removed_edges:
            touched.add(u)
            touched.add(v)
        return frozenset(touched)

    @classmethod
    def between(cls, before: "Topology", after: "Topology") -> "TopologyDelta":
        """The exact delta with ``before.apply(delta) == after``."""
        return cls(
            added_nodes=after._nodes - before._nodes,
            removed_nodes=before._nodes - after._nodes,
            added_edges=after._edges - before._edges,
            removed_edges=before._edges - after._edges,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopologyDelta):
            return NotImplemented
        return (
            self.added_nodes == other.added_nodes
            and self.removed_nodes == other.removed_nodes
            and self.added_edges == other.added_edges
            and self.removed_edges == other.removed_edges
        )

    def __hash__(self) -> int:
        return hash((self.added_nodes, self.removed_nodes, self.added_edges, self.removed_edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologyDelta(+{len(self.added_nodes)}n/-{len(self.removed_nodes)}n, "
            f"+{len(self.added_edges)}e/-{len(self.removed_edges)}e)"
        )


#: The delta that changes nothing (``topology.apply(EMPTY_DELTA) is topology``).
EMPTY_DELTA = TopologyDelta()


class ArrayDelta(TopologyDelta):
    """A :class:`TopologyDelta` backed by universe index arrays.

    The array kernel's round loop produces topology changes as indices into
    a static canonical edge universe (``eu[i] < ev[i]``, see
    :class:`repro.kernel.csr.EdgeUniverse`).  Materialising python frozensets
    for every round would negate the vectorisation win, so this subclass
    keeps the arrays and builds the edge frozensets *lazily* — only trace
    consumers that actually materialise topologies (window probes, the
    verification gates, analysis code) ever pay for them.

    The parent's ``__init__`` is deliberately not called: its slots are
    shadowed by properties, node removal is impossible by construction
    (``removed_nodes`` is always empty — the dynamic-graph model never
    removes awake nodes), and exactness of the added/removed split is
    guaranteed by the engine's presence-mask diff.
    """

    __slots__ = (
        "_array_added_nodes",
        "_array_nodes_cache",
        "_array_eu",
        "_array_ev",
        "_array_added_idx",
        "_array_removed_idx",
        "_array_added_cache",
        "_array_removed_cache",
    )

    def __init__(
        self,
        added_nodes: "object",
        eu: "object",
        ev: "object",
        added_idx: "object",
        removed_idx: "object",
    ) -> None:
        """``added_nodes`` is an int64 id array *or* an already-built frozenset."""
        set_ = object.__setattr__
        if isinstance(added_nodes, frozenset):
            set_(self, "_array_added_nodes", None)
            set_(self, "_array_nodes_cache", added_nodes)
        else:
            set_(self, "_array_added_nodes", added_nodes)
            set_(self, "_array_nodes_cache", None)
        set_(self, "_array_eu", eu)
        set_(self, "_array_ev", ev)
        set_(self, "_array_added_idx", added_idx)
        set_(self, "_array_removed_idx", removed_idx)
        set_(self, "_array_added_cache", None)
        set_(self, "_array_removed_cache", None)

    def _edges_at(self, idx: "object") -> FrozenSet[Edge]:
        return frozenset(
            zip(self._array_eu[idx].tolist(), self._array_ev[idx].tolist())
        )

    @property
    def added_nodes(self) -> FrozenSet[NodeId]:
        cache = self._array_nodes_cache
        if cache is None:
            cache = frozenset(self._array_added_nodes.tolist())
            object.__setattr__(self, "_array_nodes_cache", cache)
        return cache

    @property
    def num_changes(self) -> int:
        # O(1) from the array lengths — no frozenset materialisation.
        nodes = self._array_nodes_cache
        added = len(nodes) if self._array_added_nodes is None else len(self._array_added_nodes)
        return added + len(self._array_added_idx) + len(self._array_removed_idx)

    @property
    def removed_nodes(self) -> FrozenSet[NodeId]:
        return _EMPTY_NODES

    @property
    def added_edges(self) -> FrozenSet[Edge]:
        cache = self._array_added_cache
        if cache is None:
            cache = self._edges_at(self._array_added_idx)
            object.__setattr__(self, "_array_added_cache", cache)
        return cache

    @property
    def removed_edges(self) -> FrozenSet[Edge]:
        cache = self._array_removed_cache
        if cache is None:
            cache = self._edges_at(self._array_removed_idx)
            object.__setattr__(self, "_array_removed_cache", cache)
        return cache


class Topology:
    """An immutable simple undirected graph over a set of awake nodes.

    Parameters
    ----------
    nodes:
        The awake node set ``V_r``.
    edges:
        Undirected edges; each edge's endpoints must be members of ``nodes``.
        Edges may be given in any orientation; they are canonicalised.

    Notes
    -----
    Isolated nodes are allowed (and are how the model encodes nodes that have
    "left" the network, see Section 2).  Self-loops and edges to sleeping
    nodes are rejected.
    """

    __slots__ = ("_nodes", "_edges", "_adjacency", "_hash")

    def __init__(self, nodes: Iterable[NodeId], edges: Iterable[Tuple[NodeId, NodeId]]) -> None:
        node_set = frozenset(int(v) for v in nodes)
        canonical: set[Edge] = set()
        adjacency: Dict[NodeId, set[NodeId]] = {v: set() for v in node_set}
        for u, v in edges:
            e = canonical_edge(int(u), int(v))
            if e[0] not in node_set or e[1] not in node_set:
                raise TopologyError(
                    f"edge {e} references a node outside the awake node set"
                )
            if e not in canonical:
                canonical.add(e)
                adjacency[e[0]].add(e[1])
                adjacency[e[1]].add(e[0])
        self._nodes: FrozenSet[NodeId] = node_set
        self._edges: FrozenSet[Edge] = frozenset(canonical)
        self._adjacency: Dict[NodeId, FrozenSet[NodeId]] = {
            v: frozenset(neigh) for v, neigh in adjacency.items()
        }
        self._hash: int | None = None

    # -- basic accessors -------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        """The awake node set ``V_r``."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The canonicalised undirected edge set ``E_r``."""
        return self._edges

    @property
    def num_nodes(self) -> int:
        """Number of awake nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def has_node(self, v: NodeId) -> bool:
        """Whether ``v`` is awake in this round."""
        return v in self._nodes

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def neighbors(self, v: NodeId) -> FrozenSet[NodeId]:
        """The neighbour set ``N_{G_r}(v)``; empty for sleeping nodes."""
        return self._adjacency.get(v, frozenset())

    def degree(self, v: NodeId) -> int:
        """The degree ``d_r(v)``; 0 for sleeping nodes."""
        return len(self._adjacency.get(v, ()))

    def adjacency(self) -> Mapping[NodeId, FrozenSet[NodeId]]:
        """The full adjacency mapping (read-only view, no copy)."""
        return MappingProxyType(self._adjacency)

    # -- derived graphs ---------------------------------------------------

    def subgraph(self, nodes: AbstractSet[NodeId]) -> "Topology":
        """Return the subgraph induced by ``nodes ∩ V_r``."""
        keep = self._nodes & frozenset(nodes)
        edges = [e for e in self._edges if e[0] in keep and e[1] in keep]
        return Topology(keep, edges)

    def ball(self, center: NodeId, radius: int) -> FrozenSet[NodeId]:
        """Return the ``radius``-neighbourhood ``N^radius(center)`` (including the centre).

        Used to express the paper's "α-neighbourhood of v is static" conditions.
        """
        if center not in self._nodes:
            return frozenset()
        if radius < 0:
            raise TopologyError(f"radius must be >= 0, got {radius}")
        frontier = {center}
        seen = {center}
        for _ in range(radius):
            nxt: set[NodeId] = set()
            for u in frontier:
                nxt.update(self._adjacency.get(u, ()))
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return frozenset(seen)

    def induced_edges(self, nodes: AbstractSet[NodeId]) -> FrozenSet[Edge]:
        """Edges of this topology with both endpoints in ``nodes``."""
        keep = frozenset(nodes)
        return frozenset(e for e in self._edges if e[0] in keep and e[1] in keep)

    def with_edges(
        self,
        add: Iterable[Tuple[NodeId, NodeId]] = (),
        remove: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> "Topology":
        """Return a copy with ``add`` edges inserted and ``remove`` edges deleted."""
        edges = set(self._edges)
        for u, v in remove:
            edges.discard(canonical_edge(u, v))
        for u, v in add:
            edges.add(canonical_edge(u, v))
        return Topology(self._nodes, edges)

    def with_nodes(self, add: Iterable[NodeId]) -> "Topology":
        """Return a copy with extra awake (isolated) nodes added."""
        return Topology(self._nodes | frozenset(int(v) for v in add), self._edges)

    # -- incremental construction ------------------------------------------

    def apply(self, delta: TopologyDelta) -> "Topology":
        """Return the successor topology ``G' = G ± delta``.

        The result structurally shares every untouched neighbour frozenset
        (and the node/edge frozensets when they did not change) with ``self``,
        so the cost is O(#changes) of Python-level work plus C-speed set
        operations — not O(n + m) re-validation.

        The delta must be *exact* relative to ``self``:

        * added nodes must not be awake yet, removed nodes must be awake and
          isolated after the edge removals;
        * added edges must be absent (with both endpoints awake afterwards),
          removed edges must be present.

        Raises
        ------
        TopologyError
            If the delta is not exact (which would silently desynchronise a
            delta-encoded trace from its snapshots).

        An empty delta returns ``self`` unchanged (same object).
        """
        if delta.is_empty():
            return self
        nodes = self._nodes
        edges = self._edges
        added_nodes = delta.added_nodes
        removed_nodes = delta.removed_nodes
        added_edges = delta.added_edges
        removed_edges = delta.removed_edges

        if added_nodes and (added_nodes & nodes):
            raise TopologyError(
                f"delta adds nodes that are already awake: {sorted(added_nodes & nodes)[:10]}"
            )
        if removed_nodes and (removed_nodes - nodes):
            raise TopologyError(
                f"delta removes nodes that are not awake: {sorted(removed_nodes - nodes)[:10]}"
            )
        if removed_edges and (removed_edges - edges):
            raise TopologyError(
                f"delta removes edges that are not present: {sorted(removed_edges - edges)[:10]}"
            )
        if added_edges and (added_edges & edges):
            raise TopologyError(
                f"delta adds edges that are already present: {sorted(added_edges & edges)[:10]}"
            )

        new_nodes = nodes
        if added_nodes:
            new_nodes = new_nodes | added_nodes
        if removed_nodes:
            new_nodes = new_nodes - removed_nodes
        new_edges = edges
        if removed_edges:
            new_edges = new_edges - removed_edges
        if added_edges:
            new_edges = new_edges | added_edges

        adjacency = dict(self._adjacency)
        touched: Dict[NodeId, set] = {}

        def neighbours_of(v: NodeId) -> set:
            current = touched.get(v)
            if current is None:
                current = set(adjacency.get(v, ()))
                touched[v] = current
            return current

        for u, v in removed_edges:
            neighbours_of(u).discard(v)
            neighbours_of(v).discard(u)
        for v in added_nodes:
            touched.setdefault(v, set())
        for u, v in added_edges:
            if u not in new_nodes or v not in new_nodes:
                raise TopologyError(
                    f"delta edge {(u, v)} references a node outside the awake node set"
                )
            neighbours_of(u).add(v)
            neighbours_of(v).add(u)
        for v in removed_nodes:
            remaining = touched.pop(v, None)
            if remaining is None:
                remaining = adjacency.get(v, ())
            if remaining:
                raise TopologyError(
                    f"delta removes node {v} while it still has incident edges"
                )
            adjacency.pop(v, None)
        for v, neighbours in touched.items():
            adjacency[v] = frozenset(neighbours)

        successor = Topology.__new__(Topology)
        successor._nodes = new_nodes
        successor._edges = new_edges
        successor._adjacency = adjacency
        successor._hash = None
        return successor

    def delta_to(self, other: "Topology") -> TopologyDelta:
        """The exact delta with ``self.apply(delta) == other``."""
        return TopologyDelta.between(self, other)

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self._edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n={self.num_nodes}, m={self.num_edges})"

    def restricted_equals(self, other: "Topology", nodes: AbstractSet[NodeId]) -> bool:
        """Whether this topology and ``other`` agree on the subgraph induced by ``nodes``.

        This is the predicate ``G_l[N^α(v)] = G_{l'}[N^α(v)]`` used by the
        locally-static guarantees (Definition 3.3, B.2).
        """
        keep = frozenset(nodes)
        if (self._nodes & keep) != (other._nodes & keep):
            return False
        return self.induced_edges(keep) == other.induced_edges(keep)

    # -- conversions ------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (for analysis / plotting)."""
        g = nx.Graph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self._edges)
        return g


def empty_topology(nodes: Iterable[NodeId] = ()) -> Topology:
    """Return a topology with the given awake nodes and no edges."""
    return Topology(nodes, ())


def topology_from_networkx(graph: nx.Graph) -> Topology:
    """Build a :class:`Topology` from a networkx graph (node labels must be ints)."""
    return Topology(graph.nodes(), graph.edges())
