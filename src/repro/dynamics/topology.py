"""Immutable per-round graph snapshots.

A :class:`Topology` is the communication graph ``G_r = (V_r, E_r)`` of a
single round: the set of awake nodes and the set of undirected edges between
them.  Topologies are immutable so that recorded traces cannot be mutated
after the fact, and hashable edge/neighbour queries are O(1).

The class intentionally does not depend on :mod:`networkx` for its hot-path
operations (neighbour iteration during message delivery); conversion helpers
are provided for analysis code that wants the richer networkx API.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.types import Edge, NodeId, canonical_edge

__all__ = ["Topology", "empty_topology", "topology_from_networkx"]


class Topology:
    """An immutable simple undirected graph over a set of awake nodes.

    Parameters
    ----------
    nodes:
        The awake node set ``V_r``.
    edges:
        Undirected edges; each edge's endpoints must be members of ``nodes``.
        Edges may be given in any orientation; they are canonicalised.

    Notes
    -----
    Isolated nodes are allowed (and are how the model encodes nodes that have
    "left" the network, see Section 2).  Self-loops and edges to sleeping
    nodes are rejected.
    """

    __slots__ = ("_nodes", "_edges", "_adjacency", "_hash")

    def __init__(self, nodes: Iterable[NodeId], edges: Iterable[Tuple[NodeId, NodeId]]) -> None:
        node_set = frozenset(int(v) for v in nodes)
        canonical: set[Edge] = set()
        adjacency: Dict[NodeId, set[NodeId]] = {v: set() for v in node_set}
        for u, v in edges:
            e = canonical_edge(int(u), int(v))
            if e[0] not in node_set or e[1] not in node_set:
                raise TopologyError(
                    f"edge {e} references a node outside the awake node set"
                )
            if e not in canonical:
                canonical.add(e)
                adjacency[e[0]].add(e[1])
                adjacency[e[1]].add(e[0])
        self._nodes: FrozenSet[NodeId] = node_set
        self._edges: FrozenSet[Edge] = frozenset(canonical)
        self._adjacency: Dict[NodeId, FrozenSet[NodeId]] = {
            v: frozenset(neigh) for v, neigh in adjacency.items()
        }
        self._hash: int | None = None

    # -- basic accessors -------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        """The awake node set ``V_r``."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The canonicalised undirected edge set ``E_r``."""
        return self._edges

    @property
    def num_nodes(self) -> int:
        """Number of awake nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def has_node(self, v: NodeId) -> bool:
        """Whether ``v`` is awake in this round."""
        return v in self._nodes

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def neighbors(self, v: NodeId) -> FrozenSet[NodeId]:
        """The neighbour set ``N_{G_r}(v)``; empty for sleeping nodes."""
        return self._adjacency.get(v, frozenset())

    def degree(self, v: NodeId) -> int:
        """The degree ``d_r(v)``; 0 for sleeping nodes."""
        return len(self._adjacency.get(v, ()))

    def adjacency(self) -> Mapping[NodeId, FrozenSet[NodeId]]:
        """The full adjacency mapping (read-only view)."""
        return dict(self._adjacency)

    # -- derived graphs ---------------------------------------------------

    def subgraph(self, nodes: AbstractSet[NodeId]) -> "Topology":
        """Return the subgraph induced by ``nodes ∩ V_r``."""
        keep = self._nodes & frozenset(nodes)
        edges = [e for e in self._edges if e[0] in keep and e[1] in keep]
        return Topology(keep, edges)

    def ball(self, center: NodeId, radius: int) -> FrozenSet[NodeId]:
        """Return the ``radius``-neighbourhood ``N^radius(center)`` (including the centre).

        Used to express the paper's "α-neighbourhood of v is static" conditions.
        """
        if center not in self._nodes:
            return frozenset()
        if radius < 0:
            raise TopologyError(f"radius must be >= 0, got {radius}")
        frontier = {center}
        seen = {center}
        for _ in range(radius):
            nxt: set[NodeId] = set()
            for u in frontier:
                nxt.update(self._adjacency.get(u, ()))
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return frozenset(seen)

    def induced_edges(self, nodes: AbstractSet[NodeId]) -> FrozenSet[Edge]:
        """Edges of this topology with both endpoints in ``nodes``."""
        keep = frozenset(nodes)
        return frozenset(e for e in self._edges if e[0] in keep and e[1] in keep)

    def with_edges(
        self,
        add: Iterable[Tuple[NodeId, NodeId]] = (),
        remove: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> "Topology":
        """Return a copy with ``add`` edges inserted and ``remove`` edges deleted."""
        edges = set(self._edges)
        for u, v in remove:
            edges.discard(canonical_edge(u, v))
        for u, v in add:
            edges.add(canonical_edge(u, v))
        return Topology(self._nodes, edges)

    def with_nodes(self, add: Iterable[NodeId]) -> "Topology":
        """Return a copy with extra awake (isolated) nodes added."""
        return Topology(self._nodes | frozenset(int(v) for v in add), self._edges)

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self._edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n={self.num_nodes}, m={self.num_edges})"

    def restricted_equals(self, other: "Topology", nodes: AbstractSet[NodeId]) -> bool:
        """Whether this topology and ``other`` agree on the subgraph induced by ``nodes``.

        This is the predicate ``G_l[N^α(v)] = G_{l'}[N^α(v)]`` used by the
        locally-static guarantees (Definition 3.3, B.2).
        """
        keep = frozenset(nodes)
        if (self._nodes & keep) != (other._nodes & keep):
            return False
        return self.induced_edges(keep) == other.induced_edges(keep)

    # -- conversions ------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (for analysis / plotting)."""
        g = nx.Graph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self._edges)
        return g


def empty_topology(nodes: Iterable[NodeId] = ()) -> Topology:
    """Return a topology with the given awake nodes and no edges."""
    return Topology(nodes, ())


def topology_from_networkx(graph: nx.Graph) -> Topology:
    """Build a :class:`Topology` from a networkx graph (node labels must be ints)."""
    return Topology(graph.nodes(), graph.edges())
