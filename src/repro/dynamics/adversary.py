"""Adversary interface and the view of the execution it is allowed to see.

The paper's adversary chooses the graph ``G_r`` at the beginning of every
round.  Its power is graded by *obliviousness* (Section 2):

* a ``ρ``-oblivious adversary does not know the random bits of the last ``ρ``
  rounds when choosing ``G_r`` — in the simulator this translates to "may
  only inspect node outputs up to round ``r - ρ``" (outputs of later rounds
  already depend on later randomness);
* an *adaptive offline* adversary knows all random bits in advance.  A
  single-process simulator cannot hand out future randomness without
  replaying, so the strongest adversary we emulate is *fully adaptive
  online*: it sees every past output (up to round ``r - 1``) **and** may
  inspect the algorithm's internal state through
  :meth:`AdversaryView.algorithm_state`.  Every attack used by the paper's
  remarks (inserting a conflict edge against the current colouring, cutting
  the edge over which a fresh MIS node would notify its neighbour) only needs
  this online power, so the distinction does not weaken the experiments; it
  is documented in DESIGN.md.

Since the delta-engine refactor, :meth:`Adversary.step` may return either a
full :class:`~repro.dynamics.topology.Topology` snapshot (the original
contract) or a :class:`~repro.dynamics.topology.TopologyDelta` describing the
changes relative to the previous round — the round-cost of a delta-emitting
adversary is proportional to the amount of change, not the graph size.  See
:class:`IncrementalAdversary` for the bookkeeping that makes delta emission
safe under composition.

Concrete adversaries live in :mod:`repro.dynamics.adversaries`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle / optional-dep guard
    from repro.kernel.plan import KernelPlan

from repro.errors import AdversaryError
from repro.types import Assignment, Round
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.dynamics.topology import Topology, TopologyDelta

__all__ = [
    "Adversary",
    "AdversaryView",
    "IncrementalAdversary",
    "StepResult",
    "ADAPTIVE_OFFLINE",
    "FULLY_OBLIVIOUS",
    "default_delta_emission",
    "set_default_delta_emission",
    "delta_emission",
]

#: What :meth:`Adversary.step` may return: a full snapshot, or the change set
#: relative to the previous round's topology.
StepResult = Union[Topology, TopologyDelta]

#: Obliviousness value meaning "the adversary sees everything available"
#: (the strongest adversary the simulator can emulate; see module docstring).
ADAPTIVE_OFFLINE = 0

#: Obliviousness value meaning "the adversary never looks at the execution".
FULLY_OBLIVIOUS = 10**9


class AdversaryView:
    """Read-only, obliviousness-filtered view of the execution so far.

    Instances are created by the simulator once per round and handed to
    :meth:`Adversary.step`.  ``round_index`` is the round whose graph the
    adversary is about to provide; outputs are available only up to round
    ``round_index - obliviousness`` (and never beyond ``round_index - 1``).
    """

    def __init__(
        self,
        *,
        n: int,
        round_index: Round,
        obliviousness: int,
        topologies: Union[Sequence[Topology], DynamicGraph],
        outputs: Sequence[Assignment],
        state_provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        self._n = n
        self._round_index = round_index
        self._obliviousness = max(0, int(obliviousness))
        # Either an in-memory sequence (tests, ad-hoc views) or the trace's
        # DynamicGraph, which the simulator passes so building a view is O(1)
        # instead of copying the full history every round.
        self._topologies = topologies
        self._outputs = outputs
        self._state_provider = state_provider

    @property
    def n(self) -> int:
        """Globally known upper bound on the number of nodes."""
        return self._n

    @property
    def round_index(self) -> Round:
        """The round ``r`` whose graph is being chosen."""
        return self._round_index

    @property
    def obliviousness(self) -> int:
        """The ρ used to filter this view."""
        return self._obliviousness

    # -- topology history (the adversary chose these itself) ----------------

    def previous_topology(self) -> Optional[Topology]:
        """``G_{r-1}`` or ``None`` before the first round (O(1))."""
        if isinstance(self._topologies, DynamicGraph):
            return self._topologies.latest_topology()
        return self._topologies[-1] if self._topologies else None

    def topology_history(self) -> Sequence[Topology]:
        """All previously provided topologies ``G_1 … G_{r-1}``.

        With a delta-encoded trace this materialises every round — prefer
        :meth:`previous_topology` on hot paths.
        """
        if isinstance(self._topologies, DynamicGraph):
            return self._topologies.topologies()
        return tuple(self._topologies)

    # -- output history (filtered by obliviousness) --------------------------

    def visible_rounds(self) -> int:
        """Number of rounds whose outputs the adversary may inspect."""
        limit = self._round_index - max(1, self._obliviousness)
        return max(0, min(len(self._outputs), limit))

    def output_history(self) -> Sequence[Assignment]:
        """Outputs of rounds ``1 … visible_rounds()`` (possibly empty)."""
        return tuple(self._outputs[: self.visible_rounds()])

    def latest_visible_outputs(self) -> Optional[Assignment]:
        """The most recent output vector the adversary is allowed to see."""
        k = self.visible_rounds()
        return self._outputs[k - 1] if k > 0 else None

    # -- adaptive state access -----------------------------------------------

    def algorithm_state(self) -> Any:
        """Internal algorithm state (adaptive adversaries only).

        Raises
        ------
        AdversaryError
            If the adversary is not adaptive (``obliviousness > 0``) or the
            simulator did not expose state.
        """
        if self._obliviousness > ADAPTIVE_OFFLINE:
            raise AdversaryError(
                "only adaptive adversaries (obliviousness == 0) may inspect algorithm state"
            )
        if self._state_provider is None:
            raise AdversaryError("the simulator did not expose algorithm state")
        return self._state_provider()


class Adversary(ABC):
    """Produces the communication graph of every round.

    Subclasses must set :attr:`obliviousness` (``ρ``) truthfully: the
    simulator uses it to filter the :class:`AdversaryView`, so an adversary
    cannot accidentally see more than its declared class allows.
    """

    #: Declared obliviousness ρ.  ``ADAPTIVE_OFFLINE`` (0) = adaptive.
    obliviousness: int = 2

    @abstractmethod
    def step(self, view: AdversaryView) -> StepResult:
        """Return ``G_r`` for ``r = view.round_index``.

        The result is either a full :class:`~repro.dynamics.topology.Topology`
        snapshot, or a :class:`~repro.dynamics.topology.TopologyDelta` that the
        simulator applies to the previous round's topology (``G_0`` is the
        empty graph).  A delta must be *exact* relative to ``G_{r-1}``: added
        edges/nodes absent before, removed edges present before (the simulator
        rejects inexact deltas).  Either way the resulting awake node set must
        contain every node that was awake in the previous round (checked by
        the simulator's dynamic graph).

        Adversaries that keep incremental state should derive from
        :class:`IncrementalAdversary`, which tracks whether the delta chain to
        the previous round is intact (and falls back to a full snapshot when
        it is not, e.g. on round 1 or right after a
        :class:`~repro.dynamics.adversaries.composite.PhaseAdversary` switch).
        """

    def reset(self) -> None:
        """Reset internal state so the adversary can be reused across runs."""
        return None

    def kernel_plan(self) -> Optional["KernelPlan"]:
        """An array-engine execution plan, or ``None`` (the default).

        Adversaries whose behaviour fits a static edge universe plus
        per-round presence masks (see :class:`repro.kernel.plan.KernelPlan`)
        may return a plan here; the simulator's ``delivery="kernel"`` path
        then bypasses :meth:`step` entirely while consuming identical
        randomness.  Returning ``None`` keeps the adversary on the classic
        step path (a kernel-mode run then uses the generic CSR engine).
        """
        return None

    # -- description helpers (used by the experiment harness / reports) ------

    def describe(self) -> str:
        """One-line human-readable description for experiment reports."""
        return f"{type(self).__name__}(rho={self.obliviousness})"


# ---------------------------------------------------------------------------
# delta emission
# ---------------------------------------------------------------------------

#: Process-wide default for :class:`IncrementalAdversary` instances that do
#: not pass ``emit_deltas`` explicitly.  The snapshot path is kept primarily
#: for equivalence testing and benchmarking against the delta path.
_EMIT_DELTAS_DEFAULT = True


def default_delta_emission() -> bool:
    """The process-wide default for ``emit_deltas`` (see :func:`delta_emission`)."""
    return _EMIT_DELTAS_DEFAULT


def set_default_delta_emission(enabled: bool) -> bool:
    """Set the process-wide ``emit_deltas`` default; returns the previous value."""
    global _EMIT_DELTAS_DEFAULT
    previous = _EMIT_DELTAS_DEFAULT
    _EMIT_DELTAS_DEFAULT = bool(enabled)
    return previous


@contextmanager
def delta_emission(enabled: bool):
    """Context manager forcing the snapshot (``False``) or delta (``True``) path.

    Only affects :class:`IncrementalAdversary` instances *constructed* inside
    the context that did not pass ``emit_deltas`` explicitly.  Used by the
    equivalence tests, the engine benchmark and the ``delta-vs-snapshot``
    contract of ``repro verify`` (:mod:`repro.verify.contracts`), which runs
    every registered adversary on both paths and gates on byte-identical
    traces.
    """
    previous = set_default_delta_emission(enabled)
    try:
        yield
    finally:
        set_default_delta_emission(previous)


class IncrementalAdversary(Adversary):
    """Base class for adversaries that can emit :class:`TopologyDelta` rounds.

    Emitting a delta is only sound when the adversary knows the previous
    round's topology exactly — i.e. when *it* produced that topology one round
    earlier.  This base class tracks that "delta chain": subclasses call
    :meth:`_delta_chain_intact` exactly once at the top of :meth:`step` and
    emit a full snapshot whenever it returns ``False`` (round 1, after a
    phase switch, or when driven out of order by a test).

    Parameters
    ----------
    emit_deltas:
        ``True``/``False`` forces the delta/snapshot path; ``None`` (default)
        follows the process-wide default (see :func:`delta_emission`).
    """

    def __init__(self, *, emit_deltas: Optional[bool] = None) -> None:
        self._emit_deltas = (
            default_delta_emission() if emit_deltas is None else bool(emit_deltas)
        )
        self._last_step_round: Optional[Round] = None

    @property
    def emits_deltas(self) -> bool:
        """Whether this instance is on the delta path."""
        return self._emit_deltas

    def reset(self) -> None:
        """Reset the delta chain (subclasses must call ``super().reset()``)."""
        self._last_step_round = None

    def _delta_chain_intact(self, view: AdversaryView) -> bool:
        """Whether a delta relative to ``view.previous_topology()`` is sound.

        Must be called exactly once per :meth:`step` (it records the round as
        this adversary's most recent step).
        """
        intact = (
            self._emit_deltas
            and self._last_step_round == view.round_index - 1
            and view.previous_topology() is not None
        )
        self._last_step_round = view.round_index
        return intact
