"""Adversary interface and the view of the execution it is allowed to see.

The paper's adversary chooses the graph ``G_r`` at the beginning of every
round.  Its power is graded by *obliviousness* (Section 2):

* a ``ρ``-oblivious adversary does not know the random bits of the last ``ρ``
  rounds when choosing ``G_r`` — in the simulator this translates to "may
  only inspect node outputs up to round ``r - ρ``" (outputs of later rounds
  already depend on later randomness);
* an *adaptive offline* adversary knows all random bits in advance.  A
  single-process simulator cannot hand out future randomness without
  replaying, so the strongest adversary we emulate is *fully adaptive
  online*: it sees every past output (up to round ``r - 1``) **and** may
  inspect the algorithm's internal state through
  :meth:`AdversaryView.algorithm_state`.  Every attack used by the paper's
  remarks (inserting a conflict edge against the current colouring, cutting
  the edge over which a fresh MIS node would notify its neighbour) only needs
  this online power, so the distinction does not weaken the experiments; it
  is documented in DESIGN.md.

Concrete adversaries live in :mod:`repro.dynamics.adversaries`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Sequence

from repro.errors import AdversaryError
from repro.types import Assignment, Round
from repro.dynamics.topology import Topology

__all__ = ["Adversary", "AdversaryView", "ADAPTIVE_OFFLINE", "FULLY_OBLIVIOUS"]

#: Obliviousness value meaning "the adversary sees everything available"
#: (the strongest adversary the simulator can emulate; see module docstring).
ADAPTIVE_OFFLINE = 0

#: Obliviousness value meaning "the adversary never looks at the execution".
FULLY_OBLIVIOUS = 10**9


class AdversaryView:
    """Read-only, obliviousness-filtered view of the execution so far.

    Instances are created by the simulator once per round and handed to
    :meth:`Adversary.step`.  ``round_index`` is the round whose graph the
    adversary is about to provide; outputs are available only up to round
    ``round_index - obliviousness`` (and never beyond ``round_index - 1``).
    """

    def __init__(
        self,
        *,
        n: int,
        round_index: Round,
        obliviousness: int,
        topologies: Sequence[Topology],
        outputs: Sequence[Assignment],
        state_provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        self._n = n
        self._round_index = round_index
        self._obliviousness = max(0, int(obliviousness))
        self._topologies = topologies
        self._outputs = outputs
        self._state_provider = state_provider

    @property
    def n(self) -> int:
        """Globally known upper bound on the number of nodes."""
        return self._n

    @property
    def round_index(self) -> Round:
        """The round ``r`` whose graph is being chosen."""
        return self._round_index

    @property
    def obliviousness(self) -> int:
        """The ρ used to filter this view."""
        return self._obliviousness

    # -- topology history (the adversary chose these itself) ----------------

    def previous_topology(self) -> Optional[Topology]:
        """``G_{r-1}`` or ``None`` before the first round."""
        return self._topologies[-1] if self._topologies else None

    def topology_history(self) -> Sequence[Topology]:
        """All previously provided topologies ``G_1 … G_{r-1}``."""
        return tuple(self._topologies)

    # -- output history (filtered by obliviousness) --------------------------

    def visible_rounds(self) -> int:
        """Number of rounds whose outputs the adversary may inspect."""
        limit = self._round_index - max(1, self._obliviousness)
        return max(0, min(len(self._outputs), limit))

    def output_history(self) -> Sequence[Assignment]:
        """Outputs of rounds ``1 … visible_rounds()`` (possibly empty)."""
        return tuple(self._outputs[: self.visible_rounds()])

    def latest_visible_outputs(self) -> Optional[Assignment]:
        """The most recent output vector the adversary is allowed to see."""
        k = self.visible_rounds()
        return self._outputs[k - 1] if k > 0 else None

    # -- adaptive state access -----------------------------------------------

    def algorithm_state(self) -> Any:
        """Internal algorithm state (adaptive adversaries only).

        Raises
        ------
        AdversaryError
            If the adversary is not adaptive (``obliviousness > 0``) or the
            simulator did not expose state.
        """
        if self._obliviousness > ADAPTIVE_OFFLINE:
            raise AdversaryError(
                "only adaptive adversaries (obliviousness == 0) may inspect algorithm state"
            )
        if self._state_provider is None:
            raise AdversaryError("the simulator did not expose algorithm state")
        return self._state_provider()


class Adversary(ABC):
    """Produces the communication graph of every round.

    Subclasses must set :attr:`obliviousness` (``ρ``) truthfully: the
    simulator uses it to filter the :class:`AdversaryView`, so an adversary
    cannot accidentally see more than its declared class allows.
    """

    #: Declared obliviousness ρ.  ``ADAPTIVE_OFFLINE`` (0) = adaptive.
    obliviousness: int = 2

    @abstractmethod
    def step(self, view: AdversaryView) -> Topology:
        """Return ``G_r`` for ``r = view.round_index``.

        The returned topology's awake node set must contain every node that
        was awake in the previous round (checked by the simulator).
        """

    def reset(self) -> None:
        """Reset internal state so the adversary can be reused across runs."""
        return None

    # -- description helpers (used by the experiment harness / reports) ------

    def describe(self) -> str:
        """One-line human-readable description for experiment reports."""
        return f"{type(self).__name__}(rho={self.obliviousness})"
