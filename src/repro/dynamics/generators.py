"""Static base-topology generators.

These produce the "substrate" graphs that churn models and adversaries then
animate.  All generators take an explicit :class:`numpy.random.Generator` (or
none for deterministic families) and return a
:class:`~repro.dynamics.topology.Topology` over the node ids ``0 … n-1``.

The families cover the settings the paper motivates (wireless/ad-hoc networks
→ random geometric graphs; overlay / peer-to-peer networks → Gnp, power-law;
structured testbeds → rings, grids, tori, cliques, stars, regular graphs).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, FrozenSet, Optional

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge
from repro.utils.validation import check_positive, check_probability
from repro.dynamics.topology import Topology, topology_from_networkx

__all__ = [
    "gnp",
    "random_regular",
    "random_geometric",
    "barabasi_albert",
    "ring",
    "path",
    "star",
    "clique",
    "grid",
    "torus",
    "empty",
    "by_name",
    "GENERATORS",
]


def _require_n(n: int) -> int:
    if not isinstance(n, int) or n < 1:
        raise ConfigurationError(f"n must be a positive integer, got {n!r}")
    return n


def empty(n: int) -> Topology:
    """``n`` awake nodes, no edges."""
    return Topology(range(_require_n(n)), ())


def gnp(n: int, p: float, rng: np.random.Generator) -> Topology:
    """Erdős–Rényi ``G(n, p)`` graph."""
    _require_n(n)
    check_probability("p", p)
    seed = int(rng.integers(0, 2**31 - 1))
    return topology_from_networkx(nx.fast_gnp_random_graph(n, p, seed=seed))


def random_regular(n: int, degree: int, rng: np.random.Generator) -> Topology:
    """Random ``degree``-regular graph (``n * degree`` must be even)."""
    _require_n(n)
    if degree < 0 or degree >= n:
        raise ConfigurationError(f"degree must be in [0, n), got {degree}")
    if (n * degree) % 2 != 0:
        raise ConfigurationError("n * degree must be even for a regular graph")
    seed = int(rng.integers(0, 2**31 - 1))
    return topology_from_networkx(nx.random_regular_graph(degree, n, seed=seed))


def random_geometric(n: int, radius: float, rng: np.random.Generator) -> Topology:
    """Random geometric graph on the unit square with connection ``radius``."""
    _require_n(n)
    check_positive("radius", radius)
    positions = rng.random((n, 2))
    return geometric_from_positions(positions, radius)


def geometric_edges_from_positions(positions: np.ndarray, radius: float) -> FrozenSet[Edge]:
    """The canonical edge set connecting every pair within distance ``radius``.

    Shared by :func:`geometric_from_positions` and the mobility model's delta
    path (which only needs the edge set, not a full topology).
    """
    n = positions.shape[0]
    edges = []
    r2 = float(radius) ** 2
    # O(n^2) pair scan; fine for the experiment scales (n <= a few thousand).
    diffs_x = positions[:, 0]
    diffs_y = positions[:, 1]
    for u in range(n):
        dx = diffs_x[u + 1 :] - diffs_x[u]
        dy = diffs_y[u + 1 :] - diffs_y[u]
        close = np.nonzero(dx * dx + dy * dy <= r2)[0]
        for offset in close:
            edges.append((u, u + 1 + int(offset)))
    return frozenset(edges)


def geometric_from_positions(positions: np.ndarray, radius: float) -> Topology:
    """Connect every pair of points within Euclidean distance ``radius``.

    Shared by :func:`random_geometric` and the mobility model so both produce
    identical graphs for identical positions.
    """
    return Topology(range(positions.shape[0]), geometric_edges_from_positions(positions, radius))


def barabasi_albert(n: int, m: int, rng: np.random.Generator) -> Topology:
    """Barabási–Albert preferential-attachment graph with ``m`` edges per new node."""
    _require_n(n)
    if m < 1 or m >= n:
        raise ConfigurationError(f"m must be in [1, n), got {m}")
    seed = int(rng.integers(0, 2**31 - 1))
    return topology_from_networkx(nx.barabasi_albert_graph(n, m, seed=seed))


def ring(n: int) -> Topology:
    """Cycle ``C_n`` (a single node gives an isolated node, two nodes a single edge)."""
    _require_n(n)
    if n == 1:
        return empty(1)
    if n == 2:
        return Topology(range(2), [(0, 1)])
    return Topology(range(n), [(i, (i + 1) % n) for i in range(n)])


def path(n: int) -> Topology:
    """Path ``P_n``."""
    _require_n(n)
    return Topology(range(n), [(i, i + 1) for i in range(n - 1)])


def star(n: int) -> Topology:
    """Star with centre 0 and ``n - 1`` leaves."""
    _require_n(n)
    return Topology(range(n), [(0, i) for i in range(1, n)])


def clique(n: int) -> Topology:
    """Complete graph ``K_n``."""
    _require_n(n)
    return Topology(range(n), itertools.combinations(range(n), 2))


def grid(rows: int, cols: int) -> Topology:
    """``rows × cols`` grid; node ``(i, j)`` has id ``i * cols + j``."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    edges = []
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            if j + 1 < cols:
                edges.append((v, v + 1))
            if i + 1 < rows:
                edges.append((v, v + cols))
    return Topology(range(rows * cols), edges)


def torus(rows: int, cols: int) -> Topology:
    """``rows × cols`` torus (grid with wrap-around edges)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    edges = set()
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            right = i * cols + (j + 1) % cols
            down = ((i + 1) % rows) * cols + j
            if right != v:
                edges.add((v, right))
            if down != v:
                edges.add((v, down))
    return Topology(range(rows * cols), edges)


def _regular8(n: int, rng: np.random.Generator) -> Topology:
    """Random regular graph of degree ≈ 8, adjusting degree so ``n·d`` is even."""
    if n <= 9:
        return gnp(n, 0.5, rng)
    degree = 8
    if (n * degree) % 2 != 0:  # n odd and degree odd cannot happen for degree=8
        degree -= 1
    return random_regular(n, degree, rng)


def _square_grid(n: int, rng: np.random.Generator) -> Topology:
    """Largest square grid with at most ``n`` nodes, padded with isolated nodes to ``n``."""
    side = max(1, int(math.isqrt(n)))
    base = grid(side, side)
    return base.with_nodes(range(side * side, n))


#: Registry of named generator factories used by the experiment harness.
#: Each entry maps a name to a callable ``(n, rng) -> Topology`` with sensible
#: default parameters for that family.
GENERATORS: Dict[str, Callable[[int, np.random.Generator], Topology]] = {
    "gnp_sparse": lambda n, rng: gnp(n, min(1.0, 8.0 / max(n - 1, 1)), rng),
    "gnp_dense": lambda n, rng: gnp(n, min(1.0, 0.2), rng),
    "regular8": _regular8,
    "geometric": lambda n, rng: random_geometric(n, math.sqrt(10.0 / max(n, 1) / math.pi), rng),
    "ba3": lambda n, rng: barabasi_albert(n, min(3, max(1, n - 1)), rng) if n > 3 else clique(n),
    "ring": lambda n, rng: ring(n),
    "grid": _square_grid,
    "star": lambda n, rng: star(n),
    "clique": lambda n, rng: clique(n),
    "empty": lambda n, rng: empty(n),
}


def by_name(name: str, n: int, rng: Optional[np.random.Generator] = None) -> Topology:
    """Generate the named topology family at size ``n``.

    Parameters
    ----------
    name:
        A key of :data:`GENERATORS`.
    n:
        Number of nodes.
    rng:
        Randomness source; required for the random families, defaults to a
        fixed-seed generator so analysis scripts stay reproducible.
    """
    if name not in GENERATORS:
        raise ConfigurationError(
            f"unknown generator {name!r}; available: {sorted(GENERATORS)}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    return GENERATORS[name](n, rng)
