"""Oblivious adversaries that replay pre-computed graph sequences.

These stay on the snapshot side of the :meth:`~repro.dynamics.adversary.Adversary.step`
contract: their topologies are precomputed objects, so re-returning them costs
nothing — and when the *same* object is returned twice in a row the simulator
recognises it as an empty delta and stores the round incrementally anyway.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AdversaryError
from repro.dynamics.adversary import Adversary, AdversaryView, FULLY_OBLIVIOUS
from repro.dynamics.topology import Topology
from repro.dynamics.wakeup import AllAwake, WakeupSchedule

__all__ = ["ScriptedAdversary", "StaticAdversary"]


class ScriptedAdversary(Adversary):
    """Replays a fixed list of topologies; fully oblivious by construction.

    Parameters
    ----------
    topologies:
        The graphs ``G_1, G_2, …``; if the run is longer than the script, the
        behaviour is controlled by ``repeat_last``.
    repeat_last:
        If true (default) the last topology is repeated forever once the
        script is exhausted; otherwise running past the script raises.
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(self, topologies: Sequence[Topology], *, repeat_last: bool = True) -> None:
        if not topologies:
            raise AdversaryError("ScriptedAdversary needs at least one topology")
        self._topologies = tuple(topologies)
        self._repeat_last = repeat_last

    def step(self, view: AdversaryView) -> Topology:
        index = view.round_index - 1
        if index < len(self._topologies):
            return self._topologies[index]
        if self._repeat_last:
            return self._topologies[-1]
        raise AdversaryError(
            f"script exhausted: round {view.round_index} > {len(self._topologies)} scripted rounds"
        )

    def describe(self) -> str:
        return f"ScriptedAdversary(len={len(self._topologies)})"


class StaticAdversary(Adversary):
    """Keeps a single topology forever (optionally with gradual wake-up).

    With a wake-up schedule the round-``r`` graph is the base topology induced
    on the currently awake nodes; without one, the base graph is returned
    unchanged every round — the classic *static network* special case in which
    the dynamic guarantees must collapse to the static ones.
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(self, base: Topology, *, wakeup: Optional[WakeupSchedule] = None) -> None:
        self._base = base
        self._wakeup = wakeup if wakeup is not None else AllAwake(0)
        self._use_wakeup = wakeup is not None

    def step(self, view: AdversaryView) -> Topology:
        if not self._use_wakeup:
            return self._base
        awake = self._wakeup.awake_at(view.round_index) & self._base.nodes
        return self._base.subgraph(awake)

    def kernel_plan(self):
        """Array-engine plan: fixed universe, constant all-present mask.

        The same mask object is returned every round so the engine's identity
        short-circuit recognises fully-static rounds; wake-up filtering is the
        engine's job (``cumulative_awake=False`` reproduces the exact
        ``awake_at(r) & base.nodes`` induced-subgraph semantics of
        :meth:`step`).
        """
        from repro.kernel.plan import KernelPlan

        mask = np.ones(self._base.num_edges, dtype=bool)
        return KernelPlan(
            nodes=self._base.nodes,
            universe_edges=tuple(sorted(self._base.edges)),
            advance=lambda round_index: mask,
            wakeup=self._wakeup if self._use_wakeup else None,
            cumulative_awake=False,
        )

    def describe(self) -> str:
        return f"StaticAdversary(n={self._base.num_nodes}, m={self._base.num_edges})"
