"""Adversaries built by composing other adversaries in time."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.dynamics.adversary import (
    Adversary,
    AdversaryView,
    IncrementalAdversary,
    StepResult,
)
from repro.dynamics.topology import EMPTY_DELTA, Topology, TopologyDelta, empty_topology

__all__ = ["PhaseAdversary", "FreezeAfterAdversary"]


def _materialise(view: AdversaryView, result: StepResult) -> Topology:
    """Resolve a step result to the full round topology."""
    if isinstance(result, TopologyDelta):
        previous = view.previous_topology()
        if previous is None:
            previous = empty_topology()
        return previous.apply(result)
    return result


class PhaseAdversary(Adversary):
    """Switches between adversaries at fixed round boundaries.

    ``phases`` is a sequence of ``(duration, adversary)`` pairs; the last
    phase may have duration ``None`` meaning "until the end of the run".
    The declared obliviousness is the minimum over the phases (the adversary
    is only as oblivious as its least oblivious phase).

    Step results (snapshots or deltas) are forwarded verbatim: each inner
    adversary's own delta-chain tracking notices that it did not produce the
    previous round's topology right after a phase switch and resynchronises
    with a full snapshot (see
    :class:`~repro.dynamics.adversary.IncrementalAdversary`).
    """

    def __init__(self, phases: Sequence[Tuple[Optional[int], Adversary]]) -> None:
        if not phases:
            raise ConfigurationError("PhaseAdversary needs at least one phase")
        for duration, _ in phases[:-1]:
            if duration is None or duration < 1:
                raise ConfigurationError(
                    "all phases except the last need a positive duration"
                )
        last_duration = phases[-1][0]
        if last_duration is not None and last_duration < 1:
            raise ConfigurationError("the last phase duration must be positive or None")
        self._phases = list(phases)
        self.obliviousness = min(adv.obliviousness for _, adv in phases)

    def reset(self) -> None:
        for _, adv in self._phases:
            adv.reset()

    def _phase_for(self, round_index: int) -> Adversary:
        remaining = round_index
        for duration, adv in self._phases:
            if duration is None or remaining <= duration:
                return adv
            remaining -= duration
        return self._phases[-1][1]

    def step(self, view: AdversaryView) -> StepResult:
        return self._phase_for(view.round_index).step(view)

    def describe(self) -> str:
        inner = ", ".join(
            f"{duration if duration is not None else '∞'}×{adv.describe()}"
            for duration, adv in self._phases
        )
        return f"PhaseAdversary({inner})"


class FreezeAfterAdversary(IncrementalAdversary):
    """Runs an inner adversary until ``freeze_round`` and then freezes the graph.

    From round ``freeze_round`` on, the topology of round ``freeze_round - 1``
    (or the inner adversary's round-``freeze_round`` topology if nothing was
    produced yet) is repeated forever.  Used by experiment E8 to measure how
    quickly SMis decides every node once the whole graph becomes static after
    a period of churn.

    Once frozen, every round on the delta path is an *empty* delta — the
    cheapest round the engine can execute.
    """

    def __init__(
        self,
        inner: Adversary,
        freeze_round: int,
        *,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        if freeze_round < 1:
            raise ConfigurationError(f"freeze_round must be >= 1, got {freeze_round}")
        self._inner = inner
        self._freeze_round = freeze_round
        self._frozen: Optional[Topology] = None
        self.obliviousness = inner.obliviousness

    @property
    def freeze_round(self) -> int:
        """The first round whose graph is frozen."""
        return self._freeze_round

    def reset(self) -> None:
        super().reset()
        self._inner.reset()
        self._frozen = None

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        if view.round_index < self._freeze_round or self._frozen is None:
            result = self._inner.step(view)
            self._frozen = _materialise(view, result)
            return result
        if chain_intact:
            return EMPTY_DELTA
        return self._frozen

    def describe(self) -> str:
        return f"FreezeAfter(round={self._freeze_round}, inner={self._inner.describe()})"
