"""Stochastic (oblivious) adversaries: edge churn and mobility."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dynamics.adversary import Adversary, AdversaryView, FULLY_OBLIVIOUS
from repro.dynamics.churn import ChurnProcess
from repro.dynamics.mobility import RandomWaypointMobility
from repro.dynamics.topology import Topology
from repro.dynamics.wakeup import WakeupSchedule

__all__ = ["ChurnAdversary", "MobilityAdversary"]


class ChurnAdversary(Adversary):
    """Animates a base node set with a :class:`~repro.dynamics.churn.ChurnProcess`.

    The churn process decides which edges exist each round; the (optional)
    wake-up schedule decides which nodes are awake.  Edges touching sleeping
    nodes are dropped.  The adversary never looks at the execution, so it is
    fully oblivious (and in particular 2-oblivious, as required by the DMis
    analysis).
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(
        self,
        nodes: int,
        churn: ChurnProcess,
        rng: np.random.Generator,
        *,
        wakeup: Optional[WakeupSchedule] = None,
    ) -> None:
        self._n = int(nodes)
        self._churn = churn
        self._rng = rng
        self._wakeup = wakeup

    def reset(self) -> None:
        self._churn.reset()

    def step(self, view: AdversaryView) -> Topology:
        edges = self._churn.step(view.round_index, self._rng)
        if self._wakeup is None:
            awake = frozenset(range(self._n))
        else:
            awake = self._wakeup.awake_at(view.round_index) & frozenset(range(self._n))
            prev = view.previous_topology()
            if prev is not None:
                awake = awake | prev.nodes
        kept = [e for e in edges if e[0] in awake and e[1] in awake]
        return Topology(awake, kept)

    def describe(self) -> str:
        return f"ChurnAdversary(n={self._n}, churn={type(self._churn).__name__})"


class MobilityAdversary(Adversary):
    """Random-waypoint mobility: the graph is the geometric graph of moving nodes."""

    obliviousness = FULLY_OBLIVIOUS

    def __init__(
        self,
        mobility: RandomWaypointMobility,
        *,
        wakeup: Optional[WakeupSchedule] = None,
    ) -> None:
        self._mobility = mobility
        self._wakeup = wakeup

    def step(self, view: AdversaryView) -> Topology:
        topo = self._mobility.step()
        if self._wakeup is None:
            return topo
        awake = self._wakeup.awake_at(view.round_index) & topo.nodes
        prev = view.previous_topology()
        if prev is not None:
            awake = awake | prev.nodes
        return topo.subgraph(awake)

    def describe(self) -> str:
        return "MobilityAdversary(random-waypoint)"
