"""Stochastic (oblivious) adversaries: edge churn and mobility.

Both adversaries emit :class:`~repro.dynamics.topology.TopologyDelta` change
sets by default (see :class:`~repro.dynamics.adversary.IncrementalAdversary`),
falling back to full snapshots on round 1, after a phase switch, or when
constructed with ``emit_deltas=False``.  The snapshot and delta paths consume
identical randomness, so a run is bit-reproducible on either path.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

import numpy as np

from repro.types import Edge, NodeId
from repro.dynamics.adversary import (
    AdversaryView,
    FULLY_OBLIVIOUS,
    IncrementalAdversary,
    StepResult,
)
from repro.dynamics.churn import ChurnProcess, advance_churn
from repro.dynamics.mobility import RandomWaypointMobility
from repro.dynamics.topology import Topology, TopologyDelta
from repro.dynamics.wakeup import WakeupSchedule

__all__ = ["ChurnAdversary", "MobilityAdversary"]

_NO_EDGES: FrozenSet[Edge] = frozenset()
_NO_NODES: FrozenSet[NodeId] = frozenset()


class ChurnAdversary(IncrementalAdversary):
    """Animates a base node set with a :class:`~repro.dynamics.churn.ChurnProcess`.

    The churn process decides which edges exist each round; the (optional)
    wake-up schedule decides which nodes are awake.  Edges touching sleeping
    nodes are dropped.  The adversary never looks at the execution, so it is
    fully oblivious (and in particular 2-oblivious, as required by the DMis
    analysis).

    On the delta path the per-round Python work is proportional to the number
    of churned edges (plus, on rounds with wake-ups, one scan over the present
    edge set to attach the newly awake nodes' edges).
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(
        self,
        nodes: int,
        churn: ChurnProcess,
        rng: np.random.Generator,
        *,
        wakeup: Optional[WakeupSchedule] = None,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        self._n = int(nodes)
        self._all_nodes = frozenset(range(self._n))
        self._churn = churn
        self._rng = rng
        self._wakeup = wakeup
        #: Churn-level present edges, maintained from the process's deltas.
        self._present: FrozenSet[Edge] = frozenset()

    def reset(self) -> None:
        super().reset()
        self._churn.reset()
        self._present = frozenset()

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        added, removed, self._present = advance_churn(
            self._churn, self._present, view.round_index, self._rng
        )

        if self._wakeup is None:
            awake = self._all_nodes
        else:
            awake = self._wakeup.awake_at(view.round_index) & self._all_nodes
            prev = view.previous_topology()
            if prev is not None:
                awake = awake | prev.nodes

        if not chain_intact:
            kept = [e for e in self._present if e[0] in awake and e[1] in awake]
            return Topology(awake, kept)

        old_awake = view.previous_topology().nodes
        if self._wakeup is None:
            # Every node has been awake since round 1.
            newly_awake = _NO_NODES
        else:
            newly_awake = awake - old_awake
        # Only changes among previously awake endpoints were visible last round.
        removed_emitted = frozenset(
            e for e in removed if e[0] in old_awake and e[1] in old_awake
        )
        if newly_awake:
            added_set: Set[Edge] = {
                e for e in added if e[0] in awake and e[1] in awake
            }
            # Edges of freshly woken nodes were dropped while they slept; a
            # single scan over the present set (only on wake-up rounds)
            # attaches them now.
            for e in self._present:
                if (e[0] in newly_awake or e[1] in newly_awake) and (
                    e[0] in awake and e[1] in awake
                ):
                    added_set.add(e)
            added_emitted = frozenset(added_set)
        else:
            added_emitted = frozenset(
                e for e in added if e[0] in awake and e[1] in awake
            )
        return TopologyDelta(
            added_nodes=newly_awake,
            added_edges=added_emitted,
            removed_edges=removed_emitted,
        )

    def kernel_plan(self):
        """Array-engine plan when the churn process supports mask advance.

        Only churn processes exposing ``kernel_universe``/``kernel_advance``
        (currently :class:`~repro.dynamics.churn.MarkovEdgeChurn` and
        :class:`~repro.dynamics.churn.StaticChurn`, hence also
        :class:`~repro.dynamics.churn.FlipChurn`) qualify; those hooks consume
        the adversary RNG identically to :func:`advance_churn`, which keeps
        kernel and classic runs on a shared seed byte-identical.
        """
        churn = self._churn
        universe_of = getattr(churn, "kernel_universe", None)
        advance = getattr(churn, "kernel_advance", None)
        if universe_of is None or advance is None:
            return None
        from repro.kernel.plan import KernelPlan

        rng = self._rng
        return KernelPlan(
            nodes=self._all_nodes,
            universe_edges=universe_of(),
            advance=lambda round_index: advance(round_index, rng),
            wakeup=self._wakeup,
            cumulative_awake=True,
        )

    def describe(self) -> str:
        return f"ChurnAdversary(n={self._n}, churn={type(self._churn).__name__})"


class MobilityAdversary(IncrementalAdversary):
    """Random-waypoint mobility: the graph is the geometric graph of moving nodes.

    On the delta path each round advances the mobility model, computes the new
    edge set and diffs it against the previous round with C-speed frozenset
    operations — no per-round topology construction.
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(
        self,
        mobility: RandomWaypointMobility,
        *,
        wakeup: Optional[WakeupSchedule] = None,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        self._mobility = mobility
        self._all_nodes = frozenset(range(mobility.n))
        self._wakeup = wakeup

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        edges = self._mobility.step_edges()

        if self._wakeup is None:
            awake = self._all_nodes
            emitted = edges
        else:
            awake = self._wakeup.awake_at(view.round_index) & self._all_nodes
            prev = view.previous_topology()
            if prev is not None:
                awake = awake | prev.nodes
            emitted = frozenset(e for e in edges if e[0] in awake and e[1] in awake)

        if not chain_intact:
            return Topology(awake, emitted)

        prev = view.previous_topology()
        newly_awake = _NO_NODES if self._wakeup is None else awake - prev.nodes
        return TopologyDelta(
            added_nodes=newly_awake,
            added_edges=emitted - prev.edges,
            removed_edges=prev.edges - emitted,
        )

    def describe(self) -> str:
        return "MobilityAdversary(random-waypoint)"
