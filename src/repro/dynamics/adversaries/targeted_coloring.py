"""Adaptive adversary that inserts conflict edges against the current colouring.

This is the natural worst-case workload for Corollary 1.2: the guarantee says
that after two nodes are joined by a new edge they may share a colour for at
most ``T = O(log n)`` rounds.  The adversary therefore watches the most recent
output it is allowed to see, picks pairs of *same-coloured, currently
non-adjacent* nodes, and joins them for ``lifetime`` rounds.

DColor / SColor are analysed for an adaptive offline adversary (remark at the
end of Section 4.3), so this attacker is legal for the colouring algorithms;
its declared obliviousness is 1 (it uses outputs of round ``r - 1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.types import Edge, NodeId, canonical_edge
from repro.dynamics.adversary import AdversaryView, IncrementalAdversary, StepResult
from repro.dynamics.topology import Topology, TopologyDelta

__all__ = ["TargetedColoringAdversary"]


class TargetedColoringAdversary(IncrementalAdversary):
    """Insert up to ``attacks_per_round`` monochromatic edges each round.

    Parameters
    ----------
    base:
        Backbone topology that is always present.
    attacks_per_round:
        Number of conflict edges inserted per round (best effort: fewer if
        not enough same-coloured non-adjacent pairs exist).
    lifetime:
        Number of rounds each inserted edge persists.
    rng:
        Randomness used to pick among candidate conflict pairs.
    color_of:
        Optional projection applied to a node's output value to obtain its
        colour (identity by default).  The combined algorithms output plain
        colours so the default is almost always right.
    """

    obliviousness = 1

    def __init__(
        self,
        base: Topology,
        attacks_per_round: int,
        lifetime: int,
        rng: np.random.Generator,
        *,
        color_of=None,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        self._base = base
        self._attacks = max(0, int(attacks_per_round))
        self._lifetime = max(1, int(lifetime))
        self._rng = rng
        self._color_of = color_of if color_of is not None else (lambda value: value)
        self._active: Dict[Edge, int] = {}
        #: Log of (round, edge) conflict insertions, consumed by experiment E3.
        self.attack_log: List[Tuple[int, Edge]] = []

    def reset(self) -> None:
        super().reset()
        self._active.clear()
        self.attack_log.clear()

    # -- helpers -------------------------------------------------------------

    def _conflict_candidates(
        self, outputs, current_edges: frozenset[Edge]
    ) -> List[Edge]:
        by_color: Dict[object, List[NodeId]] = {}
        for v, value in outputs.items():
            if value is None:
                continue
            color = self._color_of(value)
            if color is None:
                continue
            by_color.setdefault(color, []).append(v)
        candidates: List[Edge] = []
        for color, nodes in by_color.items():
            if len(nodes) < 2:
                continue
            nodes_sorted = sorted(nodes)
            # Sample a bounded number of pairs per colour class to keep the
            # per-round cost linear-ish even for large colour classes.
            limit = min(32, len(nodes_sorted) * (len(nodes_sorted) - 1) // 2)
            for _ in range(limit):
                i, j = self._rng.choice(len(nodes_sorted), size=2, replace=False)
                e = canonical_edge(nodes_sorted[int(i)], nodes_sorted[int(j)])
                if e not in current_edges and e not in self._active:
                    candidates.append(e)
        return candidates

    # -- Adversary interface ---------------------------------------------------

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        r = view.round_index
        expired = [e for e, expiry in self._active.items() if expiry < r]
        for e in expired:
            del self._active[e]

        outputs = view.latest_visible_outputs()
        current = frozenset(self._base.edges) | frozenset(self._active)
        attacked: List[Edge] = []
        if outputs and self._attacks > 0:
            candidates = self._conflict_candidates(outputs, current)
            self._rng.shuffle(candidates)
            for e in candidates[: self._attacks]:
                self._active[e] = r + self._lifetime - 1
                self.attack_log.append((r, e))
                attacked.append(e)
        if not chain_intact:
            edges = frozenset(self._base.edges) | frozenset(self._active)
            return Topology(self._base.nodes, edges)
        # An edge that expired and was re-attacked in the same round never
        # left the graph; keep it out of both sides of the delta.
        expired_set = set(expired)
        return TopologyDelta(
            added_edges=frozenset(e for e in attacked if e not in expired_set),
            removed_edges=frozenset(e for e in expired if e not in self._active),
        )

    def describe(self) -> str:
        return (
            f"TargetedColoringAdversary(attacks={self._attacks}, "
            f"lifetime={self._lifetime})"
        )
