"""Concrete adversaries.

Every adversary produces the per-round communication graph ``G_r``.  They
range from fully oblivious replay (:class:`ScriptedAdversary`) over stochastic
churn (:class:`ChurnAdversary`, :class:`MobilityAdversary`) to adaptive,
output-aware attackers (:class:`TargetedColoringAdversary`,
:class:`TargetedMisAdversary`) and structured scenarios used by specific
experiments (:class:`LocallyStaticAdversary`, :class:`PhaseAdversary`).
"""

from repro.dynamics.adversaries.scripted import ScriptedAdversary, StaticAdversary
from repro.dynamics.adversaries.random_churn import ChurnAdversary, MobilityAdversary
from repro.dynamics.adversaries.locally_static import LocallyStaticAdversary
from repro.dynamics.adversaries.targeted_coloring import TargetedColoringAdversary
from repro.dynamics.adversaries.targeted_mis import TargetedMisAdversary
from repro.dynamics.adversaries.composite import PhaseAdversary, FreezeAfterAdversary

__all__ = [
    "ScriptedAdversary",
    "StaticAdversary",
    "ChurnAdversary",
    "MobilityAdversary",
    "LocallyStaticAdversary",
    "TargetedColoringAdversary",
    "TargetedMisAdversary",
    "PhaseAdversary",
    "FreezeAfterAdversary",
]
