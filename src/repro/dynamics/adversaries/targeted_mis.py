"""Adaptive adversaries that attack an MIS computation.

The remark after Lemma 5.2 points out that DMis's progress analysis needs a
2-oblivious adversary: an adversary that reacts to the very latest state can
cut the edges over which freshly joined MIS nodes would notify their
neighbours, or join two MIS nodes to force SMis to un-decide them.

Two attack modes are provided:

* ``"cut_notification"`` — delete (for one round) every base edge between a
  node that just joined the MIS and its still-undecided neighbours, so the
  mark cannot be delivered.  This targets DMis's progress argument.
* ``"join_mis"`` — insert edges between pairs of current MIS nodes, forcing
  SMis nodes to leave the MIS (they both receive marks) and challenging the
  stability of any MIS maintenance scheme.

Both are declared 1-oblivious (they use outputs of round ``r - 1``), i.e.
strictly stronger than the 2-oblivious adversary DMis is analysed against —
which is exactly the point of experiment E10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge, NodeId, canonical_edge
from repro.dynamics.adversary import AdversaryView, IncrementalAdversary, StepResult
from repro.dynamics.topology import Topology, TopologyDelta

__all__ = ["TargetedMisAdversary"]

_MODES = ("cut_notification", "join_mis")


class TargetedMisAdversary(IncrementalAdversary):
    """Adaptive attacker against MIS algorithms.

    Parameters
    ----------
    base:
        Backbone topology that is otherwise always present.
    mode:
        One of ``"cut_notification"`` or ``"join_mis"`` (see module docstring).
    attacks_per_round:
        Maximum number of edges cut / inserted per round.
    lifetime:
        For ``"join_mis"``: how many rounds an inserted edge persists.
        For ``"cut_notification"``: how many rounds a cut lasts.
    rng:
        Randomness used to pick among candidate attack edges.
    """

    obliviousness = 1

    def __init__(
        self,
        base: Topology,
        mode: str,
        attacks_per_round: int,
        rng: np.random.Generator,
        *,
        lifetime: int = 1,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        self._base = base
        self._mode = mode
        self._attacks = max(0, int(attacks_per_round))
        self._lifetime = max(1, int(lifetime))
        self._rng = rng
        self._inserted: Dict[Edge, int] = {}
        self._cut: Dict[Edge, int] = {}
        #: Log of (round, action, edge), consumed by experiment E10.
        self.attack_log: List[Tuple[int, str, Edge]] = []
        self._previous_outputs = None

    def reset(self) -> None:
        super().reset()
        self._inserted.clear()
        self._cut.clear()
        self.attack_log.clear()
        self._previous_outputs = None

    # -- candidate selection ----------------------------------------------------

    def _mis_nodes(self, outputs) -> List[NodeId]:
        return sorted(v for v, value in outputs.items() if value == 1)

    def _undecided_nodes(self, outputs) -> set[NodeId]:
        return {v for v, value in outputs.items() if value is None}

    def _fresh_mis_nodes(self, outputs) -> List[NodeId]:
        """MIS nodes that were not MIS nodes in the previous visible output."""
        if self._previous_outputs is None:
            return self._mis_nodes(outputs)
        before = {v for v, value in self._previous_outputs.items() if value == 1}
        return sorted(v for v, value in outputs.items() if value == 1 and v not in before)

    def _cut_candidates(self, outputs) -> List[Edge]:
        undecided = self._undecided_nodes(outputs)
        fresh = self._fresh_mis_nodes(outputs)
        candidates: List[Edge] = []
        for v in fresh:
            for u in self._base.neighbors(v):
                if u in undecided:
                    candidates.append(canonical_edge(u, v))
        return candidates

    def _join_candidates(self, outputs) -> List[Edge]:
        mis = self._mis_nodes(outputs)
        candidates: List[Edge] = []
        if len(mis) < 2:
            return candidates
        limit = min(64, len(mis) * (len(mis) - 1) // 2)
        for _ in range(limit):
            i, j = self._rng.choice(len(mis), size=2, replace=False)
            e = canonical_edge(mis[int(i)], mis[int(j)])
            if e not in self._base.edges and e not in self._inserted:
                candidates.append(e)
        return candidates

    # -- Adversary interface ------------------------------------------------------

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        r = view.round_index
        expired_inserted = [e for e, expiry in self._inserted.items() if expiry < r]
        for e in expired_inserted:
            del self._inserted[e]
        expired_cut = [e for e, expiry in self._cut.items() if expiry < r]
        for e in expired_cut:
            del self._cut[e]

        fresh_cut: List[Edge] = []
        fresh_inserted: List[Edge] = []
        outputs = view.latest_visible_outputs()
        if outputs and self._attacks > 0:
            if self._mode == "cut_notification":
                candidates = self._cut_candidates(outputs)
                self._rng.shuffle(candidates)
                for e in candidates[: self._attacks]:
                    if e not in self._cut:
                        fresh_cut.append(e)
                    self._cut[e] = r + self._lifetime - 1
                    self.attack_log.append((r, "cut", e))
            else:  # join_mis
                candidates = self._join_candidates(outputs)
                self._rng.shuffle(candidates)
                for e in candidates[: self._attacks]:
                    if e not in self._inserted:
                        fresh_inserted.append(e)
                    self._inserted[e] = r + self._lifetime - 1
                    self.attack_log.append((r, "insert", e))
            self._previous_outputs = dict(outputs)

        if not chain_intact:
            edges = (frozenset(self._base.edges) - frozenset(self._cut)) | frozenset(
                self._inserted
            )
            return Topology(self._base.nodes, edges)
        # Inserted edges are never base edges and cut edges always are, so the
        # two books cannot collide.  An edge that expired and was re-attacked
        # in the same round never changed state and stays out of the delta.
        expired_cut_set = set(expired_cut)
        expired_inserted_set = set(expired_inserted)
        added = frozenset(
            [e for e in expired_cut if e not in self._cut]
            + [e for e in fresh_inserted if e not in expired_inserted_set]
        )
        removed = frozenset(
            [e for e in expired_inserted if e not in self._inserted]
            + [e for e in fresh_cut if e not in expired_cut_set]
        )
        return TopologyDelta(added_edges=added, removed_edges=removed)

    def describe(self) -> str:
        return f"TargetedMisAdversary(mode={self._mode}, attacks={self._attacks})"
