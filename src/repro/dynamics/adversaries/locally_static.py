"""Adversary that keeps a region of the graph static while churning elsewhere.

Used by experiment E5 (Theorem 1.1, part 2 and the "locally static" clauses of
Corollaries 1.2 / 1.3): if the α-neighbourhood of a node is static during an
interval, the node's output must not change after ``r + T1 + T2`` rounds.

The protected region is the radius-``protected_radius`` ball around ``center``
in the base topology.  All edges incident to a protected node are frozen to
their base state and the churn process is prevented from adding or removing
any edge that touches the protected set.  Consequently, for every node within
distance ``protected_radius - alpha`` of the centre, the α-neighbourhood is
static for the entire run.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge
from repro.dynamics.adversary import (
    AdversaryView,
    FULLY_OBLIVIOUS,
    IncrementalAdversary,
    StepResult,
)
from repro.dynamics.churn import ChurnProcess, advance_churn
from repro.dynamics.topology import Topology, TopologyDelta

__all__ = ["LocallyStaticAdversary"]


class LocallyStaticAdversary(IncrementalAdversary):
    """Freeze a ball around ``center``; churn every edge outside it.

    Parameters
    ----------
    base:
        The base topology (also defines the awake node set — all awake).
    center:
        Centre node of the protected region.
    protected_radius:
        Radius of the protected ball (in the base topology).  To guarantee a
        static α-neighbourhood for the centre itself, pass
        ``protected_radius >= alpha`` (the centre's α-ball is then entirely
        inside the protected set and no incident edge ever changes).
    churn:
        Churn process applied to the edges outside the protected region.
        Only edges with **both** endpoints outside the protected set follow
        the churn process; all other base edges are always present and no
        new edge incident to the protected set is ever added.
    rng:
        Randomness source for the churn process.
    """

    obliviousness = FULLY_OBLIVIOUS

    def __init__(
        self,
        base: Topology,
        center: int,
        protected_radius: int,
        churn: ChurnProcess,
        rng: np.random.Generator,
        *,
        emit_deltas: Optional[bool] = None,
    ) -> None:
        super().__init__(emit_deltas=emit_deltas)
        if center not in base.nodes:
            raise ConfigurationError(f"center {center} is not a node of the base topology")
        if protected_radius < 0:
            raise ConfigurationError("protected_radius must be >= 0")
        self._base = base
        self._center = center
        self._protected = base.ball(center, protected_radius)
        self._frozen_edges = frozenset(
            e for e in base.edges if e[0] in self._protected or e[1] in self._protected
        )
        self._churn = churn
        self._rng = rng
        #: Churn-level present edges (protected and unprotected alike).
        self._present: FrozenSet[Edge] = frozenset()

    @property
    def protected_nodes(self) -> frozenset:
        """The node set whose incident edges never change."""
        return self._protected

    def reset(self) -> None:
        super().reset()
        self._churn.reset()
        self._present = frozenset()

    def _outside(self, e: Edge) -> bool:
        return e[0] not in self._protected and e[1] not in self._protected

    def step(self, view: AdversaryView) -> StepResult:
        chain_intact = self._delta_chain_intact(view)
        added, removed, self._present = advance_churn(
            self._churn, self._present, view.round_index, self._rng
        )
        if not chain_intact:
            outside = frozenset(e for e in self._present if self._outside(e))
            return Topology(self._base.nodes, self._frozen_edges | outside)
        # The frozen edges all touch the protected set, so churn changes to
        # edges outside it never collide with them; only those changes are
        # visible in the emitted graph.
        return TopologyDelta(
            added_edges=frozenset(e for e in added if self._outside(e)),
            removed_edges=frozenset(e for e in removed if self._outside(e)),
        )

    def describe(self) -> str:
        return (
            f"LocallyStaticAdversary(center={self._center}, "
            f"protected={len(self._protected)} nodes)"
        )
