"""Wake-up schedules for asynchronous node activation (Section 2).

The model lets nodes wake up gradually: ``V_r`` is the set of nodes awake in
round ``r`` and is non-decreasing.  A :class:`WakeupSchedule` answers "which
nodes are awake in round r"; adversaries intersect their edge processes with
the awake set so sleeping nodes stay isolated.

All shipped algorithms are single-round-type ("pipelined", see Section 7.2),
so they support any schedule produced here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.types import NodeId, Round

__all__ = [
    "WakeupSchedule",
    "AllAwake",
    "StaggeredWakeup",
    "UniformRandomWakeup",
    "ExplicitWakeup",
]


class WakeupSchedule(ABC):
    """Maps a round index to the set of awake nodes (must be non-decreasing)."""

    @abstractmethod
    def awake_at(self, round_index: Round) -> FrozenSet[NodeId]:
        """Return ``V_r`` for the given round (rounds start at 1)."""

    def wake_round(self, node: NodeId, max_round: int = 10_000) -> int | None:
        """First round in which ``node`` is awake, or ``None`` if never (searched up to ``max_round``)."""
        for r in range(1, max_round + 1):
            if node in self.awake_at(r):
                return r
        return None


class AllAwake(WakeupSchedule):
    """Every node ``0 … n-1`` is awake from round 1 (the default)."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        self._nodes = frozenset(range(n))

    def awake_at(self, round_index: Round) -> FrozenSet[NodeId]:
        return self._nodes if round_index >= 1 else frozenset()


class StaggeredWakeup(WakeupSchedule):
    """Nodes wake up in contiguous batches of ``batch_size`` every ``interval`` rounds.

    Node ids wake in increasing order: nodes ``0 … batch_size-1`` in round 1,
    the next batch in round ``1 + interval``, and so on.
    """

    def __init__(self, n: int, batch_size: int, interval: int = 1) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")
        self._n = n
        self._batch = batch_size
        self._interval = interval

    def awake_at(self, round_index: Round) -> FrozenSet[NodeId]:
        if round_index < 1:
            return frozenset()
        batches = 1 + (round_index - 1) // self._interval
        return frozenset(range(min(self._n, batches * self._batch)))


class UniformRandomWakeup(WakeupSchedule):
    """Every node wakes at a uniformly random round in ``[1, spread]`` (fixed at construction)."""

    def __init__(self, n: int, spread: int, rng: np.random.Generator) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if spread < 1:
            raise ConfigurationError(f"spread must be >= 1, got {spread}")
        rounds = rng.integers(1, spread + 1, size=n)
        self._wake_round: Dict[NodeId, int] = {v: int(rounds[v]) for v in range(n)}

    def awake_at(self, round_index: Round) -> FrozenSet[NodeId]:
        if round_index < 1:
            return frozenset()
        return frozenset(v for v, w in self._wake_round.items() if w <= round_index)

    def wake_round(self, node: NodeId, max_round: int = 10_000) -> int | None:
        return self._wake_round.get(node)


class ExplicitWakeup(WakeupSchedule):
    """Wake rounds given explicitly as a mapping ``node -> wake round``."""

    def __init__(self, wake_rounds: Mapping[NodeId, Round] | Iterable[tuple[NodeId, Round]]) -> None:
        items = dict(wake_rounds)
        for node, r in items.items():
            if r < 1:
                raise ConfigurationError(f"wake round for node {node} must be >= 1, got {r}")
        self._wake_round: Dict[NodeId, Round] = {int(v): int(r) for v, r in items.items()}

    def awake_at(self, round_index: Round) -> FrozenSet[NodeId]:
        if round_index < 1:
            return frozenset()
        return frozenset(v for v, w in self._wake_round.items() if w <= round_index)

    def wake_round(self, node: NodeId, max_round: int = 10_000) -> int | None:
        return self._wake_round.get(node)
