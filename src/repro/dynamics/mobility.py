"""Random-waypoint mobility over the unit square.

A standard model for wireless ad-hoc networks (the paper's motivating
application for MIS-based clustering and colouring-based frequency
assignment): ``n`` nodes move in the unit square; each node picks a random
waypoint, moves towards it at its speed, then picks a new one.  Two nodes are
connected whenever their Euclidean distance is at most the communication
radius.  The resulting dynamic graph changes a little every round — exactly
the "frequent but local changes" regime the paper targets.
"""

from __future__ import annotations

from typing import FrozenSet

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Edge
from repro.utils.validation import check_positive, check_probability
from repro.dynamics.generators import geometric_edges_from_positions, geometric_from_positions
from repro.dynamics.topology import Topology

__all__ = ["RandomWaypointMobility"]


class RandomWaypointMobility:
    """Random-waypoint mobility model producing a geometric graph per round.

    Parameters
    ----------
    n:
        Number of nodes.
    radius:
        Communication radius (two nodes are adjacent iff within ``radius``).
    speed:
        Distance travelled per round (same for all nodes).
    pause_probability:
        Probability that a node that reached its waypoint pauses for a round
        before picking a new waypoint.
    rng:
        Randomness source used for initial placement and waypoints.
    """

    def __init__(
        self,
        n: int,
        radius: float,
        speed: float,
        *,
        pause_probability: float = 0.0,
        rng: np.random.Generator,
    ) -> None:
        if not isinstance(n, int) or n < 1:
            raise ConfigurationError(f"n must be a positive integer, got {n!r}")
        check_positive("radius", radius)
        check_positive("speed", speed)
        check_probability("pause_probability", pause_probability)
        self._n = n
        self._radius = float(radius)
        self._speed = float(speed)
        self._pause_probability = float(pause_probability)
        self._rng = rng
        self._positions = rng.random((n, 2))
        self._waypoints = rng.random((n, 2))

    @property
    def n(self) -> int:
        """Number of nodes in the mobility model."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Current node positions (copy), shape ``(n, 2)``."""
        return self._positions.copy()

    def step(self) -> Topology:
        """Advance one round of movement and return the new communication graph."""
        return geometric_from_positions(self._advance(), self._radius)

    def step_edges(self) -> FrozenSet[Edge]:
        """Advance one round and return only the new edge set.

        Consumes exactly the randomness of :meth:`step`; used by the
        delta-emitting :class:`~repro.dynamics.adversaries.random_churn.MobilityAdversary`,
        which diffs consecutive edge sets instead of building a topology.
        """
        return geometric_edges_from_positions(self._advance(), self._radius)

    def _advance(self) -> np.ndarray:
        """Move every node one round towards its waypoint; returns the positions."""
        delta = self._waypoints - self._positions
        dist = np.linalg.norm(delta, axis=1)
        arrived = dist <= self._speed
        moving = ~arrived
        # Move nodes that have not yet reached their waypoint.
        if np.any(moving):
            step_vec = np.zeros_like(delta)
            step_vec[moving] = delta[moving] / dist[moving, None] * self._speed
            self._positions = self._positions + step_vec
        # Arrived nodes snap to the waypoint and (possibly after a pause) pick a new one.
        if np.any(arrived):
            self._positions[arrived] = self._waypoints[arrived]
            repick = arrived & (self._rng.random(self._n) >= self._pause_probability)
            count = int(np.count_nonzero(repick))
            if count:
                self._waypoints[repick] = self._rng.random((count, 2))
        return self._positions

    def current_edges(self) -> FrozenSet[Edge]:
        """The edge set induced by the current positions (without moving)."""
        return geometric_from_positions(self._positions, self._radius).edges
