"""The recorded dynamic graph ``G_1, G_2, …`` and its window queries.

A :class:`DynamicGraph` is the append-only record of the adversary-provided
graph sequence.  It enforces the model constraints of Section 2:

* the awake node set is non-decreasing (``V_{r} ⊆ V_{r+1}``), and
* every node id stays within the potential node set ``{0, …, n-1}`` where
  ``n`` is the globally known upper bound on the number of nodes.

Rounds are stored either as full :class:`~repro.dynamics.topology.Topology`
snapshots (:meth:`DynamicGraph.append`) or as
:class:`~repro.dynamics.topology.TopologyDelta` change sets relative to the
previous round (:meth:`DynamicGraph.append_delta`).  Delta storage keeps the
per-round memory and validation cost proportional to the amount of change; a
full snapshot is additionally materialised every ``checkpoint_interval``
rounds so that any round can be reconstructed by replaying at most
``checkpoint_interval - 1`` deltas.  All accessors (``topology(r)``, window
queries, change statistics) materialise transparently, and a one-entry cursor
cache makes sequential scans — by far the dominant access pattern of the
checkers — cost one delta application per step.

On top of the raw sequence it offers the sliding-window queries of
Definition 2.1 (``G^{T∩}_r``, ``G^{T∪}_r``) either directly (recomputed from
the stored history) or through an attached :class:`~repro.dynamics.window.SlidingWindow`
for the window size the experiment cares about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import TopologyError
from repro.types import Edge, Interval, NodeId
from repro.dynamics.topology import Topology, TopologyDelta, empty_topology
from repro.dynamics.window import SlidingWindow, WindowSnapshot

__all__ = ["DynamicGraph", "DEFAULT_CHECKPOINT_INTERVAL"]

#: Default number of rounds between materialised checkpoint snapshots.
DEFAULT_CHECKPOINT_INTERVAL = 32


class DynamicGraph:
    """Append-only record of a dynamic graph over ``n`` potential nodes.

    Round indexing follows the paper: the first recorded topology is round 1;
    ``G_0`` is the empty graph (all nodes asleep).

    Parameters
    ----------
    n:
        Upper bound on the number of nodes; all node ids must be ``< n``.
    checkpoint_interval:
        How often :meth:`append_delta` stores a full snapshot instead of the
        delta (``1`` stores every round as a snapshot; rounds appended via
        :meth:`append` are always snapshots).
    """

    def __init__(self, n: int, *, checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL) -> None:
        if not isinstance(n, int) or n < 1:
            raise TopologyError(f"n must be a positive integer, got {n!r}")
        if not isinstance(checkpoint_interval, int) or checkpoint_interval < 1:
            raise TopologyError(
                f"checkpoint_interval must be a positive integer, got {checkpoint_interval!r}"
            )
        self._n = n
        self._checkpoint_interval = checkpoint_interval
        #: Per round: a Topology snapshot or a TopologyDelta relative to r-1.
        self._entries: List[Union[Topology, TopologyDelta]] = []
        self._latest: Optional[Topology] = None
        # One-entry materialisation cursor (round, topology) for sequential scans.
        self._cursor_round = 0
        self._cursor_topo = empty_topology()
        self._windows: Dict[int, SlidingWindow] = {}

    # -- recording ---------------------------------------------------------

    @property
    def n(self) -> int:
        """The globally known upper bound on the number of nodes."""
        return self._n

    @property
    def checkpoint_interval(self) -> int:
        """Rounds between full snapshots on the delta storage path."""
        return self._checkpoint_interval

    @property
    def last_round(self) -> int:
        """The index of the most recently recorded round (0 if none)."""
        return len(self._entries)

    def _push_windows(
        self, topology: Topology, delta: Optional[TopologyDelta] = None
    ) -> Dict[int, WindowSnapshot]:
        if delta is not None:
            # Delta-aware push: the window updates its union/intersection
            # sets in O(#changes) instead of re-scanning the new topology.
            return {T: window.push(delta, topology) for T, window in self._windows.items()}
        return {T: window.push(topology) for T, window in self._windows.items()}

    def append(self, topology: Topology) -> Dict[int, WindowSnapshot]:
        """Record the next round's topology (as a snapshot) and update windows.

        Returns the snapshot of every attached window keyed by window size.

        Raises
        ------
        TopologyError
            If the topology uses node ids ``>= n`` or if the awake node set
            shrank compared to the previous round.
        """
        for v in topology.nodes:
            if not 0 <= v < self._n:
                raise TopologyError(f"node id {v} outside potential node set [0, {self._n})")
        latest = self._ensure_latest()
        if latest is not None and not latest.nodes <= topology.nodes:
            missing = latest.nodes - topology.nodes
            raise TopologyError(
                "awake node set must be non-decreasing; nodes disappeared: "
                f"{sorted(missing)[:10]}"
            )
        self._entries.append(topology)
        self._latest = topology
        return self._push_windows(topology)

    def append_delta(
        self, delta: TopologyDelta, topology: Optional[Topology] = None
    ) -> Dict[int, WindowSnapshot]:
        """Record the next round as a delta relative to the previous round.

        Validation is O(#changes): only the added nodes are range-checked and
        the model's non-decreasing awake set is enforced by rejecting node
        removals.  ``topology`` is the already-materialised round graph if the
        caller (the simulator) has it; otherwise it is materialised here.
        Every ``checkpoint_interval``-th round stores the materialised
        snapshot instead of the delta.
        """
        for v in delta.added_nodes:
            if not 0 <= v < self._n:
                raise TopologyError(f"node id {v} outside potential node set [0, {self._n})")
        if delta.removed_nodes:
            raise TopologyError(
                "awake node set must be non-decreasing; nodes disappeared: "
                f"{sorted(delta.removed_nodes)[:10]}"
            )
        previous = self._ensure_latest()
        if previous is None:
            previous = empty_topology()
        if topology is None:
            topology = previous.apply(delta)
        if len(self._entries) % self._checkpoint_interval == 0:
            self._entries.append(topology)
        else:
            self._entries.append(delta)
        self._latest = topology
        return self._push_windows(topology, delta)

    def append_lazy(self, delta: TopologyDelta) -> Dict[int, WindowSnapshot]:
        """Record the next round as a delta *without* materialising it.

        The array kernel's recording path: validation stays O(#changes) but
        no Topology object is built and no checkpoint snapshots are stored —
        the round graph is only materialised when someone asks for it
        (``topology(r)`` walks the delta chain; sequential scans are O(1)
        per round thanks to the cursor, cold random access is O(r)).  When
        windows are attached the round must be materialised anyway to feed
        them, so this degrades gracefully to ``append_delta`` behaviour.
        """
        for v in delta.added_nodes:
            if not 0 <= v < self._n:
                raise TopologyError(f"node id {v} outside potential node set [0, {self._n})")
        if delta.removed_nodes:
            raise TopologyError(
                "awake node set must be non-decreasing; nodes disappeared: "
                f"{sorted(delta.removed_nodes)[:10]}"
            )
        if self._windows:
            previous = self._ensure_latest()
            if previous is None:
                previous = empty_topology()
            topology = previous.apply(delta)
            self._entries.append(delta)
            self._latest = topology
            return self._push_windows(topology, delta)
        self._entries.append(delta)
        self._latest = None
        return {}

    def attach_window(self, T: int) -> SlidingWindow:
        """Attach (or return the existing) incremental window of size ``T``.

        The window is replayed over the already recorded history so attaching
        late is equivalent to attaching before the first round.
        """
        if T not in self._windows:
            self._windows[T] = SlidingWindow.over(self.iter_topologies(), T)
        return self._windows[T]

    # -- access to recorded rounds -------------------------------------------

    def _materialise(self, r: int) -> Topology:
        """Materialise ``G_r`` (``1 <= r <= last_round``), moving the cursor."""
        if r == self._cursor_round:
            return self._cursor_topo
        entries = self._entries
        if r == len(entries) and self._latest is not None:
            topo = self._latest
        else:
            entry = entries[r - 1]
            if isinstance(entry, Topology):
                topo = entry
            elif self._cursor_round == r - 1:
                topo = self._cursor_topo.apply(entry)
            else:
                # Walk back to the nearest snapshot (round 0 = empty graph),
                # then replay the deltas forward.
                i = r - 2
                while i >= 0 and not isinstance(entries[i], Topology):
                    i -= 1
                topo = entries[i] if i >= 0 else empty_topology()
                for j in range(i + 1, r):
                    topo = topo.apply(entries[j])
        self._cursor_round = r
        self._cursor_topo = topo
        return topo

    def topology(self, r: int) -> Topology:
        """Return ``G_r`` (round indices start at 1); ``G_0`` is the empty graph."""
        if r == 0:
            return empty_topology()
        if not 1 <= r <= len(self._entries):
            raise TopologyError(f"round {r} has not been recorded (last = {self.last_round})")
        return self._materialise(r)

    def _ensure_latest(self) -> Optional[Topology]:
        """``self._latest``, materialising it after lazy (kernel) appends."""
        if self._latest is None and self._entries:
            self._latest = self._materialise(len(self._entries))
        return self._latest

    def latest_topology(self) -> Optional[Topology]:
        """The most recently recorded topology (``None`` before round 1).

        O(1) on the eager recording paths; after lazy kernel appends the
        first call materialises the pending delta chain.
        """
        return self._ensure_latest()

    def iter_topologies(self) -> Iterator[Topology]:
        """Materialise all recorded topologies in round order, one delta apply per step."""
        for r in range(1, len(self._entries) + 1):
            yield self._materialise(r)

    def topologies(self) -> Sequence[Topology]:
        """All recorded topologies, round 1 first (materialised)."""
        return tuple(self.iter_topologies())

    def awake_nodes(self, r: int) -> FrozenSet[NodeId]:
        """``V_r``: the awake node set in round ``r``."""
        return self.topology(r).nodes

    # -- window queries (Definition 2.1) --------------------------------------

    def _window_rounds(self, r: int, T: int) -> tuple[bool, Sequence[Topology]]:
        """Return ``(includes_round_zero, topologies of rounds max(1, r-T+1) … r)``.

        Definition 2.1 sets ``r0 = max(0, r - T + 1)`` and ``G_0`` is the empty
        graph (all nodes asleep, ``V_0 = ∅``).  Whenever the window reaches
        back to round 0 the intersection node set is therefore empty.
        """
        if not 1 <= r <= len(self._entries):
            raise TopologyError(f"round {r} has not been recorded (last = {self.last_round})")
        r0 = max(0, r - T + 1)
        includes_zero = r0 == 0
        first = max(1, r0)
        return includes_zero, [self._materialise(i) for i in range(first, r + 1)]

    def intersection_graph(self, r: int, T: int) -> Topology:
        """``G^{T∩}_r``: nodes and edges present in every round of the window.

        Per Definition 2.1 the window reaches back to round ``r - T + 1``; if
        that is ``<= 0`` the (empty) graph ``G_0`` is part of the window and
        the intersection is empty — no node has been awake for ``T`` rounds yet.
        """
        includes_zero, rounds = self._window_rounds(r, T)
        if includes_zero:
            return empty_topology()
        nodes: FrozenSet[NodeId] = rounds[0].nodes
        edges: FrozenSet[Edge] = rounds[0].edges
        for topo in rounds[1:]:
            nodes &= topo.nodes
            edges &= topo.edges
        edges = frozenset(e for e in edges if e[0] in nodes and e[1] in nodes)
        return Topology(nodes, edges)

    def union_graph(self, r: int, T: int) -> Topology:
        """``G^{T∪}_r``: every edge present at least once in the window.

        Definition 2.1 gives the union graph the node set ``V^{T∩}_r`` but the
        *unrestricted* edge set ``E^{T∪}_r`` — a node's union degree counts
        every neighbour it has seen during the window, including neighbours
        that woke up recently (this is exactly the "number of distinct
        neighbours seen in the last T rounds" bound of Corollary 1.2).  The
        returned topology therefore contains ``V^{T∩}_r`` plus any endpoint of
        a union edge; only the nodes of :meth:`intersection_graph` are
        *constrained* by the T-dynamic checker.
        """
        includes_zero, rounds = self._window_rounds(r, T)
        if includes_zero:
            return empty_topology()
        nodes: FrozenSet[NodeId] = rounds[0].nodes
        for topo in rounds[1:]:
            nodes &= topo.nodes
        edges: set[Edge] = set()
        for topo in rounds:
            edges.update(topo.edges)
        node_set = set(nodes)
        for u, v in edges:
            node_set.add(u)
            node_set.add(v)
        return Topology(node_set, edges)

    def window_snapshot(self, r: int, T: int) -> WindowSnapshot:
        """Both window graphs of round ``r`` for window size ``T``."""
        return WindowSnapshot(
            round_index=r,
            window_length=min(T, r),
            intersection=self.intersection_graph(r, T),
            union=self.union_graph(r, T),
        )

    # -- stability predicates ---------------------------------------------

    def is_static_on(self, nodes: Iterable[NodeId], interval: Interval) -> bool:
        """Whether the subgraph induced by ``nodes`` is identical in every round of ``interval``.

        This is the hypothesis of the locally-static guarantees
        (``G_l[N^α(v)] = G_{l'}[N^α(v)]`` for all ``l, l'`` in the interval).
        """
        keep = frozenset(nodes)
        if interval.end > self.last_round or interval.start < 1:
            raise TopologyError(
                f"interval {interval} outside recorded rounds [1, {self.last_round}]"
            )
        reference = self.topology(interval.start)
        for r in range(interval.start + 1, interval.end + 1):
            if not reference.restricted_equals(self.topology(r), keep):
                return False
        return True

    def static_ball_interval(self, center: NodeId, alpha: int, interval: Interval) -> bool:
        """Whether the ``alpha``-neighbourhood of ``center`` is static throughout ``interval``.

        The ball is evaluated on the topology at ``interval.start`` (if the
        ball's induced subgraph never changes, the ball itself is the same in
        every round of the interval, so the choice of reference round is
        immaterial).
        """
        ball = self.topology(interval.start).ball(center, alpha)
        if not ball:
            return False
        return self.is_static_on(ball, interval)

    # -- change statistics ---------------------------------------------------

    def edge_changes(self, r: int) -> tuple[FrozenSet[Edge], FrozenSet[Edge]]:
        """Return ``(inserted, deleted)`` edges between rounds ``r-1`` and ``r``."""
        if r < 1:
            raise TopologyError(f"round must be >= 1, got {r}")
        if 1 <= r <= len(self._entries):
            entry = self._entries[r - 1]
            if isinstance(entry, TopologyDelta):
                # Stored deltas are exact (enforced by Topology.apply), so this
                # equals the diff of the materialised snapshots.
                return entry.added_edges, entry.removed_edges
        prev = self.topology(r - 1) if r > 1 else empty_topology()
        cur = self.topology(r)
        return cur.edges - prev.edges, prev.edges - cur.edges

    def churn_per_round(self) -> List[int]:
        """Number of edge insertions + deletions per recorded round."""
        counts: List[int] = []
        for r in range(1, self.last_round + 1):
            ins, dele = self.edge_changes(r)
            counts.append(len(ins) + len(dele))
        return counts
