"""The recorded dynamic graph ``G_1, G_2, …`` and its window queries.

A :class:`DynamicGraph` is the append-only record of the adversary-provided
graph sequence.  It enforces the model constraints of Section 2:

* the awake node set is non-decreasing (``V_{r} ⊆ V_{r+1}``), and
* every node id stays within the potential node set ``{0, …, n-1}`` where
  ``n`` is the globally known upper bound on the number of nodes.

On top of the raw sequence it offers the sliding-window queries of
Definition 2.1 (``G^{T∩}_r``, ``G^{T∪}_r``) either directly (recomputed from
the stored history) or through an attached :class:`~repro.dynamics.window.SlidingWindow`
for the window size the experiment cares about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.errors import TopologyError
from repro.types import Edge, Interval, NodeId
from repro.dynamics.topology import Topology, empty_topology
from repro.dynamics.window import SlidingWindow, WindowSnapshot

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """Append-only record of a dynamic graph over ``n`` potential nodes.

    Round indexing follows the paper: the first recorded topology is round 1;
    ``G_0`` is the empty graph (all nodes asleep).

    Parameters
    ----------
    n:
        Upper bound on the number of nodes; all node ids must be ``< n``.
    """

    def __init__(self, n: int) -> None:
        if not isinstance(n, int) or n < 1:
            raise TopologyError(f"n must be a positive integer, got {n!r}")
        self._n = n
        self._rounds: List[Topology] = []
        self._windows: Dict[int, SlidingWindow] = {}

    # -- recording ---------------------------------------------------------

    @property
    def n(self) -> int:
        """The globally known upper bound on the number of nodes."""
        return self._n

    @property
    def last_round(self) -> int:
        """The index of the most recently recorded round (0 if none)."""
        return len(self._rounds)

    def append(self, topology: Topology) -> Dict[int, WindowSnapshot]:
        """Record the next round's topology and update all attached windows.

        Returns the snapshot of every attached window keyed by window size.

        Raises
        ------
        TopologyError
            If the topology uses node ids ``>= n`` or if the awake node set
            shrank compared to the previous round.
        """
        for v in topology.nodes:
            if not 0 <= v < self._n:
                raise TopologyError(f"node id {v} outside potential node set [0, {self._n})")
        if self._rounds and not self._rounds[-1].nodes <= topology.nodes:
            missing = self._rounds[-1].nodes - topology.nodes
            raise TopologyError(
                "awake node set must be non-decreasing; nodes disappeared: "
                f"{sorted(missing)[:10]}"
            )
        self._rounds.append(topology)
        return {T: window.push(topology) for T, window in self._windows.items()}

    def attach_window(self, T: int) -> SlidingWindow:
        """Attach (or return the existing) incremental window of size ``T``.

        The window is replayed over the already recorded history so attaching
        late is equivalent to attaching before the first round.
        """
        if T not in self._windows:
            self._windows[T] = SlidingWindow.over(self._rounds, T)
        return self._windows[T]

    # -- access to recorded rounds -------------------------------------------

    def topology(self, r: int) -> Topology:
        """Return ``G_r`` (round indices start at 1); ``G_0`` is the empty graph."""
        if r == 0:
            return empty_topology()
        if not 1 <= r <= len(self._rounds):
            raise TopologyError(f"round {r} has not been recorded (last = {self.last_round})")
        return self._rounds[r - 1]

    def topologies(self) -> Sequence[Topology]:
        """All recorded topologies, round 1 first."""
        return tuple(self._rounds)

    def awake_nodes(self, r: int) -> FrozenSet[NodeId]:
        """``V_r``: the awake node set in round ``r``."""
        return self.topology(r).nodes

    # -- window queries (Definition 2.1) --------------------------------------

    def _window_rounds(self, r: int, T: int) -> tuple[bool, Sequence[Topology]]:
        """Return ``(includes_round_zero, topologies of rounds max(1, r-T+1) … r)``.

        Definition 2.1 sets ``r0 = max(0, r - T + 1)`` and ``G_0`` is the empty
        graph (all nodes asleep, ``V_0 = ∅``).  Whenever the window reaches
        back to round 0 the intersection node set is therefore empty.
        """
        if not 1 <= r <= len(self._rounds):
            raise TopologyError(f"round {r} has not been recorded (last = {self.last_round})")
        r0 = max(0, r - T + 1)
        includes_zero = r0 == 0
        first = max(1, r0)
        return includes_zero, self._rounds[first - 1 : r]

    def intersection_graph(self, r: int, T: int) -> Topology:
        """``G^{T∩}_r``: nodes and edges present in every round of the window.

        Per Definition 2.1 the window reaches back to round ``r - T + 1``; if
        that is ``<= 0`` the (empty) graph ``G_0`` is part of the window and
        the intersection is empty — no node has been awake for ``T`` rounds yet.
        """
        includes_zero, rounds = self._window_rounds(r, T)
        if includes_zero:
            return empty_topology()
        nodes: FrozenSet[NodeId] = rounds[0].nodes
        edges: FrozenSet[Edge] = rounds[0].edges
        for topo in rounds[1:]:
            nodes &= topo.nodes
            edges &= topo.edges
        edges = frozenset(e for e in edges if e[0] in nodes and e[1] in nodes)
        return Topology(nodes, edges)

    def union_graph(self, r: int, T: int) -> Topology:
        """``G^{T∪}_r``: every edge present at least once in the window.

        Definition 2.1 gives the union graph the node set ``V^{T∩}_r`` but the
        *unrestricted* edge set ``E^{T∪}_r`` — a node's union degree counts
        every neighbour it has seen during the window, including neighbours
        that woke up recently (this is exactly the "number of distinct
        neighbours seen in the last T rounds" bound of Corollary 1.2).  The
        returned topology therefore contains ``V^{T∩}_r`` plus any endpoint of
        a union edge; only the nodes of :meth:`intersection_graph` are
        *constrained* by the T-dynamic checker.
        """
        includes_zero, rounds = self._window_rounds(r, T)
        if includes_zero:
            return empty_topology()
        nodes: FrozenSet[NodeId] = rounds[0].nodes
        for topo in rounds[1:]:
            nodes &= topo.nodes
        edges: set[Edge] = set()
        for topo in rounds:
            edges.update(topo.edges)
        node_set = set(nodes)
        for u, v in edges:
            node_set.add(u)
            node_set.add(v)
        return Topology(node_set, edges)

    def window_snapshot(self, r: int, T: int) -> WindowSnapshot:
        """Both window graphs of round ``r`` for window size ``T``."""
        return WindowSnapshot(
            round_index=r,
            window_length=min(T, r),
            intersection=self.intersection_graph(r, T),
            union=self.union_graph(r, T),
        )

    # -- stability predicates ---------------------------------------------

    def is_static_on(self, nodes: Iterable[NodeId], interval: Interval) -> bool:
        """Whether the subgraph induced by ``nodes`` is identical in every round of ``interval``.

        This is the hypothesis of the locally-static guarantees
        (``G_l[N^α(v)] = G_{l'}[N^α(v)]`` for all ``l, l'`` in the interval).
        """
        keep = frozenset(nodes)
        if interval.end > self.last_round or interval.start < 1:
            raise TopologyError(
                f"interval {interval} outside recorded rounds [1, {self.last_round}]"
            )
        reference = self.topology(interval.start)
        for r in range(interval.start + 1, interval.end + 1):
            if not reference.restricted_equals(self.topology(r), keep):
                return False
        return True

    def static_ball_interval(self, center: NodeId, alpha: int, interval: Interval) -> bool:
        """Whether the ``alpha``-neighbourhood of ``center`` is static throughout ``interval``.

        The ball is evaluated on the topology at ``interval.start`` (if the
        ball's induced subgraph never changes, the ball itself is the same in
        every round of the interval, so the choice of reference round is
        immaterial).
        """
        ball = self.topology(interval.start).ball(center, alpha)
        if not ball:
            return False
        return self.is_static_on(ball, interval)

    # -- change statistics ---------------------------------------------------

    def edge_changes(self, r: int) -> tuple[FrozenSet[Edge], FrozenSet[Edge]]:
        """Return ``(inserted, deleted)`` edges between rounds ``r-1`` and ``r``."""
        if r < 1:
            raise TopologyError(f"round must be >= 1, got {r}")
        prev = self.topology(r - 1) if r > 1 else empty_topology()
        cur = self.topology(r)
        return cur.edges - prev.edges, prev.edges - cur.edges

    def churn_per_round(self) -> List[int]:
        """Number of edge insertions + deletions per recorded round."""
        counts: List[int] = []
        for r in range(1, self.last_round + 1):
            ins, dele = self.edge_changes(r)
            counts.append(len(ins) + len(dele))
        return counts
