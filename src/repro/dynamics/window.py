"""Incremental sliding-window view over a dynamic graph (Definition 2.1).

For a window size ``T`` and round ``r`` with ``r0 = max(1, r - T + 1)`` the
paper defines

* the *intersection graph* ``G^{T∩}_r = (V^{T∩}_r, E^{T∩}_r)`` whose nodes
  (edges) are the nodes (edges) present in **every** round of the window, and
* the *union graph* ``G^{T∪}_r = (V^{T∩}_r, E^{T∪}_r)`` whose edges are the
  edges present in **at least one** round of the window (over the same node
  set ``V^{T∩}_r``).

The :class:`SlidingWindow` maintains both **delta-incrementally**: each round
is described by the :class:`~repro.dynamics.topology.TopologyDelta` from the
previous round (computed with C-speed set diffs when a full
:class:`~repro.dynamics.topology.Topology` is pushed instead), and the
union/intersection sets update in O(#changes) amortised Python work:

* a present item carries the round it last (re)appeared; it *joins* the
  intersection at the precomputed round where the window start reaches that
  appearance (a bucket of pending joins per round), and leaves the moment a
  delta removes it;
* a removed edge *leaves* the union at the precomputed round where the
  window start passes its last presence (a bucket of pending expiries per
  round), and a re-appearance simply cancels the scheduled exit.

Each change therefore costs O(1) bookkeeping when it happens plus O(1) when
its scheduled transition fires — there is no per-round re-scan of the window
and no per-round iteration over all window edges.  :meth:`SlidingWindow.advance`
is the pure O(#changes) update; :meth:`SlidingWindow.push` additionally
materialises the :class:`WindowSnapshot` (O(window content)) for callers that
want the graphs of every round.

The window follows the paper's convention for early rounds: before ``T``
rounds have elapsed the window simply contains every round so far (``r0 =
max(1, r - T + 1)``), and before the first push the window is empty.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import ConfigurationError
from repro.types import Edge, NodeId
from repro.dynamics.topology import Topology, TopologyDelta, empty_topology

__all__ = ["SlidingWindow", "WindowSnapshot"]


@dataclass(frozen=True)
class WindowSnapshot:
    """The intersection / union graphs of one round's window.

    Attributes
    ----------
    round_index:
        The round ``r`` this snapshot refers to.
    window_length:
        The number of rounds actually inside the window (``min(T, r)``).
    intersection:
        ``G^{T∩}_r`` as a :class:`~repro.dynamics.topology.Topology`.
    union:
        ``G^{T∪}_r`` as a :class:`~repro.dynamics.topology.Topology`; its node
        set equals the intersection node set ``V^{T∩}_r`` per Definition 2.1.
    """

    round_index: int
    window_length: int
    intersection: Topology
    union: Topology


class SlidingWindow:
    """Maintains ``G^{T∩}_r`` and ``G^{T∪}_r`` delta-incrementally.

    Parameters
    ----------
    T:
        Window size in rounds (``T >= 1``).

    Examples
    --------
    >>> from repro.dynamics.topology import Topology, TopologyDelta
    >>> w = SlidingWindow(2)
    >>> snap1 = w.push(Topology([0, 1, 2], [(0, 1)]))
    >>> snap2 = w.push(TopologyDelta(added_edges=[(1, 2)]))  # deltas welcome
    >>> sorted(snap2.intersection.edges)
    [(0, 1)]
    >>> sorted(snap2.union.edges)
    [(0, 1), (1, 2)]
    """

    def __init__(self, T: int) -> None:
        if not isinstance(T, int) or T < 1:
            raise ConfigurationError(f"window size T must be an integer >= 1, got {T!r}")
        self._T = T
        self._round_index = 0
        self._current: Topology = empty_topology()
        self._history: Deque[Topology] = deque(maxlen=T)
        # Presence bookkeeping: round each currently-present item last appeared.
        self._edge_added_at: Dict[Edge, int] = {}
        self._node_added_at: Dict[NodeId, int] = {}
        # Materialised window sets, maintained in O(#changes) amortised.
        self._union_edges: Set[Edge] = set()
        self._inter_nodes: Set[NodeId] = set()
        self._inter_edges: Set[Edge] = set()
        # Scheduled transitions: round -> items whose window status flips then.
        self._union_expiry: Dict[Edge, int] = {}
        self._expiry_buckets: Dict[int, List[Edge]] = {}
        self._join_buckets: Dict[int, List[Tuple[bool, object, int]]] = {}

    # -- properties --------------------------------------------------------

    @property
    def T(self) -> int:
        """The configured window size."""
        return self._T

    @property
    def round_index(self) -> int:
        """The index of the most recently pushed round (0 before any push)."""
        return self._round_index

    @property
    def window_length(self) -> int:
        """Number of rounds currently inside the window."""
        return len(self._history)

    # -- updates -----------------------------------------------------------

    def advance(
        self,
        item: Union[Topology, TopologyDelta],
        topology: Optional[Topology] = None,
    ) -> None:
        """Append round ``r+1`` described by ``item``; O(#changes) amortised.

        ``item`` is either the round's full :class:`Topology` (the delta to
        the previous round is then computed with set diffs) or the
        :class:`TopologyDelta` from the previous round.  When pushing a delta
        whose successor topology the caller already materialised (the
        simulator's situation), pass it as ``topology`` to skip the
        re-application; the pair is trusted to be exact — hand the window an
        inconsistent pair and its sets silently desynchronise, exactly like a
        corrupt delta trace would.
        """
        if isinstance(item, TopologyDelta):
            delta = item
            new_topology = topology if topology is not None else self._current.apply(delta)
        elif isinstance(item, Topology):
            new_topology = item
            delta = self._current.delta_to(item)
        else:
            raise ConfigurationError(
                f"push/advance expects a Topology or TopologyDelta, got {item!r}"
            )
        r = self._round_index + 1
        T = self._T
        immediate = r == 1 or T == 1

        for e in delta.removed_edges:
            self._inter_edges.discard(e)
            self._edge_added_at.pop(e, None)
            # The edge stays in the union until the window start passes its
            # last presence (round r-1): it leaves at round r + T - 1.
            leave = r + T - 1
            self._union_expiry[e] = leave
            self._expiry_buckets.setdefault(leave, []).append(e)
        for v in delta.removed_nodes:
            self._inter_nodes.discard(v)
            self._node_added_at.pop(v, None)

        for v in delta.added_nodes:
            self._node_added_at[v] = r
            if immediate:
                self._inter_nodes.add(v)
            else:
                # Joins the intersection when the window start reaches r.
                self._join_buckets.setdefault(r + T - 1, []).append((False, v, r))
        for e in delta.added_edges:
            self._edge_added_at[e] = r
            self._union_edges.add(e)
            self._union_expiry.pop(e, None)  # cancel a scheduled union exit
            if immediate:
                self._inter_edges.add(e)
            else:
                self._join_buckets.setdefault(r + T - 1, []).append((True, e, r))

        # Fire the transitions scheduled for this round.  An item re-removed
        # or re-added since scheduling is recognised by its bookkeeping entry
        # (appearance round / expiry round) no longer matching.
        for is_edge, joined, added_at in self._join_buckets.pop(r, ()):
            if is_edge:
                if self._edge_added_at.get(joined) == added_at:
                    self._inter_edges.add(joined)  # type: ignore[arg-type]
            elif self._node_added_at.get(joined) == added_at:
                self._inter_nodes.add(joined)  # type: ignore[arg-type]
        for e in self._expiry_buckets.pop(r, ()):
            if self._union_expiry.get(e) == r:
                self._union_edges.discard(e)
                del self._union_expiry[e]

        self._history.append(new_topology)  # deque(maxlen=T) evicts the oldest
        self._current = new_topology
        self._round_index = r

    def push(
        self,
        item: Union[Topology, TopologyDelta],
        topology: Optional[Topology] = None,
    ) -> WindowSnapshot:
        """:meth:`advance` plus a materialised :class:`WindowSnapshot`.

        The update itself is O(#changes); building the snapshot's topologies
        costs O(window content).  Hot paths that only need the maintained
        sets (:meth:`union_edges`, :meth:`intersection_nodes`, …) should call
        :meth:`advance` and query directly.
        """
        self.advance(item, topology)
        return self.snapshot()

    # -- queries -----------------------------------------------------------

    def intersection_nodes(self) -> FrozenSet[NodeId]:
        """``V^{T∩}_r``: nodes awake in every round of the window."""
        return frozenset(self._inter_nodes)

    def intersection_edges(self) -> FrozenSet[Edge]:
        """``E^{T∩}_r``: edges present in every round of the window."""
        return frozenset(self._inter_edges)

    def union_edges(self) -> FrozenSet[Edge]:
        """``E^{T∪}_r``: every edge present at least once in the window.

        Per Definition 2.1 the union edge set is *not* restricted to the
        intersection node set — a node's union degree counts every neighbour
        it has seen during the window, including recently woken ones.
        """
        return frozenset(self._union_edges)

    def union_edges_all(self) -> FrozenSet[Edge]:
        """Alias of :meth:`union_edges` (kept for readability at call sites)."""
        return self.union_edges()

    def intersection_graph(self) -> Topology:
        """``G^{T∩}_r`` as a topology."""
        return Topology(self._inter_nodes, self._inter_edges)

    def union_graph(self) -> Topology:
        """``G^{T∪}_r`` as a topology (``V^{T∩}_r`` plus the endpoints of union edges)."""
        nodes = set(self._inter_nodes)
        edges = self.union_edges()
        for u, v in edges:
            nodes.add(u)
            nodes.add(v)
        return Topology(nodes, edges)

    def union_degree(self, v: NodeId) -> int:
        """``d^{∪T}_r(v)``: the number of distinct neighbours ``v`` has seen in the window."""
        return sum(1 for e in self._union_edges if e[0] == v or e[1] == v)

    def snapshot(self) -> WindowSnapshot:
        """Return an immutable snapshot of the current window graphs."""
        return WindowSnapshot(
            round_index=self._round_index,
            window_length=len(self._history),
            intersection=self.intersection_graph(),
            union=self.union_graph(),
        )

    def history(self) -> Tuple[Topology, ...]:
        """The topologies currently in the window, oldest first."""
        return tuple(self._history)

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def over(
        cls, topologies: Iterable[Union[Topology, TopologyDelta]], T: int
    ) -> "SlidingWindow":
        """Build a window by pushing every item in ``topologies`` in order."""
        window = cls(T)
        for item in topologies:
            window.advance(item)
        return window
