"""Incremental sliding-window view over a dynamic graph (Definition 2.1).

For a window size ``T`` and round ``r`` with ``r0 = max(1, r - T + 1)`` the
paper defines

* the *intersection graph* ``G^{T∩}_r = (V^{T∩}_r, E^{T∩}_r)`` whose nodes
  (edges) are the nodes (edges) present in **every** round of the window, and
* the *union graph* ``G^{T∪}_r = (V^{T∩}_r, E^{T∪}_r)`` whose edges are the
  edges present in **at least one** round of the window (over the same node
  set ``V^{T∩}_r``).

The :class:`SlidingWindow` maintains both incrementally with per-edge and
per-node presence counters so a round costs O(#edges changed + #edges in the
oldest round leaving the window) instead of O(T · m).

The window follows the paper's convention for early rounds: before ``T``
rounds have elapsed the window simply contains every round so far (``r0 =
max(1, r - T + 1)``), and before the first push the window is empty.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, Tuple

from repro.errors import ConfigurationError
from repro.types import Edge, NodeId
from repro.dynamics.topology import Topology

__all__ = ["SlidingWindow", "WindowSnapshot"]


@dataclass(frozen=True)
class WindowSnapshot:
    """The intersection / union graphs of one round's window.

    Attributes
    ----------
    round_index:
        The round ``r`` this snapshot refers to.
    window_length:
        The number of rounds actually inside the window (``min(T, r)``).
    intersection:
        ``G^{T∩}_r`` as a :class:`~repro.dynamics.topology.Topology`.
    union:
        ``G^{T∪}_r`` as a :class:`~repro.dynamics.topology.Topology`; its node
        set equals the intersection node set ``V^{T∩}_r`` per Definition 2.1.
    """

    round_index: int
    window_length: int
    intersection: Topology
    union: Topology


class SlidingWindow:
    """Maintains ``G^{T∩}_r`` and ``G^{T∪}_r`` incrementally.

    Parameters
    ----------
    T:
        Window size in rounds (``T >= 1``).

    Examples
    --------
    >>> from repro.dynamics.topology import Topology
    >>> w = SlidingWindow(2)
    >>> snap1 = w.push(Topology([0, 1, 2], [(0, 1)]))
    >>> snap2 = w.push(Topology([0, 1, 2], [(0, 1), (1, 2)]))
    >>> sorted(snap2.intersection.edges)
    [(0, 1)]
    >>> sorted(snap2.union.edges)
    [(0, 1), (1, 2)]
    """

    def __init__(self, T: int) -> None:
        if not isinstance(T, int) or T < 1:
            raise ConfigurationError(f"window size T must be an integer >= 1, got {T!r}")
        self._T = T
        self._history: Deque[Topology] = deque()
        self._edge_counts: Dict[Edge, int] = {}
        self._node_counts: Dict[NodeId, int] = {}
        self._round_index = 0

    # -- properties --------------------------------------------------------

    @property
    def T(self) -> int:
        """The configured window size."""
        return self._T

    @property
    def round_index(self) -> int:
        """The index of the most recently pushed round (0 before any push)."""
        return self._round_index

    @property
    def window_length(self) -> int:
        """Number of rounds currently inside the window."""
        return len(self._history)

    # -- updates -----------------------------------------------------------

    def push(self, topology: Topology) -> WindowSnapshot:
        """Append round ``r+1``'s topology and return the updated snapshot."""
        if len(self._history) == self._T:
            self._evict(self._history.popleft())
        self._history.append(topology)
        for e in topology.edges:
            self._edge_counts[e] = self._edge_counts.get(e, 0) + 1
        for v in topology.nodes:
            self._node_counts[v] = self._node_counts.get(v, 0) + 1
        self._round_index += 1
        return self.snapshot()

    def _evict(self, topology: Topology) -> None:
        for e in topology.edges:
            count = self._edge_counts[e] - 1
            if count:
                self._edge_counts[e] = count
            else:
                del self._edge_counts[e]
        for v in topology.nodes:
            count = self._node_counts[v] - 1
            if count:
                self._node_counts[v] = count
            else:
                del self._node_counts[v]

    # -- queries -----------------------------------------------------------

    def intersection_nodes(self) -> FrozenSet[NodeId]:
        """``V^{T∩}_r``: nodes awake in every round of the window."""
        length = len(self._history)
        if length == 0:
            return frozenset()
        return frozenset(v for v, c in self._node_counts.items() if c == length)

    def intersection_edges(self) -> FrozenSet[Edge]:
        """``E^{T∩}_r``: edges present in every round of the window."""
        length = len(self._history)
        if length == 0:
            return frozenset()
        nodes = self.intersection_nodes()
        return frozenset(
            e
            for e, c in self._edge_counts.items()
            if c == length and e[0] in nodes and e[1] in nodes
        )

    def union_edges(self) -> FrozenSet[Edge]:
        """``E^{T∪}_r``: every edge present at least once in the window.

        Per Definition 2.1 the union edge set is *not* restricted to the
        intersection node set — a node's union degree counts every neighbour
        it has seen during the window, including recently woken ones.
        """
        return frozenset(self._edge_counts)

    def union_edges_all(self) -> FrozenSet[Edge]:
        """Alias of :meth:`union_edges` (kept for readability at call sites)."""
        return self.union_edges()

    def intersection_graph(self) -> Topology:
        """``G^{T∩}_r`` as a topology."""
        return Topology(self.intersection_nodes(), self.intersection_edges())

    def union_graph(self) -> Topology:
        """``G^{T∪}_r`` as a topology (``V^{T∩}_r`` plus the endpoints of union edges)."""
        nodes = set(self.intersection_nodes())
        edges = self.union_edges()
        for u, v in edges:
            nodes.add(u)
            nodes.add(v)
        return Topology(nodes, edges)

    def union_degree(self, v: NodeId) -> int:
        """``d^{∪T}_r(v)``: the number of distinct neighbours ``v`` has seen in the window."""
        return sum(1 for e in self._edge_counts if e[0] == v or e[1] == v)

    def snapshot(self) -> WindowSnapshot:
        """Return an immutable snapshot of the current window graphs."""
        return WindowSnapshot(
            round_index=self._round_index,
            window_length=len(self._history),
            intersection=self.intersection_graph(),
            union=self.union_graph(),
        )

    def history(self) -> Tuple[Topology, ...]:
        """The topologies currently in the window, oldest first."""
        return tuple(self._history)

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def over(cls, topologies: Iterable[Topology], T: int) -> "SlidingWindow":
        """Build a window by pushing every topology in ``topologies`` in order."""
        window = cls(T)
        for topo in topologies:
            window.push(topo)
        return window
