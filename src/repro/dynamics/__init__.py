"""Dynamic-graph substrate (Section 2 of the paper).

This subpackage provides everything "below" the distributed algorithms:

* :mod:`repro.dynamics.topology` — immutable per-round graph snapshots and
  the :class:`TopologyDelta` change sets between them (``Topology.apply``
  materialises a successor graph with structural sharing).
* :mod:`repro.dynamics.dynamic_graph` — the recorded graph sequence
  ``G_1, G_2, …`` stored as deltas with periodic checkpoint snapshots, plus
  sliding-window intersection / union graphs (Definition 2.1).
* :mod:`repro.dynamics.window` — the incremental sliding-window view that
  backs the T-intersection / T-union queries.
* :mod:`repro.dynamics.generators` — static base topologies.
* :mod:`repro.dynamics.churn` — per-edge Markov churn and flip churn models.
* :mod:`repro.dynamics.mobility` — random-waypoint mobility over a unit square.
* :mod:`repro.dynamics.adversary` — the adversary interface (obliviousness,
  adaptive-offline) and the :class:`AdversaryView` handed to adversaries.
* :mod:`repro.dynamics.adversaries` — concrete adversaries (scripted, churn,
  mobility, locally-static, targeted-colouring, targeted-MIS, composite).
"""

from repro.dynamics.topology import (
    EMPTY_DELTA,
    Topology,
    TopologyDelta,
    empty_topology,
    topology_from_networkx,
)
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.dynamics.window import SlidingWindow, WindowSnapshot
from repro.dynamics.adversary import (
    Adversary,
    AdversaryView,
    IncrementalAdversary,
    ADAPTIVE_OFFLINE,
    FULLY_OBLIVIOUS,
    delta_emission,
)
from repro.dynamics.wakeup import (
    AllAwake,
    ExplicitWakeup,
    StaggeredWakeup,
    UniformRandomWakeup,
    WakeupSchedule,
)
from repro.dynamics import generators, churn, mobility, adversaries

__all__ = [
    "Topology",
    "TopologyDelta",
    "EMPTY_DELTA",
    "empty_topology",
    "topology_from_networkx",
    "DynamicGraph",
    "SlidingWindow",
    "WindowSnapshot",
    "Adversary",
    "AdversaryView",
    "IncrementalAdversary",
    "ADAPTIVE_OFFLINE",
    "FULLY_OBLIVIOUS",
    "delta_emission",
    "WakeupSchedule",
    "AllAwake",
    "StaggeredWakeup",
    "UniformRandomWakeup",
    "ExplicitWakeup",
    "generators",
    "churn",
    "mobility",
    "adversaries",
]
