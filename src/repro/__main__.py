"""``python -m repro`` — the config-driven experiment pipeline CLI."""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
