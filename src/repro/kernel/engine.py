"""Round engines executing pure algorithms over numpy state arrays.

Two engines share the per-algorithm kernels:

* :class:`ArrayKernelEngine` — the fast path.  Requires a
  :class:`~repro.kernel.plan.KernelPlan` from the adversary: the round loop
  never materialises python topologies, never calls ``Adversary.step`` and
  records the trace lazily (deltas only).  Topology evolution is a boolean
  presence mask over a static edge universe; the engine diffs successive
  masks to recover the exact deltas the classic path would have stored.

* :class:`GenericKernelEngine` — the compatibility path.  Runs inside the
  classic ``Simulator._run_round`` structure (real ``Adversary.step``,
  real topologies, eager trace recording) but replaces the per-node
  compose/deliver/output loops with the vectorised kernels over a
  :class:`~repro.kernel.csr.CSRAdjacency` maintained from deltas.  Any
  adversary works here, including ones that remove nodes.

Both paths are byte-identical to the classic full/incremental loops —
``--verify kernel`` (:mod:`repro.verify.policy`) asserts it at runtime, and
the equivalence tests cover the full algorithm × adversary × wakeup matrix.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.obs.trace import active_sink
from repro.dynamics.topology import (
    EMPTY_DELTA,
    ArrayDelta,
    Topology,
    TopologyDelta,
)
from repro.runtime.metrics import RoundMetrics
from repro.runtime.simulator import RoundActivity

from .base import AlgorithmKernel, DeliverContext
from .csr import CSRAdjacency
from .plan import KernelPlan

__all__ = ["ArrayKernelEngine", "GenericKernelEngine"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)
_EMPTY_FROZEN: FrozenSet[int] = frozenset()


class _BitsAccounting:
    """The classic ``_record_bits`` histogram logic over array aggregates.

    Tracks ``count`` = number of nodes whose current message size equals
    ``max``, so the full O(n) rescan of ``kernel.bits`` only happens when
    the *last* maximum-sized message shrinks or leaves — the histogram
    semantics of the incremental path, without per-node bookkeeping.
    """

    __slots__ = ("total", "max", "count")

    def __init__(self) -> None:
        self.total = 0
        self.max = 0
        self.count = 0

    def account(self, kernel: AlgorithmKernel, changed: np.ndarray, old_bits: np.ndarray) -> None:
        if changed.size == 0:
            return
        new_bits = kernel.bits[changed]
        self.total += int(new_bits.sum()) - int(old_bits.sum())
        mx = int(new_bits.max())
        if mx > self.max:
            # no pre-existing node can sit at mx, so the holders are exactly
            # the changed nodes that reached it
            self.max = mx
            self.count = int((new_bits == mx).sum())
            return
        if mx == self.max:
            self.count += int((new_bits == mx).sum())
        self.count -= int((old_bits == self.max).sum())
        if self.count <= 0:
            self._rescan(kernel)

    def drop(self, kernel: AlgorithmKernel, old_bits: np.ndarray) -> None:
        if old_bits.size == 0:
            return
        self.total -= int(old_bits.sum())
        self.count -= int((old_bits == self.max).sum())
        if self.count <= 0:
            self._rescan(kernel)

    def _rescan(self, kernel: AlgorithmKernel) -> None:
        if kernel.bits.size:
            self.max = int(kernel.bits.max())
            self.count = int((kernel.bits == self.max).sum())
        else:
            self.max = 0
            self.count = 0


class ArrayKernelEngine:
    """Plan-driven array execution: no python topologies in the round loop."""

    is_array = True

    def __init__(self, simulator, kernel: AlgorithmKernel, plan: KernelPlan) -> None:
        self._sim = simulator
        self._kernel = kernel
        self._plan = plan
        n = simulator._n
        self._n = n
        # Routed through the shm/universe cache: a published base graph (or a
        # previous run over the same universe in this process) hands back the
        # mapped CSR arrays instead of re-sorting them.  Imported lazily —
        # :mod:`repro.exec` pulls in the scenario layer, which imports us.
        from repro.exec.shm import shared_edge_universe

        self._universe = shared_edge_universe(n, plan.universe_edges)
        self._unodes = frozenset(plan.nodes)
        self._unodes_arr = np.fromiter(sorted(self._unodes), dtype=np.int64, count=len(self._unodes))
        k = self._unodes_arr.size
        # the all-rows gather fast path needs node id == dirty row index
        self._ids_arange = bool(k) and int(self._unodes_arr[0]) == 0 and int(self._unodes_arr[-1]) == k - 1
        self._awake_mask = np.zeros(n, dtype=bool)
        self._awake_set: FrozenSet[int] = frozenset()
        self._awake_ids = _EMPTY_I8
        self._awake_count = 0
        self._fully_awake = False
        m = self._universe.m
        self._edge_awake = np.zeros(m, dtype=bool)
        #: double-buffered effective mask — masked rounds alternate between
        #: the two so the previous round's mask stays valid for the diff
        self._eff_buf = (np.zeros(m, dtype=bool), np.zeros(m, dtype=bool))
        self._eff = self._eff_buf[0]
        #: per-round scratch reused across rounds (no fresh m-sized allocs)
        self._diff = np.zeros(m, dtype=bool)
        self._eff_d = np.zeros(self._universe.usrc.size, dtype=bool)
        self._num_edges = 0
        self._scratch = np.zeros(n, dtype=bool)
        self._bits = _BitsAccounting()
        self._running: Dict[int, Optional[int]] = {}
        self._outputs_obj: Dict[int, Optional[int]] = {}
        self._stats_mode = simulator._trace.retention == "stats"
        if hasattr(kernel, "set_array_mode"):
            kernel.set_array_mode(self._universe)

    # -- wake-ups ----------------------------------------------------------------

    def _advance_wakeup(self, round_index: int) -> np.ndarray:
        if self._fully_awake:
            return _EMPTY_I8
        wakeup = self._plan.wakeup
        if wakeup is None:
            current = self._unodes
        else:
            current = frozenset(wakeup.awake_at(round_index)) & self._unodes
        newly = current - self._awake_set
        if not self._plan.cumulative_awake and not self._awake_set <= current:
            raise SimulationError(
                "kernel delivery requires a non-decreasing wake-up schedule; "
                f"round {round_index} lost awake nodes"
            )
        if not newly:
            return _EMPTY_I8
        arr = np.fromiter(sorted(newly), dtype=np.int64, count=len(newly))
        self._awake_set |= newly
        self._awake_mask[arr] = True
        self._awake_count += arr.size
        self._awake_ids = np.flatnonzero(self._awake_mask)
        if self._universe.m:
            np.logical_and(
                self._awake_mask[self._universe.eu],
                self._awake_mask[self._universe.ev],
                out=self._edge_awake,
            )
        if self._awake_set == self._unodes:
            self._fully_awake = True
        return arr

    # -- the round ---------------------------------------------------------------

    def run_round(self) -> None:
        sim = self._sim
        trace = sim._trace
        round_index = trace.num_rounds + 1
        kernel = self._kernel
        uni = self._universe

        newly = self._advance_wakeup(round_index)
        present = self._plan.advance(round_index)
        prev_eff = self._eff
        if self._fully_awake:
            eff = present
        else:
            # alternate between the two owned buffers so ``prev_eff`` stays
            # valid for the diff below (``present`` is plan-owned)
            bufs = self._eff_buf
            eff = bufs[1] if prev_eff is bufs[0] else bufs[0]
            np.logical_and(present, self._edge_awake, out=eff)
        if eff is prev_eff:
            added_idx = removed_idx = _EMPTY_I8
        else:
            # one flatnonzero over the diff mask, then split by direction —
            # the changed slots are few, so the masked gathers are O(changes)
            diff = self._diff
            np.not_equal(eff, prev_eff, out=diff)
            changed_slots = np.flatnonzero(diff)
            if changed_slots.size:
                added_mask = eff[changed_slots]
                added_idx = changed_slots[added_mask]
                removed_idx = changed_slots[~added_mask]
            else:
                added_idx = removed_idx = _EMPTY_I8
            self._eff = eff
        self._num_edges += int(added_idx.size) - int(removed_idx.size)

        if newly.size or added_idx.size or removed_idx.size:
            # ``newly`` transfers ownership: the delta materialises its
            # frozensets only if a consumer ever asks
            delta: TopologyDelta = ArrayDelta(newly, uni.eu, uni.ev, added_idx, removed_idx)
        else:
            delta = EMPTY_DELTA

        if newly.size:
            kernel.wake(newly)

        # compose (classic: volatile | scheduled recompose | newly awake)
        recompose_mask = kernel.volatile | kernel.recompose_next
        kernel.recompose_next[:] = False
        recompose_ids = np.flatnonzero(recompose_mask)
        changed_ids, old_bits = kernel.compose(recompose_ids)
        self._bits.account(kernel, changed_ids, old_bits)

        # dirty frontier (classic dense fallback included): the frontier is
        # roughly ``changed × (1 + avg degree) + #volatile`` nodes, so once
        # that estimate saturates the awake set, delivering to everyone is
        # cheaper than computing a frontier that covers everyone anyway
        frontier_mult = max(4, 1 + (2 * self._num_edges) // max(self._awake_count, 1))
        frontier_est = frontier_mult * changed_ids.size + int(
            np.count_nonzero(kernel.volatile)
        )
        if frontier_est >= self._awake_count:
            dirty_ids = self._awake_ids
        else:
            scratch = self._scratch
            scratch[:] = False
            if added_idx.size:
                scratch[uni.eu[added_idx]] = True
                scratch[uni.ev[added_idx]] = True
            if removed_idx.size:
                scratch[uni.eu[removed_idx]] = True
                scratch[uni.ev[removed_idx]] = True
            if newly.size:
                scratch[newly] = True
            np.logical_or(scratch, kernel.volatile, out=scratch)
            if changed_ids.size:
                scratch[changed_ids] = True
                slots, _ = uni.row_slots(changed_ids)
                if slots.size:
                    kept = slots[eff[uni.uedge[slots]]]
                    scratch[uni.udst[kept]] = True
            np.logical_and(scratch, self._awake_mask, out=scratch)
            dirty_ids = np.flatnonzero(scratch)
            # a near-saturated frontier costs more to gather row-by-row than
            # the all-rows fast path; widening dirty to the awake set is
            # byte-identical (skipped nodes have unchanged inboxes)
            if 10 * dirty_ids.size >= 9 * self._awake_count:
                dirty_ids = self._awake_ids

        # deliver
        if uni.m:
            eff_d = self._eff_d
            np.take(eff, uni.uedge, out=eff_d)
        else:
            eff_d = _EMPTY_BOOL
        if self._ids_arange and self._fully_awake and dirty_ids.size == self._unodes_arr.size:
            slots = np.flatnonzero(eff_d)
            seg = uni.usrc[slots]
        else:
            slots, seg = uni.row_slots(dirty_ids)
            if slots.size:
                kept_mask = eff_d[slots]
                slots = slots[kept_mask]
                seg = seg[kept_mask]
        nbrs = uni.udst[slots]
        ctx = DeliverContext(uni, eff_d, slots)
        kernel.deliver(dirty_ids, seg, nbrs, ctx)

        # fingerprints + outputs
        changed_out, values = kernel.post_round(dirty_ids)
        metrics = RoundMetrics(
            round_index=round_index,
            num_awake=self._awake_count,
            num_edges=self._num_edges,
            messages_sent=self._awake_count,
            messages_delivered=2 * self._num_edges,
            max_message_bits=self._bits.max,
            total_message_bits=self._bits.total,
            outputs_changed=int(changed_out.size),
            algorithm_counters=kernel.counters(),
        )
        if self._stats_mode:
            # O(#changes) retention: the trace keeps only this round's
            # update; the running vector is mutated in place and the O(n)
            # per-round copy (plus the adversary-view history, which the
            # plan-driven path never reads) is skipped entirely.
            update: Dict[int, Optional[int]] = (
                dict(zip(changed_out.tolist(), values)) if changed_out.size else {}
            )
            self._running.update(update)
            trace.record_stats(delta, update, metrics, changed_out)
        else:
            if changed_out.size:
                running = self._running
                for v, value in zip(changed_out.tolist(), values):
                    running[v] = value
                outputs = dict(running)
            else:
                outputs = self._outputs_obj
            self._outputs_obj = outputs
            trace.record_lazy(delta, outputs, metrics, changed_out)
            sim._output_history.append(outputs)
            sim._previous_outputs = outputs
        # the activity object is cheap now: its frozenset views materialise
        # lazily, so rounds nobody inspects never pay the conversions
        # (``recompose_ids``/``dirty_ids``/``changed_out`` are never mutated
        # after this point)
        sim._last_activity = RoundActivity(
            round_index=round_index,
            mode="kernel",
            delta=delta,
            composed=recompose_ids,
            delivered=dirty_ids,
            changed_outputs=changed_out,
        )
        sim._last_activity_builder = None

        sink = active_sink()
        if sink is not None:
            # ``_run_round`` never runs on this path, so the engine emits
            # its own round event (numpy scalars coerced for json).
            sink.emit(
                "round",
                round=round_index,
                mode="kernel",
                awake=int(self._awake_count),
                edges=int(self._num_edges),
                composed=int(recompose_ids.size),
                frontier=int(dirty_ids.size),
                changed=int(changed_out.size),
                quiescent=int(dirty_ids.size) == 0,
            )

    def finalize(self) -> None:
        self._kernel.finalize()


class GenericKernelEngine:
    """Kernel compose/deliver over a delta-maintained CSR, classic round shell."""

    is_array = False

    def __init__(self, simulator, kernel: AlgorithmKernel) -> None:
        self._sim = simulator
        self._kernel = kernel
        self._adj = CSRAdjacency(simulator._n)
        self._bits = _BitsAccounting()
        self._running: Dict[int, Optional[int]] = {}
        self._outputs_obj: Dict[int, Optional[int]] = {}

    def round(
        self,
        round_index: int,
        previous: Topology,
        topology: Topology,
        delta: Optional[TopologyDelta],
        newly_awake: FrozenSet[int],
    ) -> Tuple[Dict[int, Optional[int]], RoundMetrics, FrozenSet[int], object]:
        kernel = self._kernel
        effective_delta = (
            delta if delta is not None else TopologyDelta.between(previous, topology)
        )
        removed = effective_delta.removed_nodes
        if removed:
            removed_arr = np.fromiter(sorted(removed), dtype=np.int64, count=len(removed))
            old = kernel.drop(removed_arr)
            self._bits.drop(kernel, old)
            running = self._running
            for v in removed:
                running.pop(v, None)
        self._adj.apply_delta(effective_delta)

        if newly_awake:
            kernel.wake(np.fromiter(sorted(newly_awake), dtype=np.int64, count=len(newly_awake)))

        recompose_mask = kernel.volatile | kernel.recompose_next
        kernel.recompose_next[:] = False
        recompose_ids = np.flatnonzero(recompose_mask)
        changed_ids, old_bits = kernel.compose(recompose_ids)
        self._bits.account(kernel, changed_ids, old_bits)

        nodes = topology.nodes
        if 4 * changed_ids.size >= len(nodes):
            dirty = set(nodes)
        else:
            dirty = set(effective_delta.touched_nodes())
            dirty.update(np.flatnonzero(kernel.volatile).tolist())
            changed_list = changed_ids.tolist()
            dirty.update(changed_list)
            for v in changed_list:
                dirty.update(topology.neighbors(v))
            dirty &= nodes
        dirty_ids = np.fromiter(sorted(dirty), dtype=np.int64, count=len(dirty))

        seg, nbrs = self._adj.gather(dirty_ids)
        kernel.deliver(dirty_ids, seg, nbrs, None)

        changed_out, values = kernel.post_round(dirty_ids)
        if changed_out.size or removed:
            running = self._running
            for v, value in zip(changed_out.tolist(), values):
                running[v] = value
            outputs = dict(running)
        else:
            outputs = self._outputs_obj
        self._outputs_obj = outputs

        changed_frozen = frozenset(changed_out.tolist()) if changed_out.size else _EMPTY_FROZEN
        metrics = RoundMetrics(
            round_index=round_index,
            num_awake=topology.num_nodes,
            num_edges=topology.num_edges,
            messages_sent=topology.num_nodes,
            messages_delivered=2 * topology.num_edges,
            max_message_bits=self._bits.max,
            total_message_bits=self._bits.total,
            outputs_changed=len(changed_frozen),
            algorithm_counters=kernel.counters(),
        )
        activity = RoundActivity(
            round_index=round_index,
            mode="kernel",
            delta=delta,
            composed=frozenset(recompose_ids.tolist()),
            delivered=frozenset(dirty_ids.tolist()),
            changed_outputs=changed_frozen,
        )
        return outputs, metrics, changed_frozen, activity

    def finalize(self) -> None:
        self._kernel.finalize()
