"""Array kernel for the greedy (Δ+1)-ish coloring algorithms.

Covers :class:`BasicColoring` (``uncolor_enabled=False``) and
:class:`SColor` (the self-stabilising variant with the un-color rule).
State layout:

* ``color[v]`` — adopted color, ``-1`` while uncolored.
* ``pal[v] = (degree, excluded)`` — the palette recorded at the node's last
  delivery while uncolored: the palette *set* is
  ``{1..degree+1} - set(excluded)`` with ``excluded`` a sorted tuple.
  Storing the complement keeps the common case (few fixed neighbors) tiny
  and makes the classic ``sorted(palette)[rng.integers(0, len)]`` draw
  reproducible via an order-statistic walk.
* message cache ``mtag``/``mval``: ``FIXED`` carries the color, ``TENT``
  carries the tentative choice (``-1`` encodes the classic ``None`` choice
  from an empty palette).

The compose step is a faithful python loop (it must consume
``rng(v).integers`` exactly like the classic code); deliver and the
fingerprint/output pass are vectorised.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import AlgorithmKernel, DeliverContext

__all__ = ["ColoringKernel"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)

_T_FIXED = 1
_T_TENT = 2


class ColoringKernel(AlgorithmKernel):
    def __init__(self, algorithm, *, uncolor_enabled: bool, track_uncolor_events: bool) -> None:
        super().__init__(algorithm)
        n = self.n
        self._color = np.full(n, -1, dtype=np.int64)
        self._mtag = np.zeros(n, dtype=np.int64)
        self._mval = np.zeros(n, dtype=np.int64)
        self._pal: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self._uncolor_enabled = bool(uncolor_enabled)
        self._track_uncolor_events = bool(track_uncolor_events)
        self._uncolored = 0
        self._uncolor_events = 0
        # palette exclusion keys are seg * stride + color with color <= n + 1
        self._stride = n + 2
        #: cached bound ``rng(v).integers`` per node (the compose hot loop)
        self._draw: List[Optional[object]] = [None] * n

    # -- round hooks ---------------------------------------------------------

    def wake(self, ids: np.ndarray) -> None:
        self.recompose_next[ids] = True
        fresh = ids[~self.woken[ids]]
        if fresh.size == 0:
            return
        self.woken[fresh] = True
        pal = self._pal
        for v in fresh.tolist():
            pal[v] = (0, ())  # classic on_wake palette is {1}
        self._uncolored += fresh.size

    def compose(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Colored nodes broadcast the deterministic ``(FIXED, c)`` — handled
        # vectorised (``frexp`` exponent == ``int.bit_length`` for ints, and
        # colors are far below 2**53 so the conversion is exact).  Only
        # uncolored nodes walk their palette and draw from their per-node
        # stream, in a python loop with the bound ``rng(v).integers``
        # cached; the draw order per node is untouched.
        alg = self._algorithm
        c_all = self._color[ids]
        fixed_sel = c_all >= 0
        fixed_ids = ids[fixed_sel]
        chg_parts: List[np.ndarray] = []
        old_parts: List[np.ndarray] = []
        if fixed_ids.size:
            val = c_all[fixed_sel]
            unchanged = (
                self._has_msg[fixed_ids]
                & (self._mtag[fixed_ids] == _T_FIXED)
                & (self._mval[fixed_ids] == val)
            )
            chg = fixed_ids[~unchanged]
            if chg.size:
                vch = val[~unchanged]
                chg_parts.append(chg)
                old_parts.append(self.bits[chg])
                self._has_msg[chg] = True
                self._mtag[chg] = _T_FIXED
                self._mval[chg] = vch
                self.bits[chg] = 43 + np.frexp(vch.astype(np.float64))[1].astype(np.int64)

        unc_ids = ids[~fixed_sel]
        if unc_ids.size:
            draw_cache = self._draw
            pal = self._pal
            id_list = unc_ids.tolist()
            has_rows = self._has_msg[unc_ids].tolist()
            tag_rows = self._mtag[unc_ids].tolist()
            mval_rows = self._mval[unc_ids].tolist()
            bits_rows = self.bits[unc_ids].tolist()
            changed: List[int] = []
            old_bits: List[int] = []
            new_val: List[int] = []
            new_bits: List[int] = []
            for i, v in enumerate(id_list):
                degree, excluded = pal[v]
                size = degree + 1 - len(excluded)
                if size <= 0:
                    val_i = -1
                    b_i = 35
                else:
                    # classic: sorted(palette)[rng.integers(0, len(palette))]
                    draw = draw_cache[v]
                    if draw is None:
                        draw = draw_cache[v] = alg.rng(v).integers
                    choice = int(draw(0, size)) + 1
                    for e in excluded:
                        if e <= choice:
                            choice += 1
                        else:
                            break
                    val_i = choice
                    b_i = 35 + choice.bit_length()
                if has_rows[i] and tag_rows[i] == _T_TENT and mval_rows[i] == val_i:
                    continue
                changed.append(v)
                old_bits.append(bits_rows[i])
                new_val.append(val_i)
                new_bits.append(b_i)
            if changed:
                chg = np.asarray(changed, dtype=np.int64)
                chg_parts.append(chg)
                old_parts.append(np.asarray(old_bits, dtype=np.int64))
                self._has_msg[chg] = True
                self._mtag[chg] = _T_TENT
                self._mval[chg] = new_val
                self.bits[chg] = new_bits

        if not chg_parts:
            return _EMPTY_I8, _EMPTY_I8
        if len(chg_parts) == 1:
            return chg_parts[0], old_parts[0]
        return np.concatenate(chg_parts), np.concatenate(old_parts)

    def deliver(
        self,
        ids: np.ndarray,
        seg: np.ndarray,
        nbrs: np.ndarray,
        ctx: Optional[DeliverContext],
    ) -> None:
        k = ids.size
        if k == 0:
            return
        ntag = self._mtag[nbrs]
        nval = self._mval[nbrs]
        deg = np.bincount(seg, minlength=k)
        deg_p1 = deg + 1
        own_color = self._color[ids]
        own_choice = self._mval[ids]  # tentative choice while uncolored
        uncolored = own_color < 0

        fixed_slots = ntag == _T_FIXED

        # "some neighbor picked my choice" is one scatter: on the array path
        # (``ctx`` set) every delivered slot carries a composed message
        # (``ntag != 0``: FIXED or TENT); the generic path can hand us slots
        # to sleeping neighbors, which must not count
        same = nval == own_choice[seg]
        conflict = np.zeros(k, dtype=bool)
        if ctx is not None:
            conflict[seg[same]] = True
        else:
            conflict[seg[same & (ntag != 0)]] = True

        adopt = (
            uncolored
            & (own_choice >= 1)
            & (own_choice <= deg_p1)
            & ~conflict
        )
        if self._uncolor_enabled:
            hit_own = np.zeros(k, dtype=bool)
            hit_own[seg[fixed_slots & (nval == own_color[seg])]] = True
            # classic: color not in palette == color > degree+1 or color held
            # by a fixed neighbor (colors are always >= 1)
            uncolor = ~uncolored & ((own_color > deg_p1) | hit_own)
        else:
            uncolor = np.zeros(k, dtype=bool)

        adopt_ids = ids[adopt]
        if adopt_ids.size:
            self._color[adopt_ids] = own_choice[adopt]
            self._uncolored -= int(adopt_ids.size)
        uncolor_ids = ids[uncolor]
        if uncolor_ids.size:
            self._color[uncolor_ids] = -1
            self._uncolored += int(uncolor_ids.size)
            self._uncolor_events += int(uncolor_ids.size)

        # palettes only matter for nodes that are uncolored going into the
        # next compose (classic writes them for every delivered node, but
        # only uncolored nodes ever read them before the next delivery)
        now_uncolored = (uncolored & ~adopt) | uncolor
        if not now_uncolored.any():
            return
        sub = np.flatnonzero(now_uncolored[seg] & fixed_slots)
        seg_sub = seg[sub]
        nval_sub = nval[sub]
        keep_sub = nval_sub <= deg_p1[seg_sub]
        raw = seg_sub[keep_sub] * self._stride + nval_sub[keep_sub]
        raw.sort()
        if raw.size:
            keep = np.empty(raw.size, dtype=bool)
            keep[0] = True
            np.not_equal(raw[1:], raw[:-1], out=keep[1:])
            keys = raw[keep]
        else:
            keys = raw
        key_seg = keys // self._stride
        idxs = np.flatnonzero(now_uncolored)
        starts = np.searchsorted(key_seg, idxs, side="left").tolist()
        ends = np.searchsorted(key_seg, idxs, side="right").tolist()
        pal = self._pal
        sel_ids = ids[idxs].tolist()
        sel_deg = deg[idxs].tolist()
        key_col = (keys % self._stride).tolist()
        for j, v in enumerate(sel_ids):
            pal[v] = (sel_deg[j], tuple(key_col[starts[j] : ends[j]]))

    def post_round(self, ids: np.ndarray) -> Tuple[np.ndarray, List[object]]:
        color_rows = self._color[ids]
        self._post_fingerprints(ids, color_rows < 0, color_rows)
        return self._post_outputs(ids, color_rows)

    def counters(self) -> Dict[str, float]:
        if self._track_uncolor_events:
            return {
                "uncolored": float(self._uncolored),
                "uncolor_events": float(self._uncolor_events),
            }
        return {"uncolored": float(self._uncolored)}

    def finalize(self) -> None:
        alg = self._algorithm
        woken = np.flatnonzero(self.woken).tolist()
        alg._awake = set(woken)
        color: Dict[int, Optional[int]] = {}
        tentative: Dict[int, Optional[int]] = {}
        palette: Dict[int, set] = {}
        for v in woken:
            c = int(self._color[v])
            color[v] = c if c >= 0 else None
            if self._mtag[v] == _T_TENT:
                t = int(self._mval[v])
                tentative[v] = t if t >= 0 else None
            else:
                # classic keeps the stale pre-coloring tentative; nothing
                # reads it while the node is colored, so None is safe
                tentative[v] = None
            degree, excluded = self._pal.get(v, (0, ()))
            palette[v] = set(range(1, degree + 2)) - set(excluded)
        alg._color = color
        alg._tentative = tentative
        alg._palette = palette
        alg._uncolored_count = int(self._uncolored)
        if self._track_uncolor_events:
            alg._uncolor_events = int(self._uncolor_events)
