"""Array-native round kernel for pure algorithms.

``repro.kernel`` executes algorithms that declare
``message_stability = "pure"`` over dense numpy state arrays and a CSR
adjacency, byte-identical to the classic per-node loops (see
``delivery="kernel"`` on :class:`repro.runtime.simulator.Simulator` and the
``--verify kernel`` runtime gate, :mod:`repro.verify.policy`).

The package requires numpy >= 1.26 (vectorised ufunc paths the kernels
rely on); the import fails fast with a clear message otherwise.
"""

from __future__ import annotations

import numpy as _np

_REQUIRED_NUMPY = (1, 26)


def _check_numpy_version() -> None:
    parts = []
    for token in _np.__version__.split(".")[:2]:
        digits = ""
        for ch in token:
            if ch.isdigit():
                digits += ch
            else:
                break
        parts.append(int(digits or 0))
    if tuple(parts) < _REQUIRED_NUMPY:
        floor = ".".join(str(p) for p in _REQUIRED_NUMPY)
        raise ImportError(
            f"repro.kernel requires numpy>={floor} but found {_np.__version__}; "
            f"upgrade with `pip install 'numpy>={floor}'` or run with "
            "delivery='incremental' to stay on the classic engine"
        )


_check_numpy_version()

from .base import AlgorithmKernel, DeliverContext  # noqa: E402
from .csr import CSRAdjacency, EdgeUniverse  # noqa: E402
from .plan import KernelPlan  # noqa: E402

__all__ = [
    "AlgorithmKernel",
    "CSRAdjacency",
    "DeliverContext",
    "EdgeUniverse",
    "KernelPlan",
]
