"""Array kernels for the MIS algorithms (SMis and DMis).

State codes: ``0`` undecided, ``1`` MIS, ``2`` dominated — chosen so the
code doubles as the fingerprint token (MIS ``(MARK,)`` vs dominated
``None`` vs VOLATILE undecided) and maps to the paper's output encoding
via ``[-1, 1, 0]``.

SMis accumulates neighbor desire levels in *ascending neighbor id* order
(``np.bincount`` is a sequential pass over slots, which the universe
lexsort orders by neighbor) — the classic ``deliver`` iterates its inbox
in sorted key order for exactly this reason.

DMis keeps the per-instance intersection graph ("live" sets) as a boolean
mask over doubled universe slots in array mode, or python frozensets on
the generic path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.types import MisState

from .base import AlgorithmKernel, DeliverContext
from .nodestreams import NodeStreamPool

__all__ = ["SMisKernel", "DMisKernel"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)

_S_UND = 0
_S_MIS = 1
_S_DOM = 2
_STATE_ENUMS = (MisState.UNDECIDED, MisState.MIS, MisState.DOMINATED)
_OUT_LOOKUP = np.array([-1, 1, 0], dtype=np.int64)

_T_NONE = 0
_T_MARK = 1
_T_UND = 2  # SMis ``(UNDECIDED_MSG, p, candidate)``
_T_RAND = 2  # DMis ``(RAND, value)``


class SMisKernel(AlgorithmKernel):
    def __init__(self, algorithm, *, undecide_enabled: bool) -> None:
        super().__init__(algorithm)
        n = self.n
        self._undecide_enabled = bool(undecide_enabled)
        self._state = np.zeros(n, dtype=np.int64)
        self._desire = np.zeros(n, dtype=np.float64)
        self._cand = np.zeros(n, dtype=bool)
        self._mtag = np.zeros(n, dtype=np.int64)
        self._mp = np.zeros(n, dtype=np.float64)
        self._mcand = np.zeros(n, dtype=bool)
        self._floor = 1.0 / (5.0 * n)
        self._undecided = 0
        self._undecide_events = 0
        #: vectorised per-node streams, byte-identical to ``alg.rng(v)``
        self._pool = NodeStreamPool(n, algorithm.config.rng_factory.seed, algorithm.name)

    def wake(self, ids: np.ndarray) -> None:
        self.recompose_next[ids] = True
        fresh = ids[~self.woken[ids]]
        if fresh.size == 0:
            return
        self.woken[fresh] = True
        self._state[fresh] = _S_UND
        self._desire[fresh] = 0.5
        self._cand[fresh] = False
        self._undecided += int(fresh.size)

    def compose(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Decided nodes carry a deterministic message — handled vectorised.
        # Only undecided nodes draw, one batched pull from the stream pool
        # (streams are per-node independent, so batching never reorders a
        # node's own draw sequence).
        state_rows = self._state[ids]
        und_sel = state_rows == _S_UND
        rest_ids = ids[~und_sel]
        chg_parts: List[np.ndarray] = []
        old_parts: List[np.ndarray] = []
        if rest_ids.size:
            mis_rows = state_rows[~und_sel] == _S_MIS
            tag = np.where(mis_rows, _T_MARK, _T_NONE)
            b = np.where(mis_rows, 34, 1)
            unchanged = (
                self._has_msg[rest_ids]
                & (self._mtag[rest_ids] == tag)
                & (self._mp[rest_ids] == 0.0)
                & ~self._mcand[rest_ids]
            )
            chg = rest_ids[~unchanged]
            if chg.size:
                chg_parts.append(chg)
                old_parts.append(self.bits[chg])
                self._has_msg[chg] = True
                self._mtag[chg] = tag[~unchanged]
                self._mp[chg] = 0.0
                self._mcand[chg] = False
                self.bits[chg] = b[~unchanged]

        und_ids_arr = ids[und_sel]
        if und_ids_arr.size:
            p = self._desire[und_ids_arr]
            cnd = self._pool.random(und_ids_arr) < p
            self._cand[und_ids_arr] = cnd
            keep = ~(
                self._has_msg[und_ids_arr]
                & (self._mtag[und_ids_arr] == _T_UND)
                & (self._mp[und_ids_arr] == p)
                & (self._mcand[und_ids_arr] == cnd)
            )
            chg = und_ids_arr[keep]
            if chg.size:
                chg_parts.append(chg)
                old_parts.append(self.bits[chg])
                self._has_msg[chg] = True
                self._mtag[chg] = _T_UND
                self._mp[chg] = p[keep]
                self._mcand[chg] = cnd[keep]
                self.bits[chg] = 91

        if not chg_parts:
            return _EMPTY_I8, _EMPTY_I8
        if len(chg_parts) == 1:
            return chg_parts[0], old_parts[0]
        return np.concatenate(chg_parts), np.concatenate(old_parts)

    def deliver(
        self,
        ids: np.ndarray,
        seg: np.ndarray,
        nbrs: np.ndarray,
        ctx: Optional[DeliverContext],
    ) -> None:
        k = ids.size
        if k == 0:
            return
        ntag = self._mtag[nbrs]
        mark = np.zeros(k, dtype=bool)
        mark[seg[ntag == _T_MARK]] = True
        und_slots = ntag == _T_UND
        if und_slots.any():
            eff_deg = np.bincount(
                seg[und_slots], weights=self._mp[nbrs[und_slots]], minlength=k
            )
            note = np.zeros(k, dtype=bool)
            note[seg[und_slots & self._mcand[nbrs]]] = True
        else:
            eff_deg = np.zeros(k, dtype=np.float64)
            note = np.zeros(k, dtype=bool)

        s = self._state[ids]
        undm = s == _S_UND
        if undm.any():
            uids = ids[undm]
            d = self._desire[uids]
            self._desire[uids] = np.where(
                eff_deg[undm] >= 2.0,
                np.maximum(d / 2.0, self._floor),
                np.minimum(2.0 * d, 0.5),
            )

        to_dom = undm & mark
        to_mis = undm & ~mark & self._cand[ids] & ~note
        if self._undecide_enabled:
            to_und = ((s == _S_MIS) & mark) | ((s == _S_DOM) & ~mark)
        else:
            to_und = np.zeros(k, dtype=bool)

        state = self._state
        dom_ids = ids[to_dom]
        mis_ids = ids[to_mis]
        und_ids = ids[to_und]
        state[dom_ids] = _S_DOM
        state[mis_ids] = _S_MIS
        state[und_ids] = _S_UND
        self._undecided += int(und_ids.size) - int(dom_ids.size) - int(mis_ids.size)
        self._undecide_events += int(und_ids.size)

    def post_round(self, ids: np.ndarray) -> Tuple[np.ndarray, List[object]]:
        s = self._state[ids]
        self._post_fingerprints(ids, s == _S_UND, s)
        return self._post_outputs(ids, _OUT_LOOKUP[s])

    def counters(self) -> Dict[str, float]:
        return {
            "undecided": float(self._undecided),
            "undecide_events": float(self._undecide_events),
        }

    def finalize(self) -> None:
        alg = self._algorithm
        woken = np.flatnonzero(self.woken).tolist()
        alg._awake = set(woken)
        alg._state = {v: _STATE_ENUMS[int(self._state[v])] for v in woken}
        alg._desire = {v: float(self._desire[v]) for v in woken}
        alg._candidate = {v: bool(self._cand[v]) for v in woken}
        alg._undecided_n = int(self._undecided)
        alg._undecide_events = int(self._undecide_events)
        alg._node_rng_skips = self._pool.draw_skips()


class DMisKernel(AlgorithmKernel):
    def __init__(self, algorithm, *, restrict_to_intersection: bool) -> None:
        super().__init__(algorithm)
        n = self.n
        self._restrict = bool(restrict_to_intersection)
        self._state = np.zeros(n, dtype=np.int64)
        self._drawn = np.zeros(n, dtype=np.float64)
        self._mtag = np.zeros(n, dtype=np.int64)
        self._mp = np.zeros(n, dtype=np.float64)
        self._undecided = 0
        #: vectorised per-node streams, byte-identical to ``alg.rng(v)``
        self._pool = NodeStreamPool(n, algorithm.config.rng_factory.seed, algorithm.name)
        # live-set storage: doubled-slot mask in array mode, frozensets otherwise
        self._live_dir: Optional[np.ndarray] = None
        self._live_init = np.zeros(n, dtype=bool)
        self._live_py: Dict[int, Optional[frozenset]] = {}

    def set_array_mode(self, universe) -> None:
        """Switch live-set bookkeeping to a doubled-universe slot mask."""

        self._universe = universe
        self._live_dir = np.zeros(universe.usrc.size, dtype=bool)

    def wake(self, ids: np.ndarray) -> None:
        self.recompose_next[ids] = True
        fresh = ids[~self.woken[ids]]
        if fresh.size == 0:
            return
        self.woken[fresh] = True
        self._state[fresh] = _S_UND
        self._drawn[fresh] = np.inf
        self._live_init[fresh] = False
        self._undecided += int(fresh.size)

    def compose(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Same split as SMisKernel.compose: decided rows vectorised,
        # undecided rows pull one batched draw from the stream pool.
        state_rows = self._state[ids]
        und_sel = state_rows == _S_UND
        rest_ids = ids[~und_sel]
        chg_parts: List[np.ndarray] = []
        old_parts: List[np.ndarray] = []
        if rest_ids.size:
            mis_rows = state_rows[~und_sel] == _S_MIS
            tag = np.where(mis_rows, _T_MARK, _T_NONE)
            b = np.where(mis_rows, 34, 1)
            unchanged = (
                self._has_msg[rest_ids]
                & (self._mtag[rest_ids] == tag)
                & (self._mp[rest_ids] == 0.0)
            )
            chg = rest_ids[~unchanged]
            if chg.size:
                chg_parts.append(chg)
                old_parts.append(self.bits[chg])
                self._has_msg[chg] = True
                self._mtag[chg] = tag[~unchanged]
                self._mp[chg] = 0.0
                self.bits[chg] = b[~unchanged]

        und_ids_arr = ids[und_sel]
        if und_ids_arr.size:
            val = self._pool.random(und_ids_arr)
            self._drawn[und_ids_arr] = val
            keep = ~(
                self._has_msg[und_ids_arr]
                & (self._mtag[und_ids_arr] == _T_RAND)
                & (self._mp[und_ids_arr] == val)
            )
            chg = und_ids_arr[keep]
            if chg.size:
                chg_parts.append(chg)
                old_parts.append(self.bits[chg])
                self._has_msg[chg] = True
                self._mtag[chg] = _T_RAND
                self._mp[chg] = val[keep]
                self.bits[chg] = 98

        if not chg_parts:
            return _EMPTY_I8, _EMPTY_I8
        if len(chg_parts) == 1:
            return chg_parts[0], old_parts[0]
        return np.concatenate(chg_parts), np.concatenate(old_parts)

    def deliver(
        self,
        ids: np.ndarray,
        seg: np.ndarray,
        nbrs: np.ndarray,
        ctx: Optional[DeliverContext],
    ) -> None:
        if ctx is not None:
            self._deliver_array(ids, seg, nbrs, ctx)
        else:
            self._deliver_generic(ids, seg, nbrs)

    def _deliver_array(
        self, ids: np.ndarray, seg: np.ndarray, nbrs: np.ndarray, ctx: DeliverContext
    ) -> None:
        k = ids.size
        if k == 0:
            return
        live = self._live_dir
        eff_d = ctx.eff_d
        if self._restrict:
            # Global restrict: a no-op for untouched rows (their effective
            # slots did not change this round), exact for delivered rows.
            np.logical_and(live, eff_d, out=live)
            uninit = ids[~self._live_init[ids]]
            if uninit.size:
                slots, _ = ctx.universe.row_slots(uninit)
                live[slots] = eff_d[slots]
                self._live_init[uninit] = True
        else:
            slots, _ = ctx.universe.row_slots(ids)
            live[slots] = eff_d[slots]
            self._live_init[ids] = True

        s = self._state[ids]
        undm = s == _S_UND
        if not undm.any():
            return
        lv = live[ctx.slots]
        ntag = self._mtag[nbrs]
        mark = np.zeros(k, dtype=bool)
        mark[seg[lv & (ntag == _T_MARK)]] = True
        rsel = lv & (ntag == _T_RAND)
        minr = np.full(k, np.inf)
        np.minimum.at(minr, seg[rsel], self._mp[nbrs[rsel]])

        to_dom = undm & mark
        to_mis = undm & ~mark & (self._drawn[ids] < minr)
        self._apply_transitions(ids[to_dom], ids[to_mis])

    def _deliver_generic(self, ids: np.ndarray, seg: np.ndarray, nbrs: np.ndarray) -> None:
        k = ids.size
        if k == 0:
            return
        bounds = np.searchsorted(seg, np.arange(k + 1))
        state = self._state
        mtag = self._mtag
        mp = self._mp
        drawn = self._drawn
        live_py = self._live_py
        restrict = self._restrict
        dom: List[int] = []
        mis: List[int] = []
        for i, v in enumerate(ids.tolist()):
            keys = frozenset(nbrs[bounds[i] : bounds[i + 1]].tolist())
            previous = live_py.get(v)
            if previous is None:
                live = keys
            elif restrict:
                live = previous & keys
            else:
                live = keys
            live_py[v] = live
            if state[v] != _S_UND:
                continue
            mark = False
            minr = float("inf")
            for u in live:
                tag = mtag[u]
                if tag == _T_MARK:
                    mark = True
                elif tag == _T_RAND:
                    val = float(mp[u])
                    if val < minr:
                        minr = val
            if mark:
                dom.append(v)
            elif float(drawn[v]) < minr:
                mis.append(v)
        self._apply_transitions(
            np.asarray(dom, dtype=np.int64), np.asarray(mis, dtype=np.int64)
        )

    def _apply_transitions(self, dom_ids: np.ndarray, mis_ids: np.ndarray) -> None:
        self._state[dom_ids] = _S_DOM
        self._state[mis_ids] = _S_MIS
        self._undecided -= int(dom_ids.size) + int(mis_ids.size)

    def post_round(self, ids: np.ndarray) -> Tuple[np.ndarray, List[object]]:
        s = self._state[ids]
        self._post_fingerprints(ids, s == _S_UND, s)
        return self._post_outputs(ids, _OUT_LOOKUP[s])

    def counters(self) -> Dict[str, float]:
        return {"undecided": float(self._undecided)}

    def finalize(self) -> None:
        alg = self._algorithm
        woken = np.flatnonzero(self.woken).tolist()
        alg._awake = set(woken)
        alg._state = {v: _STATE_ENUMS[int(self._state[v])] for v in woken}
        alg._drawn = {v: float(self._drawn[v]) for v in woken}
        live: Dict[int, Optional[frozenset]] = {v: None for v in woken}
        if self._live_dir is not None:
            init_ids = np.asarray(
                [v for v in woken if self._live_init[v]], dtype=np.int64
            )
            if init_ids.size:
                uni = self._universe
                slots, seg = uni.row_slots(init_ids)
                kept = self._live_dir[slots]
                kept_seg = seg[kept]
                kept_dst = uni.udst[slots[kept]]
                bounds = np.searchsorted(kept_seg, np.arange(init_ids.size + 1))
                for i, v in enumerate(init_ids.tolist()):
                    live[v] = frozenset(kept_dst[bounds[i] : bounds[i + 1]].tolist())
        else:
            for v in woken:
                live[v] = self._live_py.get(v)
        alg._live = live
        alg._undecided_n = int(self._undecided)
        alg._node_rng_skips = self._pool.draw_skips()
