"""Vectorised per-node PCG64 streams for the array kernels.

The classic per-node randomness contract is ``rng(v) =
default_rng(derive_seed(child_seed, "node", component, v))`` with one
``Generator`` object per node (see
:meth:`repro.runtime.algorithm.DistributedAlgorithm.rng`).  Spawning those
generators dominates the first kernel round at large ``n``: one SHA-256
derivation plus one ``SeedSequence``/``PCG64`` construction is ~20µs per
node, i.e. seconds of pure setup at n = 10^5–10^6 before a single message
is composed.

:class:`NodeStreamPool` replaces the object-per-node scheme with four
``uint64`` state arrays (PCG64 state/increment, high/low words) and draws
whole batches of ``random()`` values in a handful of numpy passes.  It is
**byte-identical** to the classic path — the SeedSequence entropy-mixing
loop and the PCG64 seeding/step/output functions are reimplemented here in
vectorised 32/64-bit limb arithmetic, and the equivalence is property-tested
against ``numpy.random.default_rng`` (``tests/test_scale_path.py``).  The
mixing-constant schedules are data-independent, so they are precomputed once
at import time.

Two subtleties:

* a seed below ``2**32`` makes ``SeedSequence`` assemble a *one-word*
  entropy array, but the pool-fill loop hashes ``0`` for every missing word
  — identical to hashing the (zero) high word of the unified two-word form,
  so no scalar fallback lane is needed;
* ``Generator.random()`` consumes exactly one PCG64 output per call, so the
  pool can hand the per-node draw *counts* back to the algorithm when a run
  finalises.  A post-run ``alg.rng(v)`` then spawns the classic generator
  and fast-forwards it by the recorded count, keeping post-run introspection
  byte-identical to the object-per-node path.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["NodeStreamPool", "derive_node_seeds"]

_MASK32 = 0xFFFFFFFF
# SeedSequence entropy-mixing constants (numpy _bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_XSHIFT = 16
# PCG64 (setseq_128 / XSL-RR) multiplier, split into 64-bit halves.
_PCG_MUL_HI = 0x2360ED051FC65DA4
_PCG_MUL_LO = 0x4385DF649FCCF645
#: ``next64 >> 11`` scaled to [0, 1) — numpy's ``random_standard_double``.
_DOUBLE_SCALE = 1.0 / 9007199254740992.0  # 1 / 2**53


def _hash_const_schedule(init: int, count: int) -> list:
    """The (data-independent) multiplier pairs of ``count`` hashmix calls."""
    schedule = []
    hc = init
    for _ in range(count):
        old = hc
        hc = (hc * _MULT_A if init == _INIT_A else hc * _MULT_B) & _MASK32
        schedule.append((old, hc))
    return schedule


# 4 pool-fill + 12 cross-mix hashmix calls share one hash_const chain; the
# 8 generate_state calls run a fresh chain from INIT_B.
_MIX_SCHEDULE = _hash_const_schedule(_INIT_A, 16)
_GEN_SCHEDULE = _hash_const_schedule(_INIT_B, 8)


def derive_node_seeds(master_seed: int, component: str, ids) -> np.ndarray:
    """Batch form of ``derive_seed(master_seed, "node", component, v)``.

    Hoists the constant SHA-256 prefix (master seed, ``"node"``, component
    name) into one partially-updated hash object that is copied per node —
    ~3x faster than rebuilding the full hash, and bit-identical to
    :func:`repro.utils.rng.derive_seed` by construction.
    """
    prefix = hashlib.sha256()
    prefix.update(str(int(master_seed)).encode("utf-8"))
    prefix.update(b"\x1f" + repr("node").encode("utf-8"))
    prefix.update(b"\x1f" + repr(component).encode("utf-8"))
    prefix.update(b"\x1f")
    out = np.empty(len(ids), dtype=np.uint64)
    copy = prefix.copy
    from_bytes = int.from_bytes
    for i, v in enumerate(ids.tolist() if isinstance(ids, np.ndarray) else ids):
        h = copy()
        h.update(repr(v).encode("utf-8"))
        out[i] = from_bytes(h.digest()[:8], "big") & 0x7FFFFFFFFFFFFFFF
    return out


def _hashmix(value: np.ndarray, step: int, schedule) -> np.ndarray:
    """One ``SeedSequence.hashmix`` call over a lane array (32-bit values)."""
    old, new = schedule[step]
    value = value ^ np.uint64(old)
    value = (value * np.uint64(new)) & np.uint64(_MASK32)
    value ^= value >> np.uint64(_XSHIFT)
    return value


def _mixmix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``SeedSequence.mix``: uint32 arithmetic carried in uint64 lanes."""
    # Products stay < 2**64; the subtraction wraps mod 2**64, and masking
    # to 32 bits afterwards equals arithmetic mod 2**32 exactly.
    r = (x * np.uint64(_MIX_L) - y * np.uint64(_MIX_R)) & np.uint64(_MASK32)
    r ^= r >> np.uint64(_XSHIFT)
    return r


def _mul64(a: np.ndarray, b: np.ndarray):
    """Full 64x64 -> 128 multiply via 32-bit limbs: returns ``(hi, lo)``."""
    mask = np.uint64(_MASK32)
    s32 = np.uint64(32)
    a_lo = a & mask
    a_hi = a >> s32
    b_lo = b & mask
    b_hi = b >> s32
    t = a_lo * b_lo
    t = a_hi * b_lo + (t >> s32)
    w1 = t & mask
    w2 = t >> s32
    t2 = a_lo * b_hi + w1
    hi = a_hi * b_hi + w2 + (t2 >> s32)
    return hi, a * b


def _step128(shi, slo, ihi, ilo):
    """One PCG64 state step: ``state = state * PCG_MUL + inc`` (mod 2**128)."""
    mul_hi = np.uint64(_PCG_MUL_HI)
    mul_lo = np.uint64(_PCG_MUL_LO)
    carry_hi, new_lo = _mul64(slo, mul_lo)
    new_hi = shi * mul_lo + slo * mul_hi + carry_hi
    out_lo = new_lo + ilo
    out_hi = new_hi + ihi + (out_lo < new_lo)
    return out_hi, out_lo


def _output_xsl_rr(shi, slo) -> np.ndarray:
    """The PCG64 XSL-RR output permutation over stepped state lanes."""
    rot = shi >> np.uint64(58)
    x = shi ^ slo
    return (x >> rot) | (x << ((-rot) & np.uint64(63)))


def _seed_states(seeds: np.ndarray):
    """Vectorised ``SeedSequence(seed).generate_state(4)`` + PCG64 seeding."""
    mask = np.uint64(_MASK32)
    e0 = seeds & mask
    e1 = seeds >> np.uint64(32)
    zero = np.zeros_like(seeds)
    # Pool fill: entropy words then zeros (a one-word seed's missing high
    # word is zero, which hashes identically to the padded two-word form).
    m = [
        _hashmix(e0, 0, _MIX_SCHEDULE),
        _hashmix(e1, 1, _MIX_SCHEDULE),
        _hashmix(zero, 2, _MIX_SCHEDULE),
        _hashmix(zero, 3, _MIX_SCHEDULE),
    ]
    step = 4
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                m[i_dst] = _mixmix(m[i_dst], _hashmix(m[i_src], step, _MIX_SCHEDULE))
                step += 1
    # generate_state(4, uint64): 8 uint32 words cycled from the pool, then
    # viewed as little-endian uint64 pairs.
    words = [_hashmix(m[i % 4], i, _GEN_SCHEDULE) for i in range(8)]
    s64 = [words[2 * j] | (words[2 * j + 1] << np.uint64(32)) for j in range(4)]
    state_hi, state_lo = s64[0], s64[1]
    seq_hi, seq_lo = s64[2], s64[3]
    # pcg_setseq_128_srandom: state = 0; inc = (initseq << 1) | 1; step();
    # state += initstate; step().  The first step from zero yields ``inc``.
    inc_hi = (seq_hi << np.uint64(1)) | (seq_lo >> np.uint64(63))
    inc_lo = (seq_lo << np.uint64(1)) | np.uint64(1)
    lo = inc_lo + state_lo
    hi = inc_hi + state_hi + (lo < state_lo)
    hi, lo = _step128(hi, lo, inc_hi, inc_lo)
    return hi, lo, inc_hi, inc_lo


class NodeStreamPool:
    """Per-node PCG64 streams over shared uint64 state arrays.

    ``random(ids)`` draws one double per lane — the exact values the classic
    ``alg.rng(v).random()`` loop would produce, in any batching.  Lanes are
    seeded on first use (vectorised over each batch); per-node draw counts
    are tracked so a finalising kernel can hand them to the algorithm for
    lazy generator fast-forwarding (``DistributedAlgorithm.rng``).
    """

    def __init__(self, n: int, master_seed: int, component: str) -> None:
        self._n = n
        self._master_seed = int(master_seed)
        self._component = component
        self._state_hi = np.zeros(n, dtype=np.uint64)
        self._state_lo = np.zeros(n, dtype=np.uint64)
        self._inc_hi = np.zeros(n, dtype=np.uint64)
        self._inc_lo = np.zeros(n, dtype=np.uint64)
        self._ready = np.zeros(n, dtype=bool)
        self._draws = np.zeros(n, dtype=np.int64)

    def ensure(self, ids: np.ndarray) -> None:
        """Seed the streams of ``ids`` that have not drawn yet (vectorised)."""
        fresh = ids[~self._ready[ids]]
        if fresh.size == 0:
            return
        seeds = derive_node_seeds(self._master_seed, self._component, fresh)
        hi, lo, ihi, ilo = _seed_states(seeds)
        self._state_hi[fresh] = hi
        self._state_lo[fresh] = lo
        self._inc_hi[fresh] = ihi
        self._inc_lo[fresh] = ilo
        self._ready[fresh] = True

    def random(self, ids: np.ndarray) -> np.ndarray:
        """One ``Generator.random()`` draw per lane, as a float64 array."""
        self.ensure(ids)
        shi = self._state_hi[ids]
        slo = self._state_lo[ids]
        shi, slo = _step128(shi, slo, self._inc_hi[ids], self._inc_lo[ids])
        self._state_hi[ids] = shi
        self._state_lo[ids] = slo
        self._draws[ids] += 1
        return (_output_xsl_rr(shi, slo) >> np.uint64(11)) * _DOUBLE_SCALE

    def draw_skips(self) -> Dict[int, int]:
        """``{node: #draws}`` for every lane that drew at least once."""
        drawn = np.flatnonzero(self._draws)
        return dict(zip(drawn.tolist(), self._draws[drawn].tolist()))
