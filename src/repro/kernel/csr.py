"""CSR adjacency structures for the array kernel.

Two structures live here:

* :class:`EdgeUniverse` — the array engine's view of a *static* edge
  universe (see :class:`repro.kernel.plan.KernelPlan`).  Both directions of
  every universe edge are stored once, lexicographically sorted by
  ``(src, dst)``, giving a CSR layout whose ``indptr`` never changes; the
  per-round "which edges exist" information is a boolean mask indexed by
  universe-edge id.  Row gathers therefore never rebuild ``indices``.

* :class:`CSRAdjacency` — a per-node sorted-neighbor-array adjacency
  maintained incrementally from :class:`TopologyDelta`\\ s.  This backs the
  generic kernel path (adversaries without a :class:`KernelPlan`) and the
  CSR round-trip property tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.dynamics.topology import Topology, TopologyDelta

__all__ = ["EdgeUniverse", "CSRAdjacency"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)


class EdgeUniverse:
    """Doubled, lexsorted CSR layout over a static canonical edge list.

    ``edges`` must be canonical ``(u, v)`` tuples with ``u < v``, sorted
    lexicographically — the same order every kernel-capable churn process
    uses for its presence masks, so masks align index-for-index with
    :attr:`eu`/:attr:`ev`.
    """

    __slots__ = ("n", "m", "eu", "ev", "usrc", "udst", "uedge", "indptr")

    def __init__(self, n: int, edges: Tuple[Tuple[int, int], ...]) -> None:
        self.n = int(n)
        m = len(edges)
        self.m = m
        if m:
            arr = np.asarray(edges, dtype=np.int64)
            self.eu = np.ascontiguousarray(arr[:, 0])
            self.ev = np.ascontiguousarray(arr[:, 1])
        else:
            self.eu = _EMPTY_I8
            self.ev = _EMPTY_I8
        usrc = np.concatenate([self.eu, self.ev])
        udst = np.concatenate([self.ev, self.eu])
        uedge = np.concatenate([np.arange(m, dtype=np.int64)] * 2) if m else _EMPTY_I8
        order = np.lexsort((udst, usrc))
        self.usrc = usrc[order]
        self.udst = udst[order]
        self.uedge = uedge[order]
        counts = np.bincount(self.usrc, minlength=self.n) if m else np.zeros(self.n, dtype=np.int64)
        self.indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))

    def row_slots(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Universe slots of the CSR rows for ``ids``.

        Returns ``(slots, seg)``: ``slots[j]`` indexes :attr:`usrc`/
        :attr:`udst`/:attr:`uedge` and ``seg[j]`` is the position within
        ``ids`` whose row slot ``j`` belongs to.  Within each row, slots are
        in ascending-neighbor order (the lexsort guarantees it).
        """

        if ids.size == 0 or self.m == 0:
            return _EMPTY_I8, _EMPTY_I8
        starts = self.indptr[ids]
        counts = self.indptr[ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8, _EMPTY_I8
        offsets = np.cumsum(counts) - counts
        slots = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
        seg = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
        return slots, seg


def _as_sorted_array(values: Iterable[int]) -> np.ndarray:
    arr = np.fromiter(values, dtype=np.int64)
    arr.sort()
    return arr


class CSRAdjacency:
    """Dict-of-sorted-arrays adjacency maintained from ``TopologyDelta``\\ s.

    Rows exist exactly for the nodes of the current topology; each row is a
    sorted ``int64`` array of neighbor ids.  ``apply_delta`` mirrors the
    exactness contract of :meth:`Topology.apply` (it assumes the delta was
    validated there — the simulator applies every delta to the real
    topology first, so invalid deltas never reach this structure).
    """

    __slots__ = ("n", "_rows")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._rows: Dict[int, np.ndarray] = {}

    @classmethod
    def from_topology(cls, n: int, topology: Topology) -> "CSRAdjacency":
        adj = cls(n)
        for v in topology.nodes:
            adj._rows[v] = _as_sorted_array(topology.neighbors(v))
        return adj

    @property
    def nodes(self) -> Iterable[int]:
        return self._rows.keys()

    def neighbors(self, v: int) -> np.ndarray:
        return self._rows.get(v, _EMPTY_I8)

    def apply_delta(self, delta: TopologyDelta) -> None:
        for v in delta.removed_nodes:
            self._rows.pop(v, None)
        for v in delta.added_nodes:
            self._rows.setdefault(v, _EMPTY_I8)
        if not (delta.added_edges or delta.removed_edges):
            return
        adds: Dict[int, list] = {}
        removes: Dict[int, list] = {}
        for u, v in delta.removed_edges:
            removes.setdefault(u, []).append(v)
            removes.setdefault(v, []).append(u)
        for u, v in delta.added_edges:
            adds.setdefault(u, []).append(v)
            adds.setdefault(v, []).append(u)
        for v in removes.keys() | adds.keys():
            row = self._rows.get(v, _EMPTY_I8)
            rem = removes.get(v)
            if rem:
                row = np.setdiff1d(row, np.asarray(rem, dtype=np.int64), assume_unique=True)
            add = adds.get(v)
            if add:
                row = np.union1d(row, np.asarray(add, dtype=np.int64))
            self._rows[v] = row

    def gather(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor rows for ``ids`` as ``(seg, nbrs)``.

        ``seg`` maps each entry of ``nbrs`` back to its position in ``ids``;
        within a row, neighbors are ascending.
        """

        if ids.size == 0:
            return _EMPTY_I8, _EMPTY_I8
        rows = [self._rows.get(v, _EMPTY_I8) for v in ids.tolist()]
        counts = np.fromiter((row.size for row in rows), dtype=np.int64, count=len(rows))
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8, _EMPTY_I8
        seg = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
        nbrs = np.concatenate([row for row in rows if row.size])
        return seg, nbrs

    def to_indptr_indices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(row_ids, indptr, indices)`` snapshot for the property tests."""

        row_ids = _as_sorted_array(self._rows.keys()) if self._rows else _EMPTY_I8
        counts = np.fromiter(
            (self._rows[v].size for v in row_ids.tolist()), dtype=np.int64, count=row_ids.size
        )
        indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        if int(indptr[-1]):
            indices = np.concatenate([self._rows[v] for v in row_ids.tolist() if self._rows[v].size])
        else:
            indices = _EMPTY_I8
        return row_ids, indptr, indices
