"""Adversary-side execution plans for the array kernel.

A :class:`KernelPlan` is the contract an adversary offers the array engine:
a *static edge universe* (every edge that can ever exist), a per-round
``advance`` callable returning a boolean presence mask over that universe,
and the wake-up schedule governing which nodes participate.  The engine
diffs successive presence masks to recover the exact ``TopologyDelta`` the
classic :meth:`Adversary.step` path would have emitted, without ever
materialising python ``frozenset`` topologies.

Adversaries that cannot express their behaviour this way simply return
``None`` from :meth:`Adversary.kernel_plan` and the simulator falls back to
the generic (dict-adjacency) kernel path or the classic loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Tuple

import numpy as np

__all__ = ["KernelPlan"]


@dataclass(frozen=True)
class KernelPlan:
    """Everything the array engine needs to bypass :meth:`Adversary.step`.

    Attributes
    ----------
    nodes:
        The full node universe the adversary will ever expose.  Must be a
        set of python ints in ``[0, n)``.
    universe_edges:
        Canonical ``(u, v)`` with ``u < v``, lexicographically sorted.  The
        presence masks returned by :attr:`advance` are index-aligned with
        this tuple.
    advance:
        ``advance(round_index) -> np.ndarray[bool]`` of shape
        ``(len(universe_edges),)``.  Called exactly once per round, in round
        order, and must consume adversary randomness *identically* to the
        classic step path (the byte-identity gates depend on it).  The
        returned array must not be mutated by the engine; the adversary may
        return the same object on quiescent rounds.
    wakeup:
        The wake-up schedule (``awake_at(round)``), or ``None`` when every
        node in :attr:`nodes` is awake from round 1.
    cumulative_awake:
        ``True`` when the adversary accumulates wake-ups
        (``awake |= awake_at(r)``, the churn-adversary behaviour); ``False``
        when it exposes exactly ``awake_at(r)`` each round (the static
        adversary behaviour).  Non-cumulative plans require a
        non-decreasing schedule; the engine raises otherwise.
    """

    nodes: FrozenSet[int]
    universe_edges: Tuple[Tuple[int, int], ...]
    advance: Callable[[int], np.ndarray]
    wakeup: Optional[object] = None
    cumulative_awake: bool = True

    def validate(self, n: int) -> bool:
        """Whether the plan's id space fits the array engine (ints in [0, n))."""
        try:
            for v in self.nodes:
                if type(v) is not int or not 0 <= v < n:
                    return False
            for u, v in self.universe_edges:
                if type(u) is not int or type(v) is not int:
                    return False
                if not (0 <= u < v < n):
                    return False
                if u not in self.nodes or v not in self.nodes:
                    return False
        except TypeError:
            return False
        return True
