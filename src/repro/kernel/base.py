"""Shared machinery for per-algorithm array kernels.

An :class:`AlgorithmKernel` mirrors one ``DistributedAlgorithm`` instance
with dense numpy state arrays.  The engine owns the round structure
(wake-ups, deltas, dirty sets, metrics); the kernel owns the algorithm
semantics (compose / deliver / fingerprints / outputs) and must be
*byte-identical* to the classic per-node path: identical RNG consumption,
identical float arithmetic, identical counters.

Message caching uses a ``(tag, value)`` encoding that is injective over the
algorithm's message alphabet, so "did the composed message change?" reduces
to integer/float compares.  Fingerprints reuse the same idea: a node is
either volatile (``fset`` cleared) or carries an integer fingerprint token
whose change schedules a recompose — exactly the classic
``compose_fingerprint`` protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["AlgorithmKernel", "DeliverContext"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)


class DeliverContext:
    """Array-mode extras handed to :meth:`AlgorithmKernel.deliver`.

    ``None`` is passed on the generic (dict-adjacency) path; kernels that
    keep per-edge state (DMis) use the universe layout carried here and
    fall back to python structures otherwise.
    """

    __slots__ = ("universe", "eff_d", "slots")

    def __init__(self, universe, eff_d: np.ndarray, slots: np.ndarray) -> None:
        self.universe = universe
        #: effective-existence mask over *doubled* universe slots this round
        self.eff_d = eff_d
        #: the kept (effective) slots backing the ``seg``/``nbrs`` arguments
        self.slots = slots


class AlgorithmKernel:
    """Base class: dense state arrays + the fingerprint/output post-pass."""

    def __init__(self, algorithm) -> None:
        self._algorithm = algorithm
        n = algorithm.n
        self.n = n
        #: nodes that have ever woken (guards re-wake, mirrors ``_awake``)
        self.woken = np.zeros(n, dtype=bool)
        #: classic ``_volatile`` — recompose every round
        self.volatile = np.zeros(n, dtype=bool)
        #: classic ``_recompose`` — recompose next round only (consumed)
        self.recompose_next = np.zeros(n, dtype=bool)
        #: bit size of each node's cached message (0 = no cached message)
        self.bits = np.zeros(n, dtype=np.int64)
        self._has_msg = np.zeros(n, dtype=bool)
        # fingerprint state: fset[v] <-> v in classic ``_fingerprints``
        self._fset = np.zeros(n, dtype=bool)
        self._fval = np.zeros(n, dtype=np.int64)
        # output cache: has_out[v] <-> v in classic ``_running`` outputs
        self._has_out = np.zeros(n, dtype=bool)
        self._out_code = np.zeros(n, dtype=np.int64)

    # -- hooks implemented per algorithm -------------------------------------

    def wake(self, ids: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def compose(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover
        """Compose messages for ``ids`` (ascending); returns changed ids + old bits."""
        raise NotImplementedError

    def deliver(
        self,
        ids: np.ndarray,
        seg: np.ndarray,
        nbrs: np.ndarray,
        ctx: Optional[DeliverContext],
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def counters(self) -> Dict[str, float]:  # pragma: no cover - abstract
        """Fresh ``algorithm_counters`` dict, classic key order."""
        raise NotImplementedError

    def post_round(self, ids: np.ndarray) -> Tuple[np.ndarray, List[object]]:  # pragma: no cover
        """Fingerprint + output pass over the delivered ids."""
        raise NotImplementedError

    def finalize(self) -> None:  # pragma: no cover - abstract
        """Write kernel state back into the algorithm instance."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def drop(self, ids: np.ndarray) -> np.ndarray:
        """Forget removed nodes' caches (generic mode); returns their old bit sizes.

        Mirrors the classic ``_drop_node``: only the engine-side caches are
        cleared — the algorithm state (and ``woken``) survives, because a
        re-added node resumes from its old state (``wake`` is guarded).
        """

        old_bits = self.bits[ids].copy()
        self.volatile[ids] = False
        self.recompose_next[ids] = False
        self.bits[ids] = 0
        self._has_msg[ids] = False
        self._fset[ids] = False
        self._has_out[ids] = False
        return old_bits

    def _post_fingerprints(self, ids: np.ndarray, vol_rows: np.ndarray, fval_rows: np.ndarray) -> None:
        """Classic post-deliver fingerprint pass, vectorised.

        ``vol_rows`` marks rows whose fingerprint is VOLATILE; ``fval_rows``
        carries the integer fingerprint token for the remaining rows.
        """

        vol_ids = ids[vol_rows]
        if vol_ids.size:
            self.volatile[vol_ids] = True
            self._fset[vol_ids] = False
        stable = ~vol_rows
        st_ids = ids[stable]
        if st_ids.size:
            st_val = fval_rows[stable]
            self.volatile[st_ids] = False
            changed = ~self._fset[st_ids] | (self._fval[st_ids] != st_val)
            self.recompose_next[st_ids[changed]] = True
            self._fset[st_ids] = True
            self._fval[st_ids] = st_val

    def _post_outputs(self, ids: np.ndarray, code_rows: np.ndarray) -> Tuple[np.ndarray, List[object]]:
        """Diff output codes against the running cache; ``-1`` encodes ``None``."""

        prev = self._out_code[ids]
        diff = ~self._has_out[ids] | (prev != code_rows)
        changed_ids = ids[diff]
        if changed_ids.size == 0:
            return _EMPTY_I8, []
        new_codes = code_rows[diff]
        self._out_code[changed_ids] = new_codes
        self._has_out[changed_ids] = True
        values = [None if c < 0 else int(c) for c in new_codes.tolist()]
        return changed_ids, values
