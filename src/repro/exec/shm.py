"""Shared-memory topology pools: map the graph once per machine, not per worker.

PR 5's :mod:`repro.exec.cache` stopped each *process* from regenerating the
same base topology; at 10^5-10^6 nodes the remaining cost is that every
pooled worker still builds (and holds) its own copy of the graph — hundreds
of megabytes of identical ``int64`` arrays per process.  This module is the
next rung of the ROADMAP's "shared-memory topology path": the runner
*publishes* the base topologies (and the array kernel's derived
:class:`~repro.kernel.csr.EdgeUniverse` CSR arrays) that several work units
share into ``multiprocessing.shared_memory`` segments, and pooled workers
*attach* them — one physical copy of the adjacency arrays per machine,
mapped zero-copy into every worker.

Lifecycle and correctness rules:

* **The runner owns the segments.**  :func:`publish_for_chunks` (called by
  :func:`repro.exec.runner.run_units` before pooled dispatch) creates them
  and :meth:`SharedTopologyPool.close` unlinks them when the batch ends —
  workers never unlink, they only map.  Worker processes therefore call
  :func:`multiprocessing.resource_tracker.unregister` right after
  attaching: without it Python's resource tracker would tear the segment
  down when the *first* pool worker exits (the 3.11 ``SharedMemory`` API
  has no ``track=False``).
* **Publication is keyed, not guessed.**  Segments are registered under the
  same ``(family, params, n, derived topology-stream seed)`` key the
  per-process cache uses, serialised through the ``REPRO_SHM_TOPOLOGIES``
  environment variable which pooled workers inherit.  A worker that misses
  both its local cache and the registry simply regenerates — shm is a pure
  accelerator, never a correctness dependency.
* **Byte-identity.**  The published arrays come from a topology built by the
  real generator on the real derived stream, so an attached topology is
  content-identical to a regenerated one; the kernel-vs-full equivalence
  gates and the store drift gate run unchanged over shm-backed runs.
* **Attached arrays are read-only.**  Views handed to the engine have their
  ``writeable`` flag cleared; segments stay mapped for the lifetime of the
  attaching process (traces may hold :class:`ArrayDelta` references into
  them).

Segment names follow ``repro-shm-<pid>-<key>`` so ``repro audit`` can spot
segments whose owning runner died (see :func:`stale_segments`) and
``repro repair`` can unlink them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.topology import Topology
from repro.kernel.csr import EdgeUniverse
from repro.utils.rng import derive_seed

__all__ = [
    "REGISTRY_ENV",
    "SharedTopologyPool",
    "attach_topology",
    "publish_for_chunks",
    "shared_edge_universe",
    "shm_info",
    "stale_segments",
    "topology_key",
]

#: Environment variable carrying the ``{key: segment-name}`` registry to
#: pooled workers (they inherit the runner's environment on fork/spawn).
REGISTRY_ENV = "REPRO_SHM_TOPOLOGIES"

#: Publish a topology only when at least this many units of the batch share
#: it (publishing costs one serial build in the runner — it has to amortise).
_MIN_SHARERS = 2

#: Hard caps on what one runner may publish: segments and total bytes.
_MAX_SEGMENTS = 32
_MAX_TOTAL_BYTES = 4 << 30

#: ``int64`` header words at the start of every segment:
#: ``[n, num_nodes, m, um]`` (``um == usrc.size == 2 * m``).
_HEADER_WORDS = 4

# -- process-local state ----------------------------------------------------

#: Segments this process created (runner side): key -> SharedMemory.
_OWNED: Dict[str, Any] = {}

#: Segments this process mapped (worker side): key -> SharedMemory.  Never
#: closed before process exit — attached Topology/EdgeUniverse arrays alias
#: the mapping.
_ATTACHED: Dict[str, Any] = {}

#: Small FIFO of built/attached edge universes keyed by ``(n, edges tuple)``.
#: Tuple keys compare by content at C speed, so a churn process that re-sorts
#: the same edge set into a fresh tuple still hits.  Kept tiny — each entry
#: can be hundreds of MB when not shm-backed.
_UNIVERSE_CACHE: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], EdgeUniverse] = {}
_UNIVERSE_CACHE_MAX = 8

_ATTACH_HITS = 0
_ATTACH_MISSES = 0


# ---------------------------------------------------------------------------
# keys and registry
# ---------------------------------------------------------------------------


def topology_key(name: str, params: Mapping[str, Any], n: int, master_seed: int) -> str:
    """The registry key of one base topology build.

    Mirrors the per-process cache key of
    :func:`repro.exec.cache.cached_base_topology`: the derived
    ``("topology", name, n)`` stream seed plus the canonicalised params, so
    runner and worker agree on the key from the spec alone.
    """
    stream_seed = derive_seed(master_seed, "topology", name, n)
    raw = (name, n, stream_seed, tuple(sorted((k, repr(v)) for k, v in params.items())))
    return hashlib.sha256(repr(raw).encode("utf-8")).hexdigest()[:16]


def _registry() -> Dict[str, str]:
    raw = os.environ.get(REGISTRY_ENV)
    if not raw:
        return {}
    try:
        data = json.loads(raw)
    except ValueError:
        return {}
    return {str(k): str(v) for k, v in data.items()} if isinstance(data, dict) else {}


def _write_registry(mapping: Dict[str, str]) -> None:
    if mapping:
        os.environ[REGISTRY_ENV] = json.dumps(mapping, sort_keys=True)
    else:
        os.environ.pop(REGISTRY_ENV, None)


# ---------------------------------------------------------------------------
# segment layout
# ---------------------------------------------------------------------------


def _pack(topology: Topology, n: int):
    """``(total_bytes, writer)`` for one topology + its derived universe."""
    nodes = np.fromiter(sorted(topology.nodes), dtype=np.int64, count=topology.num_nodes)
    edges = tuple(sorted(topology.edges))
    universe = EdgeUniverse(n, edges)
    m = universe.m
    um = universe.usrc.size
    arrays = [
        np.array([n, nodes.size, m, um], dtype=np.int64),
        nodes,
        universe.eu,
        universe.ev,
        universe.usrc,
        universe.udst,
        universe.uedge,
        universe.indptr,
    ]
    total = sum(a.nbytes for a in arrays)

    def write(buf: memoryview) -> None:
        offset = 0
        for a in arrays:
            out = np.ndarray(a.shape, dtype=np.int64, buffer=buf, offset=offset)
            out[:] = a
            offset += a.nbytes

    return total, write


def _unpack(buf: memoryview):
    """``(n, nodes, eu, ev, usrc, udst, uedge, indptr)`` read-only views."""
    header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=buf)
    n, num_nodes, m, um = (int(x) for x in header)
    offset = _HEADER_WORDS * 8
    views = []
    for size in (num_nodes, m, m, um, um, um, n + 1):
        view = np.ndarray((size,), dtype=np.int64, buffer=buf, offset=offset)
        view.flags.writeable = False
        views.append(view)
        offset += size * 8
    return (n, *views)


# ---------------------------------------------------------------------------
# runner side: publish
# ---------------------------------------------------------------------------


def _publish(key: str, topology: Topology, n: int, budget: int) -> int:
    """Create one segment for ``key``; returns its size (0 when skipped)."""
    from multiprocessing import shared_memory

    if key in _OWNED:
        return 0
    total, write = _pack(topology, n)
    if total > budget:
        return 0
    name = f"repro-shm-{os.getpid()}-{key}"
    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
    except (OSError, FileExistsError):
        return 0
    write(segment.buf)
    _OWNED[key] = segment
    registry = _registry()
    registry[key] = name
    _write_registry(registry)
    return total


class SharedTopologyPool:
    """Runner-owned handle over the segments published for one batch."""

    def __init__(self) -> None:
        self._keys: List[str] = []
        self.published_bytes = 0

    @property
    def segments(self) -> int:
        return len(self._keys)

    def publish(self, key: str, topology: Topology, n: int) -> bool:
        if len(self._keys) >= _MAX_SEGMENTS:
            return False
        size = _publish(key, topology, n, _MAX_TOTAL_BYTES - self.published_bytes)
        if size:
            self._keys.append(key)
            self.published_bytes += size
        return bool(size)

    def close(self) -> None:
        """Unlink every segment this pool published and drop registry entries."""
        registry = _registry()
        for key in self._keys:
            segment = _OWNED.pop(key, None)
            registry.pop(key, None)
            if segment is not None:
                try:
                    segment.close()
                except (OSError, BufferError):
                    pass  # live views keep the mapping; the unlink still frees the name
                try:
                    segment.unlink()
                except OSError:
                    pass
        self._keys = []
        _write_registry(registry)

    def __enter__(self) -> "SharedTopologyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_for_chunks(chunks: Sequence[Any]) -> Optional[SharedTopologyPool]:
    """Publish every base topology shared by >= 2 units of ``chunks``.

    Builds the shared topologies through the per-process cache (so the
    runner's own serial fallback reuses them too) and returns the owning
    pool, or ``None`` when nothing in the batch is shared.  Publication
    failures are silent by design — workers regenerate on a miss.
    """
    counts: Dict[str, int] = {}
    builders: Dict[str, Tuple[str, Mapping[str, Any], int, int]] = {}
    for chunk in chunks:
        spec_dict = chunk.spec_dict
        topology = spec_dict.get("topology")
        if not isinstance(topology, Mapping) or "name" not in topology:
            continue
        name = topology["name"]
        params = topology.get("params", {}) or {}
        n = int(spec_dict["n"])
        for seed in chunk.seeds:
            key = topology_key(name, params, n, int(seed))
            counts[key] = counts.get(key, 0) + 1
            builders.setdefault(key, (name, params, n, int(seed)))
    shared = [k for k, c in sorted(counts.items(), key=lambda kv: -kv[1]) if c >= _MIN_SHARERS]
    if not shared:
        return None
    from repro.exec.cache import cached_base_topology

    pool = SharedTopologyPool()
    for key in shared:
        name, params, n, seed = builders[key]
        try:
            topology = cached_base_topology(name, params, n, seed)
        except Exception:
            continue  # a broken spec fails identically in the workers
        if not pool.publish(key, topology, n):
            break
    if pool.segments == 0:
        pool.close()
        return None
    return pool


# ---------------------------------------------------------------------------
# worker side: attach
# ---------------------------------------------------------------------------


def _topology_from_arrays(nodes: np.ndarray, eu: np.ndarray, ev: np.ndarray) -> Topology:
    """Trusted reconstruction from published canonical arrays.

    The publisher packed a topology the real constructor already validated
    (canonical edges, endpoints awake), so this skips re-validation and
    rebuilds the frozenset/adjacency representation directly.
    """
    node_list = nodes.tolist()
    eu_list = eu.tolist()
    ev_list = ev.tolist()
    adjacency: Dict[int, list] = {v: [] for v in node_list}
    for u, v in zip(eu_list, ev_list):
        adjacency[u].append(v)
        adjacency[v].append(u)
    topology = Topology.__new__(Topology)
    topology._nodes = frozenset(node_list)
    topology._edges = frozenset(zip(eu_list, ev_list))
    topology._adjacency = {v: frozenset(neigh) for v, neigh in adjacency.items()}
    topology._hash = None
    return topology


def _universe_from_views(n, m, eu, ev, usrc, udst, uedge, indptr) -> EdgeUniverse:
    universe = EdgeUniverse.__new__(EdgeUniverse)
    universe.n = n
    universe.m = m
    universe.eu = eu
    universe.ev = ev
    universe.usrc = usrc
    universe.udst = udst
    universe.uedge = uedge
    universe.indptr = indptr
    return universe


def _cache_universe(n: int, edges: Tuple[Tuple[int, int], ...], universe: EdgeUniverse) -> None:
    while len(_UNIVERSE_CACHE) >= _UNIVERSE_CACHE_MAX:
        _UNIVERSE_CACHE.pop(next(iter(_UNIVERSE_CACHE)))
    _UNIVERSE_CACHE[(n, edges)] = universe


def attach_topology(key: str) -> Optional[Topology]:
    """Map the registered segment for ``key``; ``None`` when unavailable.

    Also primes the process-local edge-universe cache with the segment's
    zero-copy CSR arrays, so the array kernel over the same base graph maps
    the adjacency instead of rebuilding it.
    """
    global _ATTACH_HITS, _ATTACH_MISSES
    name = _registry().get(key)
    if name is None:
        return None
    if key in _ATTACHED:
        segment = _ATTACHED[key]
    else:
        from multiprocessing import resource_tracker, shared_memory

        try:
            segment = shared_memory.SharedMemory(name=name)
        except (OSError, FileNotFoundError):
            _ATTACH_MISSES += 1
            return None
        if key not in _OWNED:
            # Undo the attach-side registration: the runner owns the unlink;
            # letting this process's resource tracker "clean up" would rip
            # the segment out from under every sibling worker (3.11 has no
            # track=False).
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED[key] = segment
    n, nodes, eu, ev, usrc, udst, uedge, indptr = _unpack(segment.buf)
    topology = _topology_from_arrays(nodes, eu, ev)
    edges = tuple(zip(eu.tolist(), ev.tolist()))
    _cache_universe(n, edges, _universe_from_views(n, len(edges), eu, ev, usrc, udst, uedge, indptr))
    _ATTACH_HITS += 1
    return topology


def shared_edge_universe(n: int, edges: Tuple[Tuple[int, int], ...]) -> EdgeUniverse:
    """The :class:`EdgeUniverse` over ``edges`` — shm-mapped or cached when possible.

    The cache key is the edge tuple's *content* (tuple hashing/equality is
    C-speed), so any plan whose universe matches a published or previously
    built one — grid points sharing a base graph, verification re-runs —
    reuses the CSR arrays instead of re-sorting them.
    """
    edges = tuple(edges)
    key = (int(n), edges)
    universe = _UNIVERSE_CACHE.get(key)
    if universe is None:
        universe = EdgeUniverse(n, edges)
        _cache_universe(key[0], edges, universe)
    return universe


# ---------------------------------------------------------------------------
# observability: audit / repair / tests
# ---------------------------------------------------------------------------


def shm_info() -> Dict[str, Any]:
    """Counters and segment lists of this process's shm state."""
    return {
        "owned": sorted(_OWNED),
        "attached": sorted(_ATTACHED),
        "registry": sorted(_registry()),
        "attach_hits": _ATTACH_HITS,
        "attach_misses": _ATTACH_MISSES,
        "universe_cache_entries": len(_UNIVERSE_CACHE),
    }


def _segment_dir() -> str:
    return "/dev/shm"


def stale_segments() -> List[str]:
    """``repro-shm-*`` segments on this machine whose owning process is gone.

    A live runner's segments are healthy; anything left by a dead pid is a
    leak (a killed runner never reached :meth:`SharedTopologyPool.close`)
    that ``repro repair`` may unlink.
    """
    directory = _segment_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    stale = []
    for name in names:
        if not name.startswith("repro-shm-"):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            stale.append(name)
            continue
        if not os.path.exists(f"/proc/{pid}"):
            stale.append(name)
    return sorted(stale)


def unlink_stale_segments() -> List[str]:
    """Unlink every stale segment; returns the names removed."""
    removed = []
    for name in stale_segments():
        try:
            os.unlink(os.path.join(_segment_dir(), name))
            removed.append(name)
        except OSError:
            pass
    return removed


def shm_state_clear() -> None:
    """Drop owned/attached segments and caches (test isolation).

    Owned segments are unlinked; attached segments are only closed.
    """
    registry = _registry()
    for key, segment in list(_OWNED.items()):
        registry.pop(key, None)
        try:
            segment.close()
        except (OSError, BufferError):
            pass
        try:
            segment.unlink()
        except OSError:
            pass
    _OWNED.clear()
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except (OSError, BufferError):
            pass
    _ATTACHED.clear()
    _UNIVERSE_CACHE.clear()
    _write_registry(registry)
    global _ATTACH_HITS, _ATTACH_MISSES
    _ATTACH_HITS = 0
    _ATTACH_MISSES = 0
