"""The fault-tolerant dispatcher: chunks out, rows back, failures absorbed.

:class:`RemoteBackend` (registered as ``remote``) is a normal execution
backend — ``submit_batch(chunks)`` yields ``(chunk_index, rows)`` in
completion order — whose workers live on the far side of a
:class:`~repro.exec.remote.transport.Transport`.  On top of the plain wire
contract it adds what a real fleet needs:

* **Fault tolerance.**  Every dispatched piece of work carries a deadline.
  A worker that dies (EOF on its pipe, process exit) or blows its deadline
  (a wedged node) is killed and dropped from the fleet, and its in-flight
  work is re-dispatched to the survivors with capped retries and
  exponential backoff — free and byte-identical, because units are pure
  functions of ``(spec, seed)``.  Only when the whole fleet is gone (or a
  piece exhausts its retries) does the backend raise
  :class:`~repro.exec.backends.BackendError`, which the runner answers with
  the serial fallback — completed, journalled work is never recomputed.
* **Heterogeneous fleets.**  Each worker has an in-flight ``slots`` limit
  (``host=slots`` in the hosts list); dispatch fills idle capacity in
  worker order and never convoys fast members behind slow ones.
* **Adaptive chunk re-sizing.**  Worker responses carry their wall time;
  an EMA of observed per-unit cost re-sizes outgoing work so every dispatch
  lands near ``target_seconds`` — many tiny units coalesce upstream (the
  runner's chunking), while a chunk that would monopolise a worker for
  minutes is split across the fleet.  Splitting is internal: rows are
  re-assembled per original chunk before they are yielded, so the runner's
  journal and ordering logic see exactly the chunks it built.
* **Worker-side phase timings.**  Responses include the
  :mod:`repro.exec.stats` phase splits measured *inside* the worker, which
  the dispatcher replays into the ambient collector — ``repro bench
  --backend remote`` reports real setup/rounds/metrics numbers instead of
  one opaque dispatch total.
"""

from __future__ import annotations

import itertools
import json
import queue
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.backends import BACKENDS, Backend, BackendError
from repro.exec.remote.transport import TRANSPORTS, WorkerLink
from repro.exec.stats import RateEstimator, record_phase
from repro.exec.units import Chunk, Row
from repro.obs.metrics import metric_inc
from repro.obs.trace import emit as trace_emit

__all__ = ["RemoteBackend"]

#: Seconds between inbox polls (liveness/deadline checks happen on this tick).
_TICK_SECONDS = 0.1


@dataclass
class _Task:
    """One dispatchable piece of work: a slice of an original chunk."""

    task_id: int
    chunk: Chunk  # the runner's chunk this slice belongs to
    offset: int  # seed offset inside the chunk
    seeds: Tuple[int, ...]
    attempts: int = 0
    not_before: float = 0.0  # monotonic time before which dispatch waits (backoff)

    def wire(self) -> str:
        """The slice as an ordinary wire-form chunk, keyed by ``task_id``."""
        return Chunk(
            index=self.task_id,
            start=self.chunk.start + self.offset,
            spec_key=self.chunk.spec_key,
            spec_dict=self.chunk.spec_dict,
            seeds=self.seeds,
        ).to_wire()


@dataclass
class _Assembly:
    """Row re-assembly state of one original chunk."""

    chunk: Chunk
    rows: List[Optional[Row]] = field(default_factory=list)
    remaining: int = 0

    def __post_init__(self) -> None:
        self.rows = [None] * len(self.chunk.seeds)
        self.remaining = len(self.chunk.seeds)

    def absorb(self, offset: int, rows: Sequence[Row]) -> bool:
        """Place ``rows`` at ``offset``; True when the chunk is complete."""
        for i, row in enumerate(rows):
            if self.rows[offset + i] is None:
                self.remaining -= 1
            self.rows[offset + i] = row
        return self.remaining == 0


@dataclass
class _WorkerState:
    link: WorkerLink
    ready: bool = False
    inflight: Dict[int, float] = field(default_factory=dict)  # task_id -> deadline
    last_seen: float = field(default_factory=time.monotonic)
    next_ping: int = 0
    pong_deadline: Optional[float] = None  # outstanding ping; any line clears it


@BACKENDS.register(
    "remote",
    doc="Transport-fed worker fleet with re-dispatch, heartbeats and adaptive chunking.",
)
class RemoteBackend(Backend):
    """Dispatch chunks to a worker fleet across a pluggable transport."""

    name = "remote"

    #: Flags :func:`repro.exec.backends.make_backend` to pass policy options.
    accepts_options = True

    def __init__(
        self,
        max_workers: int,
        *,
        transport: str = "loopback",
        hosts: Optional[Sequence[str]] = None,
        ready_timeout: float = 120.0,
        task_timeout: Optional[float] = None,
        heartbeat_interval: float = 5.0,
        max_retries: int = 3,
        backoff_base: float = 0.5,
        target_seconds: float = 2.0,
        adaptive: bool = True,
        cost_estimator: Optional[RateEstimator] = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        self._max_workers = max(1, int(max_workers))
        self._transport = TRANSPORTS.get(transport)()
        self._hosts = list(hosts) if hosts else None
        self._ready_timeout = ready_timeout
        self._task_timeout = task_timeout
        self._heartbeat_interval = heartbeat_interval
        self._max_retries = int(max_retries)
        self._backoff_base = backoff_base
        self._target_seconds = target_seconds
        self._adaptive = adaptive
        self._cost = cost_estimator if cost_estimator is not None else RateEstimator()
        self._inbox: "queue.Queue" = queue.Queue()
        self._workers: Dict[int, _WorkerState] = {}
        #: Operational counters (surfaced to tests and `--progress` debugging).
        self.stats: Dict[str, int] = {
            "workers_lost": 0,
            "redispatched": 0,
            "tasks_dispatched": 0,
            "splits": 0,
        }

    # -- fleet lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._workers:
            return
        links = self._transport.launch(self._max_workers, self._hosts, self._inbox)
        self._workers = {link.worker_id: _WorkerState(link) for link in links}

    def close(self) -> None:
        for state in self._workers.values():
            try:
                state.link.send(json.dumps({"stop": True}))
            except OSError:
                pass
        for state in self._workers.values():
            state.link.kill()
        self._workers = {}
        self._transport.close()

    # -- fleet bookkeeping --------------------------------------------------

    def _live_workers(self) -> List[_WorkerState]:
        return [w for w in self._workers.values() if w.link.alive()]

    def _lose_worker(
        self,
        state: _WorkerState,
        tasks: Dict[int, _Task],
        backlog: List[_Task],
        reason: str = "died",
    ):
        """Kill ``state``'s worker and requeue whatever it was running."""
        state.link.kill()
        self._workers.pop(state.link.worker_id, None)
        self.stats["workers_lost"] += 1
        metric_inc("exec.remote.workers_lost")
        trace_emit(
            "worker_lost",
            worker=state.link.name,
            reason=reason,
            inflight=len(state.inflight),
        )
        for task_id in list(state.inflight):
            state.inflight.pop(task_id, None)
            task = tasks.pop(task_id, None)
            if task is None:
                continue
            task.attempts += 1
            if task.attempts > self._max_retries:
                raise BackendError(
                    f"chunk {task.chunk.index} (offset {task.offset}, "
                    f"{len(task.seeds)} units) failed on {task.attempts} workers; "
                    f"giving up after {self._max_retries} retries"
                )
            backoff = self._backoff_base * 2 ** (task.attempts - 1)
            task.not_before = time.monotonic() + backoff
            self.stats["redispatched"] += 1
            metric_inc("exec.remote.redispatched")
            trace_emit(
                "redispatch",
                task=task.task_id,
                chunk=task.chunk.index,
                attempt=task.attempts,
                backoff=round(backoff, 6),
            )
            backlog.append(task)

    def _check_deadlines(self, tasks: Dict[int, _Task], backlog: List[_Task]) -> None:
        now = time.monotonic()
        for state in list(self._workers.values()):
            if not state.link.alive():
                self._lose_worker(state, tasks, backlog, reason="died")
            elif state.inflight and any(deadline < now for deadline in state.inflight.values()):
                self._lose_worker(state, tasks, backlog, reason="deadline")  # a wedged node

    def _heartbeat(self, tasks: Dict[int, _Task], backlog: List[_Task]) -> None:
        """Ping idle ready workers so a silently dead ssh link surfaces.

        A ping leaves a ``pong_deadline`` on the worker; any inbound line
        clears it.  A worker whose deadline lapses with no traffic at all is
        wedged and reaped immediately, instead of being pinged forever.
        """
        now = time.monotonic()
        for state in list(self._workers.values()):
            if not state.ready or state.inflight:
                continue
            if state.pong_deadline is not None:
                if now >= state.pong_deadline:
                    self._lose_worker(state, tasks, backlog, reason="missed-pong")
                continue
            if now - state.last_seen >= self._heartbeat_interval:
                state.next_ping += 1
                try:
                    state.link.send(json.dumps({"ping": state.next_ping}))
                except OSError:
                    continue  # the deadline/EOF path reaps it
                trace_emit("ping", worker=state.link.name)
                state.pong_deadline = now + max(self._heartbeat_interval, 10.0)

    # -- adaptive sizing ----------------------------------------------------

    def _deadline_for(self, units: int) -> float:
        """When a dispatched task is declared wedged."""
        if self._task_timeout is not None:
            return time.monotonic() + self._task_timeout
        cost = self._cost.seconds_per_unit
        estimate = (cost or 1.0) * units
        return time.monotonic() + max(60.0, 10.0 * estimate)

    def _sized(self, task: _Task, task_ids: Iterator[int]) -> List[_Task]:
        """Split ``task`` so each piece lands near ``target_seconds``."""
        cost = self._cost.seconds_per_unit
        if not self._adaptive or cost is None or cost <= 0 or len(task.seeds) <= 1:
            return [task]
        per_piece = max(1, int(self._target_seconds / cost))
        if len(task.seeds) <= per_piece * 1.5:
            return [task]
        pieces = []
        for start in range(0, len(task.seeds), per_piece):
            pieces.append(
                _Task(
                    task_id=next(task_ids),
                    chunk=task.chunk,
                    offset=task.offset + start,
                    seeds=task.seeds[start : start + per_piece],
                    attempts=task.attempts,
                    not_before=task.not_before,
                )
            )
        self.stats["splits"] += len(pieces) - 1
        metric_inc("exec.remote.splits", len(pieces) - 1)
        trace_emit(
            "split",
            chunk=task.chunk.index,
            pieces=len(pieces),
            per_piece=per_piece,
        )
        return pieces

    # -- dispatch -----------------------------------------------------------

    def _fill(
        self, backlog: List[_Task], tasks: Dict[int, _Task], task_ids: Iterator[int]
    ) -> None:
        """Assign dispatchable backlog to idle capacity, splitting as sized."""
        now = time.monotonic()
        for state in self._workers.values():
            if not state.ready or not state.link.alive():
                continue
            while len(state.inflight) < state.link.slots and backlog:
                picked = next((t for t in backlog if t.not_before <= now), None)
                if picked is None:
                    return  # everything dispatchable is backing off
                backlog.remove(picked)
                sized = self._sized(picked, task_ids)
                if len(sized) > 1:
                    backlog.extend(sized[1:])
                task = sized[0]
                try:
                    state.link.send(task.wire())
                except OSError:
                    backlog.extend(sized[:1])
                    break  # the EOF/deadline path reaps this worker
                tasks[task.task_id] = task
                state.inflight[task.task_id] = self._deadline_for(len(task.seeds))
                self.stats["tasks_dispatched"] += 1
                metric_inc("exec.remote.tasks_dispatched")
                trace_emit(
                    "dispatch",
                    task=task.task_id,
                    chunk=task.chunk.index,
                    units=len(task.seeds),
                    worker=state.link.name,
                    attempt=task.attempts,
                )

    def _absorb_result(
        self,
        state: _WorkerState,
        message: dict,
        tasks: Dict[int, _Task],
        assemblies: Dict[int, _Assembly],
    ) -> Optional[Tuple[int, List[Row]]]:
        """Fold one worker response in; returns a completed chunk, if any."""
        task = tasks.pop(int(message["index"]), None)
        if task is None:
            return None  # a re-dispatched duplicate from a slow worker
        state.inflight.pop(task.task_id, None)
        rows = list(message["rows"])
        if len(rows) != len(task.seeds):
            raise BackendError(
                f"worker {state.link.name} returned {len(rows)} rows "
                f"for a {len(task.seeds)}-unit dispatch"
            )
        seconds = message.get("seconds")
        if isinstance(seconds, (int, float)) and seconds > 0:
            self._cost.observe_cost(len(rows), float(seconds))
        timings = {
            str(phase): float(phase_seconds)
            for phase, phase_seconds in (message.get("timings") or {}).items()
        }
        for phase, phase_seconds in timings.items():
            record_phase(phase, phase_seconds)
        trace_emit(
            "chunk_result",
            task=task.task_id,
            chunk=task.chunk.index,
            worker=state.link.name,
            units=len(rows),
            seconds=float(seconds) if isinstance(seconds, (int, float)) else 0.0,
            timings=timings,
        )
        assembly = assemblies[task.chunk.index]
        if assembly.absorb(task.offset, rows):
            del assemblies[task.chunk.index]
            return task.chunk.index, assembly.rows  # type: ignore[return-value]
        return None

    def submit_batch(self, chunks: Sequence[Chunk]) -> Iterator[Tuple[int, List[Row]]]:
        self.start()
        # Split-task ids must never collide with the initial task ids (which
        # reuse chunk indices) — and chunk indices need not be 0..len-1 when a
        # caller hands us a surviving subset of an earlier batch.
        task_ids = itertools.count(max((c.index for c in chunks), default=-1) + 1)
        assemblies = {c.index: _Assembly(c) for c in chunks}
        backlog: List[_Task] = [
            _Task(task_id=c.index, chunk=c, offset=0, seeds=tuple(c.seeds)) for c in chunks
        ]
        tasks: Dict[int, _Task] = {}
        started = time.monotonic()
        while assemblies:
            live = self._live_workers()
            if not live:
                raise BackendError(
                    f"remote fleet exhausted: every worker died "
                    f"({len(assemblies)} chunks incomplete)"
                )
            if (
                not any(w.ready for w in live)
                and time.monotonic() - started > self._ready_timeout
            ):
                raise BackendError("remote workers did not become ready in time")
            self._fill(backlog, tasks, task_ids)
            try:
                worker_id, line = self._inbox.get(timeout=_TICK_SECONDS)
            except queue.Empty:
                self._check_deadlines(tasks, backlog)
                self._heartbeat(tasks, backlog)
                continue
            state = self._workers.get(worker_id)
            if state is None:
                continue  # a message from an already-reaped worker
            if line is None:
                self._lose_worker(state, tasks, backlog, reason="eof")
                continue
            state.last_seen = time.monotonic()
            state.pong_deadline = None  # any line is proof of life
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                self._lose_worker(state, tasks, backlog, reason="garbled")
                continue
            if message.get("ready"):
                state.ready = True
                continue
            if "pong" in message:
                continue
            if "error" in message:
                raise BackendError(
                    f"remote worker {state.link.name} failed: {message['error']}"
                )
            completed = self._absorb_result(state, message, tasks, assemblies)
            if completed is not None:
                yield completed
