"""The remote worker loop: wire-form chunks in, rows + phase timings out.

Run as ``python -m repro.exec.remote.worker`` (every transport starts exactly
this), the worker reads newline-delimited JSON requests from stdin and writes
newline-delimited JSON responses to stdout:

* ``{"ready": true, "pid": ...}`` — sent once after the package has imported,
  so the dispatcher can separate cold-start from dispatch latency;
* :meth:`~repro.exec.units.Chunk.to_wire` request →
  ``{"index", "rows", "units", "seconds", "timings"}`` response, where
  ``seconds`` is the worker-side wall time of the chunk (what adaptive
  chunk sizing feeds on) and ``timings`` are the per-phase splits from
  :mod:`repro.exec.stats` (setup / rounds / metrics), reported back over the
  wire so ``repro bench --backend remote`` keeps its timing table.  The
  first chunk of each spec also carries ``prewarm_seconds``: the spec parse
  and base-topology build are paid *before* the timed window (see
  :func:`_prewarm_chunk`), so ``seconds`` stays a steady-state cost;
* ``{"ping": k}`` → ``{"pong": k}`` — the dispatcher's idle heartbeat;
* ``{"stop": true}`` → clean exit.

Unit-level failures are reported as ``{"index", "error"}`` — the dispatcher
raises a transport error and the runner's serial fallback re-raises the real
traceback, exactly like the ``local-cluster`` backend.

Fault injection (how tests and CI kill a *worker*, not the dispatcher):

``REPRO_EXEC_WORKER_INTERRUPT_AFTER=N``
    Hard-exit (``os._exit``) after N units have been computed — mid-chunk,
    before any response is written, like a SIGKILL'd node.
``REPRO_EXEC_WORKER_HANG_AFTER=N``
    Sleep forever after N units — a wedged node the dispatcher can only
    detect by timeout.

Transports forward both variables to worker 0 only (see
:func:`repro.exec.remote.transport.worker_fault_env`), so a multi-worker
fleet loses exactly one node and the re-dispatch path is exercised for real.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, TextIO

from repro.exec.remote.transport import WORKER_HANG_ENV, WORKER_INTERRUPT_ENV
from repro.exec.stats import collect_stats
from repro.exec.units import Chunk, execute_unit, _cached_spec

__all__ = ["WORKER_HANG_ENV", "WORKER_INTERRUPT_ENV", "main"]

#: Spec keys this worker has already pre-warmed (see :func:`_prewarm_chunk`).
_PREWARMED: set = set()


def _prewarm_chunk(chunk: Chunk) -> float:
    """Warm the spec/topology caches for a chunk's first unit; returns seconds.

    The first chunk of every new spec pays two fixed costs no later chunk
    sees: parsing the spec dict and generating (or shm-attaching) the base
    topology.  Paying them *before* the timed window keeps the reported
    ``seconds`` a steady-state per-unit cost, so the dispatcher's adaptive
    chunk sizing is not skewed by one cold chunk — and a shm-published graph
    is mapped before the first unit's setup phase starts.  Failures are
    swallowed: a genuinely broken spec raises identically (with its real
    message) from ``execute_unit``.
    """
    if chunk.spec_key in _PREWARMED or not chunk.seeds:
        return 0.0
    _PREWARMED.add(chunk.spec_key)
    started = time.perf_counter()
    try:
        spec = _cached_spec(chunk.spec_key, chunk.spec_dict)
        from repro.exec.cache import cached_base_topology

        topology = spec.topology
        cached_base_topology(topology.name, topology.params, spec.n, int(chunk.seeds[0]))
    except Exception:  # noqa: BLE001 - see docstring
        pass
    return time.perf_counter() - started

#: Exit code of an injected worker kill (distinguishable from real crashes).
_INJECTED_EXIT_CODE = 23


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


def _send(out: TextIO, payload: dict) -> None:
    out.write(json.dumps(payload) + "\n")
    out.flush()


def _maybe_inject_fault(executed_units: int) -> None:
    """Fire the configured worker-side fault once ``executed_units`` is reached."""
    interrupt_after = _env_int(WORKER_INTERRUPT_ENV)
    if interrupt_after is not None and executed_units >= interrupt_after:
        os._exit(_INJECTED_EXIT_CODE)  # noqa: SLF001 - simulating a killed node
    hang_after = _env_int(WORKER_HANG_ENV)
    if hang_after is not None and executed_units >= hang_after:
        while True:  # a wedged node: alive but silent
            time.sleep(3600)


def main(stdin: Optional[TextIO] = None, stdout: Optional[TextIO] = None) -> int:
    """The worker loop (parameterised streams for in-process tests)."""
    stdin = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    executed = 0
    _send(out, {"ready": True, "pid": os.getpid()})
    for line in stdin:
        if not line.strip():
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            _send(out, {"error": f"unparseable request: {exc}"})
            continue
        if message.get("stop"):
            return 0
        if "ping" in message:
            _send(out, {"pong": message["ping"]})
            continue
        try:
            chunk = Chunk.from_wire(line)
            rows = []
            prewarm_seconds = _prewarm_chunk(chunk)
            started = time.perf_counter()
            with collect_stats() as stats:
                for seed in chunk.seeds:
                    rows.append(execute_unit(chunk.spec_dict, seed, chunk.spec_key))
                    executed += 1
                    _maybe_inject_fault(executed)
            response = {
                "index": chunk.index,
                "rows": rows,
                "units": len(rows),
                "seconds": time.perf_counter() - started,
                "timings": stats.as_dict(),
            }
            if prewarm_seconds:
                response["prewarm_seconds"] = prewarm_seconds
            _send(out, response)
        except Exception as exc:  # noqa: BLE001 - reported to the dispatcher
            _send(out, {"index": message.get("index"), "error": f"{type(exc).__name__}: {exc}"})
        # KeyboardInterrupt/SystemExit propagate: signals must stop the worker.
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
