"""``repro.exec.remote`` — the distributed sweep fabric.

The ``remote`` execution backend ships work-unit chunks, in the exact JSON
wire form the ``local-cluster`` backend pioneered, to a fleet of long-lived
workers on the far side of a pluggable :class:`~.transport.Transport`
(``loopback`` subprocesses for tests/CI, ``ssh`` for real machines), with
fault-tolerant re-dispatch, per-worker in-flight limits, adaptive chunk
re-sizing and worker-side phase timing reports.  See
:mod:`repro.exec.remote.dispatcher` for the dispatch model and
:mod:`repro.exec.remote.worker` for the worker loop and its fault-injection
hooks.

Select it like any backend — ``--backend remote [--transport ssh --hosts
a,b=4]``, ``"execution": {"backend": "remote", ...}`` or
``ExecutionPolicy(backend="remote", transport=..., hosts=...)``.
"""

from repro.exec.remote.transport import (
    TRANSPORTS,
    WORKER_HANG_ENV,
    WORKER_INTERRUPT_ENV,
    Transport,
    WorkerLink,
    make_transport,
    parse_hosts,
)
from repro.exec.remote.dispatcher import RemoteBackend

__all__ = [
    "RemoteBackend",
    "TRANSPORTS",
    "Transport",
    "WORKER_HANG_ENV",
    "WORKER_INTERRUPT_ENV",
    "WorkerLink",
    "make_transport",
    "parse_hosts",
]
