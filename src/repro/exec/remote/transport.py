"""Remote transports: how dispatcher and workers exchange wire-form lines.

A :class:`Transport` launches a fleet of long-lived worker processes and
returns one :class:`WorkerLink` per worker.  Everything that crosses a link
is a newline-terminated JSON string — chunk requests in the exact
:meth:`~repro.exec.units.Chunk.to_wire` form the ``local-cluster`` backend
already speaks, responses as ``{"index", "rows", ...}`` — so a transport
never needs to know anything about specs, seeds or rows.  Incoming lines are
pushed, tagged with the worker id, onto the dispatcher's shared inbox queue
by one reader thread per worker; worker death surfaces as a ``None`` line.

Registered transports (``TRANSPORTS``):

``loopback``
    Local subprocesses running ``python -m repro.exec.remote.worker`` over
    stdio pipes.  A genuine process boundary (kill-able, spawn-imported,
    nothing shared), which makes it the test/CI stand-in for a real fleet.
``ssh``
    The same worker loop started on remote hosts via ``ssh host python -m
    repro.exec.remote.worker``.  Hosts are ``host`` or ``host=slots``
    entries; ``slots`` is the per-worker in-flight limit, which is how a
    heterogeneous fleet expresses "this box can take more".

Fault injection (read by the *worker*, see :mod:`repro.exec.remote.worker`)
is deliberately forwarded to the **first worker only**: with
``REPRO_EXEC_WORKER_INTERRUPT_AFTER`` / ``REPRO_EXEC_WORKER_HANG_AFTER`` set,
worker 0 dies or hangs mid-chunk while the rest of the fleet survives —
exactly the one-node failure the dispatcher's re-dispatch path exists for.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.registry import Registry

__all__ = [
    "TRANSPORTS",
    "Transport",
    "WORKER_HANG_ENV",
    "WORKER_INTERRUPT_ENV",
    "WorkerLink",
    "parse_hosts",
    "worker_fault_env",
]

#: Remote transports by name (the ``--transport`` / ``execution.transport`` axis).
TRANSPORTS = Registry("remote transport")

#: Hard-exit after N computed units (the worker-side sibling of
#: ``REPRO_EXEC_INTERRUPT_AFTER``; forwarded to worker 0 only).  Defined here
#: rather than in :mod:`repro.exec.remote.worker` so nothing needs to import
#: the worker module — ``python -m repro.exec.remote.worker`` must stay the
#: only thing that executes it.
WORKER_INTERRUPT_ENV = "REPRO_EXEC_WORKER_INTERRUPT_AFTER"

#: Hang forever after N computed units (exercises the timeout detector).
WORKER_HANG_ENV = "REPRO_EXEC_WORKER_HANG_AFTER"

#: Worker-side fault-injection variables (forwarded to worker 0 only).
_FAULT_ENVS = (WORKER_INTERRUPT_ENV, WORKER_HANG_ENV)


def worker_fault_env(worker_index: int) -> dict:
    """The environment a spawned worker should run under.

    Worker 0 inherits the fault-injection variables so tests and the CI
    fabric-smoke job can kill exactly one node; every other worker gets them
    stripped and stays healthy.
    """
    env = dict(os.environ)
    if worker_index != 0:
        for name in _FAULT_ENVS:
            env.pop(name, None)
    return env


def parse_hosts(hosts: Sequence[str]) -> List[Tuple[str, int]]:
    """``["a", "b=4"]`` → ``[("a", 1), ("b", 4)]`` (name, in-flight slots)."""
    parsed: List[Tuple[str, int]] = []
    for entry in hosts:
        name, _, slots_text = str(entry).partition("=")
        name = name.strip()
        if not name:
            raise ConfigurationError(f"empty host in hosts list {list(hosts)!r}")
        slots = 1
        if slots_text:
            try:
                slots = int(slots_text)
            except ValueError:
                slots = 0
            if slots < 1:
                raise ConfigurationError(
                    f"host {entry!r}: slots must be a positive integer "
                    f"(use 'host' or 'host=slots')"
                )
        parsed.append((name, slots))
    return parsed


class WorkerLink:
    """One live worker: a subprocess plus its request pipe and reader thread.

    ``slots`` is the worker's in-flight limit — the dispatcher never has more
    than that many chunks outstanding on the link, which is what lets slow
    and fast fleet members coexist without the slow one becoming a convoy.
    """

    def __init__(
        self,
        worker_id: int,
        name: str,
        process: subprocess.Popen,
        inbox: "queue.Queue",
        slots: int = 1,
    ) -> None:
        self.worker_id = worker_id
        self.name = name
        self.process = process
        self.slots = max(1, int(slots))
        self._inbox = inbox
        self._reader = threading.Thread(
            target=self._pump, name=f"repro-remote-reader-{worker_id}", daemon=True
        )
        self._reader.start()

    def _pump(self) -> None:
        """Forward every stdout line to the inbox; ``None`` marks EOF/death."""
        stream = self.process.stdout
        try:
            for line in iter(stream.readline, ""):
                self._inbox.put((self.worker_id, line))
        except (OSError, ValueError):
            pass
        self._inbox.put((self.worker_id, None))

    def send(self, text: str) -> None:
        """Write one request line (raises ``OSError`` on a broken pipe)."""
        stdin = self.process.stdin
        if stdin is None:
            raise OSError(f"worker {self.name} has no request pipe")
        stdin.write(text + "\n")
        stdin.flush()

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """Hard-stop the worker (idempotent)."""
        if self.process.poll() is None:
            try:
                self.process.kill()
            except OSError:
                pass
        try:
            if self.process.stdin is not None:
                self.process.stdin.close()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerLink({self.name!r}, slots={self.slots}, alive={self.alive()})"


class Transport:
    """Launches worker processes and hands back their links."""

    name = "transport"

    def launch(
        self, max_workers: int, hosts: Optional[Sequence[str]], inbox: "queue.Queue"
    ) -> List[WorkerLink]:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-level state (links are killed by the dispatcher)."""


#: The worker entry point every transport starts on the far side.
_WORKER_ARGS = ["-u", "-m", "repro.exec.remote.worker"]


@TRANSPORTS.register(
    "loopback", doc="Local worker subprocesses over stdio pipes (tests/CI fleets)."
)
class LoopbackTransport(Transport):
    name = "loopback"

    def launch(
        self, max_workers: int, hosts: Optional[Sequence[str]], inbox: "queue.Queue"
    ) -> List[WorkerLink]:
        if hosts:
            members = parse_hosts(hosts)
        else:
            members = [(f"worker-{i}", 1) for i in range(max(1, int(max_workers)))]
        links: List[WorkerLink] = []
        for index, (name, slots) in enumerate(members):
            process = subprocess.Popen(
                [sys.executable, *_WORKER_ARGS],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=worker_fault_env(index),
            )
            links.append(WorkerLink(index, name, process, inbox, slots=slots))
        return links


@TRANSPORTS.register(
    "ssh", doc="Long-lived workers on remote hosts over ssh (host or host=slots entries)."
)
class SshTransport(Transport):
    """``ssh <host> python -m repro.exec.remote.worker`` per fleet member.

    The remote host only needs the ``repro`` package importable by
    ``remote_python``; nothing is copied over the wire except JSON lines.
    ``BatchMode=yes`` makes a missing key fail fast instead of prompting.
    """

    name = "ssh"

    def __init__(self, *, remote_python: str = "python3") -> None:
        self.remote_python = remote_python

    def command(self, host: str) -> List[str]:
        """The ssh invocation for one fleet member (separated for tests)."""
        worker = " ".join([self.remote_python, *_WORKER_ARGS])
        return ["ssh", "-o", "BatchMode=yes", host, worker]

    def launch(
        self, max_workers: int, hosts: Optional[Sequence[str]], inbox: "queue.Queue"
    ) -> List[WorkerLink]:
        del max_workers  # the fleet is the hosts list, not a local pool width
        if not hosts:
            raise ConfigurationError(
                "the ssh transport needs a hosts list "
                "(--hosts host1,host2=4 or execution.hosts)"
            )
        links: List[WorkerLink] = []
        for index, (host, slots) in enumerate(parse_hosts(hosts)):
            process = subprocess.Popen(
                self.command(host),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=worker_fault_env(index),
            )
            links.append(WorkerLink(index, host, process, inbox, slots=slots))
        return links


def make_transport(name: str, **options) -> Transport:
    """Instantiate the transport registered under ``name``."""
    return TRANSPORTS.get(name)(**options)
