"""The batch runner: chunked dispatch, checkpointing, fallback, ordering.

:func:`run_units` is the single execution path of the pipeline — every
``run_scenario``/``sweep`` call (and through them the CLI, the experiments
and the benchmarks) funnels its work units through here.  The runner

1. consults the sweep journal (when checkpointing is on) and drops every
   unit a previous killed run already completed,
2. groups the remaining units into same-spec chunks
   (:func:`~repro.exec.units.build_chunks`; explicit or auto chunk size),
3. streams the chunks through the selected backend, journalling every
   finished unit the moment its row arrives,
4. falls back to the serial backend for the *remaining* chunks when a pooled
   backend fails as a transport (no fork/spawn in the sandbox, dead workers,
   unpicklable ad-hoc components) — completed work is kept, and a genuine
   unit-level error re-raises with its real traceback from the serial path,
5. re-assembles rows in batch order, so the output is byte-identical across
   backends, chunkings and resume histories.

Fault injection for tests and the CI resume gate: setting the environment
variable ``REPRO_EXEC_INTERRUPT_AFTER`` to an integer makes the runner raise
:class:`KeyboardInterrupt` after that many freshly computed units have been
journalled — a deterministic stand-in for "the machine died mid-sweep".
Its worker-side siblings ``REPRO_EXEC_WORKER_INTERRUPT_AFTER`` /
``REPRO_EXEC_WORKER_HANG_AFTER`` (see :mod:`repro.exec.remote.worker`) kill
or wedge one *remote worker* mid-chunk instead, exercising the dispatcher's
re-dispatch path rather than the journal.
"""

from __future__ import annotations

import os
import time
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Dict, List, Optional, Sequence

from repro.errors import RegistryError
from repro.exec.backends import Backend, BackendError, make_backend
from repro.exec.journal import SweepJournal
from repro.exec.policy import ExecutionPolicy, default_workers, resolve_policy
from repro.exec.progress import ProgressReporter
from repro.exec.stats import EXEC_DISPATCH, EXEC_JOURNAL, RateEstimator, timed_phase
from repro.exec.units import Chunk, Row, WorkUnit, auto_chunk_size, build_chunks
from repro.obs.metrics import metric_gauge, metric_inc, metric_observe
from repro.obs.trace import emit as trace_emit

__all__ = ["INTERRUPT_ENV", "run_units"]

#: Fault-injection knob: interrupt after N freshly journalled units.
INTERRUPT_ENV = "REPRO_EXEC_INTERRUPT_AFTER"

#: Transport-level failures that trigger the serial fallback.  Everything
#: else is a real bug in a unit and propagates unchanged.
_FALLBACK_ERRORS = (
    OSError,
    PicklingError,
    PermissionError,
    ImportError,
    BrokenProcessPool,
    RegistryError,
    BackendError,
)


def _effective_backend(policy: ExecutionPolicy, n_pending: int) -> tuple[str, int]:
    """Resolve ``(backend name, worker count)`` for this batch.

    Mirrors the PR-1 executor's pragmatics: one-unit batches and
    single-CPU hosts (when no explicit worker count forces a pool) run
    serially, because a process pool cannot beat the in-process loop there.
    """
    workers = policy.max_workers or default_workers(n_pending)
    name = policy.backend
    if n_pending <= 1:
        return "serial", 1
    if policy.max_workers is None and workers <= 1 and name in ("process", "local-cluster"):
        return "serial", 1
    return name, workers


class _Interrupter:
    """Counts freshly completed units and fires the fault-injection hook."""

    def __init__(self) -> None:
        raw = os.environ.get(INTERRUPT_ENV)
        self.after: Optional[int] = int(raw) if raw else None
        self.fresh = 0

    def tick(self, completed_units: int) -> None:
        self.fresh += completed_units
        if self.after is not None and self.fresh >= self.after:
            raise KeyboardInterrupt(
                f"injected interrupt after {self.fresh} units ({INTERRUPT_ENV}={self.after})"
            )


def run_units(
    units: Sequence[WorkUnit],
    policy: Optional[ExecutionPolicy] = None,
    *,
    label: str = "",
) -> List[Row]:
    """Execute ``units`` under ``policy`` and return their rows in batch order."""
    policy = policy if policy is not None else resolve_policy()
    if not units:
        return []

    started = time.perf_counter()
    journal: Optional[SweepJournal] = None
    completed: Dict[int, Row] = {}
    if policy.journal_dir:
        with timed_phase(EXEC_JOURNAL):
            journal = SweepJournal.for_batch(policy.journal_dir, units)
            completed = journal.begin(resume=policy.resume)
        if completed:
            trace_emit("journal_restore", restored=len(completed))

    rows: List[Optional[Row]] = [completed.get(i) for i in range(len(units))]
    pending = [i for i in range(len(units)) if i not in completed]
    estimator = RateEstimator()
    progress = ProgressReporter(
        len(units),
        label=label,
        enabled=policy.progress,
        already_done=len(completed),
        rate_source=estimator,
    )
    interrupter = _Interrupter()

    backend_name, workers = _effective_backend(policy, len(pending))
    chunk_size = policy.chunk_size or auto_chunk_size(len(pending), workers)
    pending_units = [units[i] for i in pending]
    chunks = build_chunks(pending_units, chunk_size)
    trace_emit(
        "batch_begin",
        label=label,
        units=len(units),
        restored=len(completed),
        backend=backend_name,
        workers=workers,
        chunks=len(chunks),
    )

    received: set = set()

    def absorb(chunk: Chunk, chunk_rows: List[Row]) -> None:
        if len(chunk_rows) != len(chunk.seeds):
            raise BackendError(
                f"backend returned {len(chunk_rows)} rows for a {len(chunk.seeds)}-unit chunk"
            )
        for offset, row in enumerate(chunk_rows):
            index = pending[chunk.start + offset]
            rows[index] = row
            if journal is not None:
                with timed_phase(EXEC_JOURNAL):
                    journal.record(index, row)
        received.add(chunk.index)
        estimator.observe_batch(len(chunk.seeds))
        trace_emit("chunk_done", chunk=chunk.index, units=len(chunk.seeds))
        metric_inc("exec.units", len(chunk.seeds))
        metric_inc("exec.chunks")
        metric_observe("exec.chunk_units", len(chunk.seeds))
        progress.update(len(chunk.seeds))
        interrupter.tick(len(chunk.seeds))

    # Topologies shared by several units of a pooled batch are published to
    # shared memory before dispatch, so every worker maps one copy of the
    # adjacency arrays instead of regenerating (and duplicating) the graph.
    # The runner owns the segments: they are unlinked when the batch ends,
    # whatever way it ends.
    shm_pool = None
    if backend_name in ("process", "local-cluster", "remote") and len(chunks) > 1:
        from repro.exec.shm import publish_for_chunks

        shm_pool = publish_for_chunks(chunks)
        if shm_pool is not None:
            trace_emit(
                "shm_publish",
                segments=shm_pool.segments,
                bytes=shm_pool.published_bytes,
            )
            metric_gauge("exec.shm_segments", shm_pool.segments)
            metric_gauge("exec.shm_bytes", shm_pool.published_bytes)

    try:
        # An explicit chunk size is a promise: the remote dispatcher must not
        # re-split it adaptively behind the caller's back.  Both hooks travel
        # as extras so option-less backends simply ignore them.
        extras = {"cost_estimator": estimator}
        if policy.chunk_size is not None:
            extras["adaptive"] = False
        # When the batch was downgraded away from the policy's backend (one
        # pending unit, single-CPU host), the policy's transport options belong
        # to the backend that was overridden — serial rejects them by design.
        options = policy.backend_options() if backend_name == policy.backend else {}
        backend: Backend = make_backend(backend_name, workers, options or None, extras=extras)
        try:
            with backend, timed_phase(EXEC_DISPATCH):
                for chunk_index, chunk_rows in backend.submit_batch(chunks):
                    absorb(chunks[chunk_index], chunk_rows)
        except _FALLBACK_ERRORS as exc:
            # The transport failed; whatever chunks did come back are kept
            # (and journalled).  The serial loop computes identical rows, and
            # genuine unit errors re-raise from it with their real traceback.
            serial = make_backend("serial", 1)
            remaining = [chunk for chunk in chunks if chunk.index not in received]
            trace_emit(
                "serial_fallback",
                error=type(exc).__name__,
                chunks_left=len(remaining),
            )
            metric_inc("exec.serial_fallbacks")
            with timed_phase(EXEC_DISPATCH):
                for chunk_index, chunk_rows in serial.submit_batch(remaining):
                    absorb(chunks[chunk_index], chunk_rows)
    except BaseException:
        if journal is not None:
            journal.close()  # keep the checkpoint for --resume
        raise
    finally:
        if shm_pool is not None:
            shm_pool.close()
    progress.finish()
    missing = [i for i, row in enumerate(rows) if row is None]
    if missing:  # a backend dropped work on the floor — never silently truncate
        raise BackendError(f"{len(missing)} of {len(units)} units produced no row: {missing[:10]}")
    if journal is not None:
        journal.complete()
    trace_emit(
        "batch_end",
        label=label,
        units=len(units),
        seconds=round(time.perf_counter() - started, 6),
    )
    rate = estimator.rate
    if rate is not None:
        metric_gauge("exec.rate_units_per_s", rate)
    cost = estimator.seconds_per_unit
    if cost is not None:
        metric_gauge("exec.seconds_per_unit", cost)
    return rows  # type: ignore[return-value]
