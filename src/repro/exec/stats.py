"""Execution-phase timing: where a pipeline run actually spends its time.

The ROADMAP's "journal-aware ``repro bench`` timing splits" rung: instead of
one opaque wall-clock number per experiment, the runner and the scenario
work unit report *phases* — context/component setup, the simulated round
loop, metric extraction, journal bookkeeping, backend dispatch — into an
ambient :class:`StatsCollector` installed with :func:`collect_stats`.

Reporting is strictly opt-in and in-process: without an active collector
:func:`record_phase` is a no-op costing one global read, so steady-state
sweeps pay nothing.  Phase totals recorded inside pooled worker *processes*
stay in those processes — the dispatch phase then accounts for their wall
time — while the ``serial`` and ``thread`` backends yield complete per-unit
splits (``repro bench --serial`` for the full breakdown).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "RateEstimator",
    "StatsCollector",
    "collect_stats",
    "record_phase",
    "timed_phase",
]

#: Phase names the pipeline reports (others are allowed; these are the
#: conventional ones surfaced by ``repro bench``): component building per
#: work unit, the simulated round loop, metric/probe extraction,
#: sweep-journal resume reads + record writes, and backend dispatch wall
#: time (including pooled workers).
UNIT_SETUP = "unit_setup"
UNIT_ROUNDS = "unit_rounds"
UNIT_METRICS = "unit_metrics"
EXEC_JOURNAL = "exec_journal"
EXEC_DISPATCH = "exec_dispatch"


class StatsCollector:
    """Thread-safe accumulator of ``phase -> (seconds, events)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: Dict[str, float] = {}
        self._events: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        with self._lock:
            self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
            self._events[phase] = self._events.get(phase, 0) + 1

    def seconds(self, phase: str) -> float:
        """Total seconds recorded for ``phase`` (0.0 if never reported)."""
        return self._seconds.get(phase, 0.0)

    def events(self, phase: str) -> int:
        """Number of times ``phase`` was reported."""
        return self._events.get(phase, 0)

    def as_dict(self) -> Dict[str, float]:
        """``{phase: seconds}`` snapshot."""
        with self._lock:
            return dict(self._seconds)


class RateEstimator:
    """EMA model of observed unit throughput and per-unit cost.

    The runner feeds it completion events (:meth:`observe_batch`) and remote
    workers feed it their measured wall time per dispatch
    (:meth:`observe_cost`); the progress reporter reads :attr:`rate` /
    :attr:`seconds_per_unit` for a stats-derived ETA that settles quickly
    and tracks load changes, instead of the raw cumulative average, and the
    remote dispatcher reads :attr:`seconds_per_unit` to size outgoing
    chunks.  Thread-safe: reader threads and the dispatch loop may report
    concurrently.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        self._alpha = float(alpha)
        self._lock = threading.Lock()
        self._rate: Optional[float] = None
        self._cost: Optional[float] = None
        self._last_batch = time.perf_counter()

    def _blend(self, previous: Optional[float], sample: float) -> float:
        return sample if previous is None else previous + self._alpha * (sample - previous)

    def observe_batch(self, units: int) -> None:
        """``units`` more completions arrived (wall interval measured here)."""
        now = time.perf_counter()
        with self._lock:
            interval = now - self._last_batch
            self._last_batch = now
            if units > 0 and interval > 0:
                self._rate = self._blend(self._rate, units / interval)

    def observe_cost(self, units: int, seconds: float) -> None:
        """A worker reports ``units`` computed in ``seconds`` of its wall time."""
        if units > 0 and seconds > 0:
            with self._lock:
                self._cost = self._blend(self._cost, seconds / units)

    @property
    def rate(self) -> Optional[float]:
        """Smoothed units/second throughput (``None`` before any observation).

        Falls back to the inverse worker-side cost when only workers have
        reported — a single-worker approximation, but better than showing
        nothing before the first dispatcher-side completion.
        """
        if self._rate is not None:
            return self._rate
        return (1.0 / self._cost) if self._cost else None

    @property
    def seconds_per_unit(self) -> Optional[float]:
        """Smoothed worker-side cost of one unit (``None`` without reports).

        Falls back to the inverse throughput when no worker-side cost has
        been reported (serial and pooled backends measure nothing inside
        the worker).
        """
        if self._cost is not None:
            return self._cost
        return (1.0 / self._rate) if self._rate else None


#: The active collector (None = reporting disabled).  A plain global, not a
#: context-var: worker threads of the thread backend must report into the
#: collector installed by the main thread.
_ACTIVE: Optional[StatsCollector] = None


@contextmanager
def collect_stats() -> Iterator[StatsCollector]:
    """Install a collector for the duration of the block and yield it.

    Nested blocks stack: the innermost collector receives the reports.
    """
    global _ACTIVE
    collector = StatsCollector()
    previous = _ACTIVE
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous


def record_phase(phase: str, seconds: float) -> None:
    """Report ``seconds`` spent in ``phase`` (no-op without a collector)."""
    collector = _ACTIVE
    if collector is not None:
        collector.add(phase, seconds)


@contextmanager
def timed_phase(phase: str) -> Iterator[None]:
    """Time the block and report it (near-zero cost without a collector)."""
    if _ACTIVE is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        record_phase(phase, time.perf_counter() - start)
