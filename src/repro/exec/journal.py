"""Sweep journals: append-only checkpoints for killed-run resume.

A :class:`SweepJournal` is an append-only JSONL file recording every
completed work unit of one batch — its index, its unit key and its result
row.  The runner appends (and flushes) a line the moment a unit's row comes
back from a backend, so at any kill point the journal holds exactly the
completed prefix of work.  A later run of the *same batch* with
``resume=True`` loads the journal, skips the recorded units and recomputes
only the rest; because units are pure functions of ``(spec, seed)``, the
merged rows — and therefore the store entries derived from them — are
byte-identical to an uninterrupted run.

Journals are keyed by the batch's content hash
(:func:`~repro.exec.units.batch_key`): any change to the specs, the grid or
the seed list changes the hash and maps to a fresh journal, so a resume can
never mix rows from a different workload.  Rows cross the journal as JSON;
round-tripping floats through ``repr`` is exact, which is what keeps resumed
store entries byte-for-byte equal.

On successful completion the journal file is deleted — it is a checkpoint,
not an archive; the results store is the archive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, TextIO

from repro.exec.units import Row, WorkUnit, batch_key

__all__ = ["JOURNAL_FORMAT", "SweepJournal"]

#: Bumped whenever the journal line layout changes incompatibly.
JOURNAL_FORMAT = "repro-journal/1"


class SweepJournal:
    """Append-only completion record of one batch of work units."""

    def __init__(self, path: Path, units: Sequence[WorkUnit]) -> None:
        self.path = Path(path)
        self._unit_keys = [unit.unit_key for unit in units]
        self._handle: Optional[TextIO] = None

    @classmethod
    def for_batch(cls, journal_dir: Path | str, units: Sequence[WorkUnit]) -> "SweepJournal":
        """The journal for ``units`` under ``journal_dir`` (content-addressed)."""
        return cls(Path(journal_dir) / f"{batch_key(units)[:24]}.jsonl", units)

    # -- reading -----------------------------------------------------------

    def load(self) -> Dict[int, Row]:
        """The completed units recorded so far: ``{unit_index: row}``.

        Tolerates a torn final line (a kill mid-write) and ignores entries
        whose unit key does not match the current batch at that index — a
        belt-and-braces guard on top of the content-addressed file name.
        """
        completed: Dict[int, Row] = {}
        if not self.path.exists():
            return completed
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return completed
        for line_number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write; later lines cannot exist
            if line_number == 0:
                if data.get("format") != JOURNAL_FORMAT:
                    return {}
                continue
            index = data.get("i")
            if (
                isinstance(index, int)
                and 0 <= index < len(self._unit_keys)
                and data.get("u") == self._unit_keys[index]
            ):
                completed[index] = data["row"]
        return completed

    # -- writing -----------------------------------------------------------

    def _open(self, *, fresh: bool) -> TextIO:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            exists = self.path.exists() and not fresh
            self._handle = self.path.open("a" if exists else "w", encoding="utf-8")
            if not exists:
                header = {"format": JOURNAL_FORMAT, "total": len(self._unit_keys)}
                self._handle.write(json.dumps(header) + "\n")
                self._handle.flush()
            elif self.path.stat().st_size and not self.path.read_bytes().endswith(b"\n"):
                # The previous run was killed mid-write: terminate the torn
                # fragment so the next record starts on its own line instead
                # of merging into an unparseable one.
                self._handle.write("\n")
                self._handle.flush()
        return self._handle

    def begin(self, *, resume: bool) -> Dict[int, Row]:
        """Open for appending; returns previously completed rows.

        Without ``resume`` an existing journal (a stale checkpoint of an
        interrupted run the caller chose not to continue) is truncated.
        """
        completed = self.load() if resume else {}
        self._open(fresh=not completed)
        return completed

    def record(self, index: int, row: Row) -> None:
        """Append one completed unit (flushed immediately — kill-safe)."""
        handle = self._open(fresh=False)
        handle.write(
            json.dumps({"i": index, "u": self._unit_keys[index], "row": row}) + "\n"
        )
        handle.flush()

    def complete(self) -> None:
        """The batch finished: close and delete the checkpoint."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        """Close the file handle, keeping the checkpoint on disk."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
