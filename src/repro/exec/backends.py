"""Pluggable execution backends: one dispatch contract, four transports.

A :class:`Backend` turns a list of :class:`~repro.exec.units.Chunk` objects
into per-chunk row lists.  ``submit_batch`` yields ``(chunk_index, rows)``
pairs *in completion order* — the runner re-assembles batch order from the
chunk's ``start`` offset, journals finished units immediately (that is what
makes checkpoint/resume possible) and guarantees byte-identical rows across
backends because every unit is a pure function of ``(spec, seed)``.

Registered backends (``BACKENDS``):

``serial``
    In-process loop.  The reference implementation every other backend must
    match byte for byte; also the automatic fallback when pools cannot spawn.
``process``
    ``concurrent.futures.ProcessPoolExecutor`` fan-out with chunk-level
    dispatch — the default parallel backend for CPU-bound sweeps.
``thread``
    ``ThreadPoolExecutor`` fan-out.  The GIL serialises simulation bytecode,
    so this only helps I/O-heavy units (store replay, trace export), but it
    needs no picklable state and never forks.
``local-cluster``
    A ``spawn``-started multi-process queue backend that speaks *only* the
    JSON wire form of the work-unit contract
    (:meth:`~repro.exec.units.Chunk.to_wire` in,
    ``{"index", "rows"}`` JSON out).  It is deliberately the stepping stone
    to a remote/distributed runner: replace the two queues with any transport
    that moves strings and the contract — and the rows — stay identical.
``remote``
    The distributed sweep fabric built on exactly that seam
    (:mod:`repro.exec.remote`): long-lived workers behind a pluggable
    transport (``loopback`` subprocesses or ``ssh``), with fault-tolerant
    re-dispatch, heartbeats, per-worker in-flight limits and adaptive chunk
    re-sizing.  Registered on import of :mod:`repro.exec.remote`.

New backends register with the usual decorator::

    from repro.exec import BACKENDS

    @BACKENDS.register("my-cluster")
    def _build(max_workers):
        return MyClusterBackend(max_workers)
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.scenarios.registry import Registry
from repro.exec.units import Chunk, Row, execute_chunk, execute_chunk_wire

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendError",
    "make_backend",
]

#: Execution backends by name (the ``--backend`` / ``execution.backend`` axis).
BACKENDS = Registry("execution backend")


class BackendError(ReproError):
    """A backend failed as a *transport* (worker died, queue broke).

    Unit-level errors (a metric raising, an unknown component) are not
    wrapped: they re-raise identically from the serial fallback, so genuine
    bugs keep their real tracebacks.
    """


class Backend:
    """Base class of the execution backends (see module docstring)."""

    name = "backend"

    def start(self) -> None:
        """Acquire workers (idempotent; ``submit_batch`` auto-starts)."""

    def close(self) -> None:
        """Release workers (idempotent)."""

    def submit_batch(self, chunks: Sequence[Chunk]) -> Iterator[Tuple[int, List[Row]]]:
        """Execute ``chunks``; yield ``(chunk_index, rows)`` as they complete."""
        raise NotImplementedError

    def __enter__(self) -> "Backend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@BACKENDS.register("serial", doc="In-process loop; the byte-identity reference and fallback.")
class SerialBackend(Backend):
    name = "serial"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        del max_workers  # one process, by definition

    def submit_batch(self, chunks: Sequence[Chunk]) -> Iterator[Tuple[int, List[Row]]]:
        for chunk in chunks:
            yield chunk.index, execute_chunk((chunk.spec_key, chunk.spec_dict, chunk.seeds))


class _PoolBackend(Backend):
    """Shared machinery of the ``concurrent.futures`` backends."""

    _executor_cls = None  # type: ignore[assignment]

    def __init__(self, max_workers: int) -> None:
        self._max_workers = max(1, int(max_workers))
        self._pool = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = self._executor_cls(max_workers=self._max_workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def submit_batch(self, chunks: Sequence[Chunk]) -> Iterator[Tuple[int, List[Row]]]:
        self.start()
        futures = {
            self._pool.submit(execute_chunk, (c.spec_key, c.spec_dict, c.seeds)): c.index
            for c in chunks
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()
        finally:
            for future in pending:
                future.cancel()


@BACKENDS.register("process", doc="Chunked ProcessPoolExecutor fan-out (default parallel backend).")
class ProcessBackend(_PoolBackend):
    name = "process"
    _executor_cls = ProcessPoolExecutor


@BACKENDS.register("thread", doc="ThreadPoolExecutor fan-out for I/O-bound units (store replay).")
class ThreadBackend(_PoolBackend):
    name = "thread"
    _executor_cls = ThreadPoolExecutor


# ---------------------------------------------------------------------------
# the local cluster
# ---------------------------------------------------------------------------


def _cluster_worker(task_queue, result_queue) -> None:
    """Worker loop: JSON request in, JSON response out, ``None`` to stop.

    Runs in a ``spawn``-started process: nothing is inherited from the parent
    beyond the two queues, exactly the situation of a remote worker that only
    shares the package installation.
    """
    result_queue.put(json.dumps({"ready": True}))
    while True:
        text = task_queue.get()
        if text is None:
            return
        try:
            result_queue.put(execute_chunk_wire(text))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            result_queue.put(json.dumps({"error": f"{type(exc).__name__}: {exc}"}))


@BACKENDS.register(
    "local-cluster",
    doc="spawn-safe multi-process queue backend speaking the JSON work-unit contract.",
)
class LocalClusterBackend(Backend):
    """Queue-fed worker processes exchanging only JSON strings.

    The parent never pickles live objects into the workers: requests are
    :meth:`Chunk.to_wire` strings, responses are ``{"index", "rows"}`` (or
    ``{"error"}``) strings.  Workers start via the ``spawn`` method, so they
    import ``repro`` from scratch like any remote process would — ad-hoc
    components registered only in the parent are invisible to them (the
    runner's serial fallback covers that case, same as for ``process``).
    """

    name = "local-cluster"

    #: Seconds between liveness checks while waiting for results.
    _POLL_SECONDS = 0.5

    def __init__(self, max_workers: int, *, start_method: str = "spawn") -> None:
        self._max_workers = max(1, int(max_workers))
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: List = []
        self._task_queue = None
        self._result_queue = None
        self._ready = 0

    def start(self) -> None:
        if self._workers:
            return
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._ready = 0
        for _ in range(self._max_workers):
            process = self._ctx.Process(
                target=_cluster_worker,
                args=(self._task_queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._workers.append(process)

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until every worker has imported the package and reported in.

        Lets callers (benchmarks, tests) separate worker cold-start from
        steady-state dispatch throughput.
        """
        self.start()
        waited = 0.0
        while self._ready < len(self._workers):
            message = self._take_message(timeout=min(self._POLL_SECONDS, timeout))
            if message is None:
                waited += self._POLL_SECONDS
                if waited >= timeout:
                    raise BackendError("local-cluster workers did not become ready in time")
                self._check_alive()

    def close(self) -> None:
        for _ in self._workers:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):  # queue already torn down
                break
        for process in self._workers:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        self._workers = []
        self._task_queue = None
        self._result_queue = None
        self._ready = 0

    # -- result plumbing ----------------------------------------------------

    def _check_alive(self) -> None:
        dead = [p for p in self._workers if not p.is_alive()]
        if dead:
            raise BackendError(
                f"{len(dead)} local-cluster worker(s) died "
                f"(exit codes {[p.exitcode for p in dead]})"
            )

    def _take_message(self, timeout: float) -> Optional[Dict]:
        """One decoded message off the result queue (``None`` on timeout)."""
        try:
            text = self._result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None
        message = json.loads(text)
        if message.get("ready"):
            self._ready += 1
            return self._take_message(timeout=0.001) or None
        if "error" in message:
            raise BackendError(f"local-cluster worker failed: {message['error']}")
        return message

    def submit_batch(self, chunks: Sequence[Chunk]) -> Iterator[Tuple[int, List[Row]]]:
        self.start()
        for chunk in chunks:
            self._task_queue.put(chunk.to_wire())
        remaining = len(chunks)
        while remaining:
            message = self._take_message(timeout=self._POLL_SECONDS)
            if message is None:
                self._check_alive()
                continue
            remaining -= 1
            yield int(message["index"]), list(message["rows"])


def make_backend(
    name: str,
    max_workers: int,
    options: Optional[Dict] = None,
    extras: Optional[Dict] = None,
) -> Backend:
    """Instantiate the backend registered under ``name``.

    ``options`` are user-facing transport options (an
    :meth:`~repro.exec.policy.ExecutionPolicy.backend_options` dict) and must
    be consumed: passing them to a backend that declares no
    ``accepts_options`` fails loudly instead of silently ignoring a
    ``--transport``/``--hosts`` flag.  ``extras`` are runner-internal hooks
    (e.g. the shared rate estimator) that option-less backends drop.
    """
    builder = BACKENDS.get(name)
    accepts = bool(getattr(builder, "accepts_options", False))
    if options and not accepts:
        raise ConfigurationError(
            f"backend {name!r} accepts no transport options "
            f"(got {sorted(options)}); use --backend remote"
        )
    if accepts:
        return builder(max_workers, **{**(extras or {}), **(options or {})})
    return builder(max_workers)
