"""``repro.exec`` — the pluggable execution-backend subsystem.

Everything the pipeline runs is a batch of *work units* — pure
``(spec-dict, seed)`` jobs (:mod:`repro.exec.units`) — dispatched in chunks
through a registered :class:`~repro.exec.backends.Backend` under an
:class:`~repro.exec.policy.ExecutionPolicy`, with optional sweep-journal
checkpointing (:mod:`repro.exec.journal`) and progress reporting
(:mod:`repro.exec.progress`).  :func:`~repro.exec.runner.run_units` is the
single entry point; ``run_scenario``/``sweep``, the ``repro`` CLI and the
benchmarks all execute through it.

>>> from repro.exec import BACKENDS
>>> sorted(BACKENDS)
['local-cluster', 'process', 'remote', 'serial', 'thread']

Backends are a registry like every other scenario component, so a remote or
cluster-scale runner plugs in without touching the pipeline::

    from repro.exec import BACKENDS

    @BACKENDS.register("my-cluster")
    def _build(max_workers):
        return MyClusterBackend(max_workers)

The distributed-ready seam is the JSON wire contract
(:meth:`~repro.exec.units.Chunk.to_wire` /
:func:`~repro.exec.units.execute_chunk_wire`): the bundled ``local-cluster``
backend speaks nothing else, and the ``remote`` backend
(:mod:`repro.exec.remote`) carries the same strings over pluggable
transports to long-lived workers on other machines.
"""

from repro.exec.units import (
    Chunk,
    WorkUnit,
    auto_chunk_size,
    batch_key,
    build_chunks,
    execute_chunk,
    execute_chunk_wire,
    execute_unit,
    units_for_spec,
)
from repro.exec.backends import BACKENDS, Backend, BackendError, make_backend
from repro.exec.cache import (
    cached_base_topology,
    topology_cache_clear,
    topology_cache_info,
)
from repro.exec.stats import (
    RateEstimator,
    StatsCollector,
    collect_stats,
    record_phase,
    timed_phase,
)
from repro.exec.policy import (
    ExecutionPolicy,
    current_policy,
    policy_from_mapping,
    resolve_policy,
    use_policy,
)
from repro.exec.journal import SweepJournal
from repro.exec.progress import ProgressReporter
from repro.exec.runner import INTERRUPT_ENV, run_units

# Importing the remote package registers the ``remote`` backend; it must come
# after ``backends`` (the registry) and ``units`` (the wire contract).
from repro.exec.remote import (  # noqa: E402
    TRANSPORTS,
    RemoteBackend,
    WORKER_HANG_ENV,
    WORKER_INTERRUPT_ENV,
    parse_hosts,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendError",
    "Chunk",
    "ExecutionPolicy",
    "INTERRUPT_ENV",
    "ProgressReporter",
    "RateEstimator",
    "RemoteBackend",
    "StatsCollector",
    "SweepJournal",
    "TRANSPORTS",
    "WORKER_HANG_ENV",
    "WORKER_INTERRUPT_ENV",
    "WorkUnit",
    "auto_chunk_size",
    "batch_key",
    "build_chunks",
    "cached_base_topology",
    "collect_stats",
    "current_policy",
    "execute_chunk",
    "execute_chunk_wire",
    "execute_unit",
    "make_backend",
    "parse_hosts",
    "policy_from_mapping",
    "record_phase",
    "resolve_policy",
    "run_units",
    "timed_phase",
    "topology_cache_clear",
    "topology_cache_info",
    "units_for_spec",
    "use_policy",
]
