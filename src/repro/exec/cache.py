"""Per-process cache of built base topologies.

Every seed-replication of a scenario starts by generating its base topology
(:func:`repro.scenarios.executor._build_context`).  In chunked sweeps the
same topology is regenerated over and over: an adversary × algorithm matrix
re-runs the identical ``(family, params, n, seed)`` generation for every grid
point, and resumed sweeps re-derive what a previous process already built.
This module gives each worker process a bounded cache of finished
:class:`~repro.dynamics.topology.Topology` objects (they are immutable, so
sharing one instance across scenario contexts is safe), the first rung of the
ROADMAP's "shared-memory topology path".

Correctness is by key construction: the topology a scenario gets is a pure
function of the family name, its canonical parameters, ``n`` and the derived
seed of the ``("topology", name, n)`` rng stream (a fresh generator is
spawned for every build, so nothing else observes the stream).  Two units
agreeing on that tuple get byte-identical topologies whether or not the cache
is hit — random families with different unit seeds simply occupy different
slots, while grid points that vary only the adversary/algorithm share one.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Tuple

from repro.utils.rng import derive_seed, spawn_generator

__all__ = ["cached_base_topology", "topology_cache_info", "topology_cache_clear"]

#: FIFO-bounded cache: key -> built Topology.  Sized for sweep grids (a grid
#: usually touches a handful of (family, n) combinations × the seed list).
_CACHE: Dict[Tuple, Any] = {}
_CACHE_MAX = 64
_LOCK = threading.Lock()

_HITS = 0
_MISSES = 0


def _cache_key(name: str, params: Mapping[str, Any], n: int, master_seed: int) -> Tuple:
    stream_seed = derive_seed(master_seed, "topology", name, n)
    return (name, n, stream_seed, tuple(sorted((k, repr(v)) for k, v in params.items())))


def cached_base_topology(name: str, params: Mapping[str, Any], n: int, master_seed: int):
    """Build (or reuse) the base topology of a scenario replication.

    ``master_seed`` is the replication's seed; the generator handed to the
    topology factory is spawned from the same ``("topology", name, n)``
    stream :class:`~repro.scenarios.executor.ScenarioContext` always used, so
    cache hits and misses are indistinguishable in the produced rows.
    """
    global _HITS, _MISSES
    key = _cache_key(name, params, n, master_seed)
    topology = _CACHE.get(key)
    if topology is not None:
        with _LOCK:
            _HITS += 1
        return topology
    # Second rung: a pooled runner may have published this exact build into
    # shared memory (see :mod:`repro.exec.shm`) — map it instead of
    # regenerating.  The attached topology is content-identical to a local
    # build, so the shm hit is indistinguishable in the produced rows too.
    from repro.exec import shm

    topology = shm.attach_topology(shm.topology_key(name, params, n, master_seed))
    if topology is None:
        from repro.scenarios.registry import TOPOLOGIES

        rng = spawn_generator(master_seed, "topology", name, n)
        topology = TOPOLOGIES.get(name)(n, rng, **params)
    with _LOCK:
        _MISSES += 1
        while len(_CACHE) >= _CACHE_MAX:
            _CACHE.pop(next(iter(_CACHE)))
        _CACHE[key] = topology
    return topology


def topology_cache_info() -> Dict[str, int]:
    """``{"entries", "capacity", "hits", "misses"}`` of this process's cache."""
    return {
        "entries": len(_CACHE),
        "capacity": _CACHE_MAX,
        "hits": _HITS,
        "misses": _MISSES,
    }


def topology_cache_clear() -> None:
    """Empty the cache and reset the counters (test isolation)."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
