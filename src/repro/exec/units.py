"""The distributed-ready work-unit contract.

A *work unit* is the atomic, relocatable job of the execution subsystem: one
``(spec-dict, seed)`` pair.  The spec dict is the plain-JSON form of a
:class:`~repro.scenarios.spec.ScenarioSpec` (``ScenarioSpec.to_dict()``), so a
unit survives JSON round-trips and can be executed by any process — or any
machine — that has the ``repro`` package installed.  Every backend, from the
in-process serial loop to the ``spawn``-based local cluster (and any future
remote runner), speaks exactly this contract; nothing else crosses the
dispatch boundary.

Units are dispatched in :class:`Chunk` groups to amortise per-unit dispatch
cost (IPC, pickling, spec re-hydration) over many tiny units.  A chunk never
mixes specs: it carries one spec dict plus the seed list it applies to, so
the spec is serialised once per chunk instead of once per unit, and the
worker-side :func:`execute_chunk` parses it at most once per process (see
``_SPEC_CACHE``).

Determinism is the ground rule: a unit is a pure function of
``(spec, seed)`` — every random stream derives from the seed — so any
backend, any chunking and any resume order produces byte-identical rows.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import content_key

__all__ = [
    "Chunk",
    "WorkUnit",
    "auto_chunk_size",
    "batch_key",
    "build_chunks",
    "execute_chunk",
    "execute_unit",
    "units_for_spec",
]

Row = Dict[str, Any]

#: Upper bound on auto-chosen chunk sizes (keeps progress/journal granularity
#: and load-balancing reasonable even for ten-thousand-unit sweeps).
_MAX_AUTO_CHUNK = 64

#: How many chunks per worker the auto-chunker aims for (load balancing slack).
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkUnit:
    """One ``(spec-dict, seed)`` job.

    ``spec_key`` is the content hash of the canonical spec dict; units built
    from the same scenario point share one key (and one parsed-spec cache
    entry in the workers).  ``unit_key`` identifies the unit inside a batch —
    it is what the sweep journal records as "done".
    """

    spec_dict: Mapping[str, Any]
    seed: int
    spec_key: str

    @property
    def unit_key(self) -> str:
        return f"{self.spec_key[:12]}:{self.seed}"

    @classmethod
    def for_spec(cls, spec: ScenarioSpec, seed: int, spec_key: Optional[str] = None) -> "WorkUnit":
        spec_dict = spec.to_dict()
        if spec_key is None:
            spec_key = content_key(spec_dict)
        return cls(spec_dict=spec_dict, seed=int(seed), spec_key=spec_key)


def units_for_spec(spec: ScenarioSpec) -> List[WorkUnit]:
    """One work unit per seed of ``spec`` (the spec dict/key built once)."""
    spec_dict = spec.to_dict()
    spec_key = content_key(spec_dict)
    return [WorkUnit(spec_dict=spec_dict, seed=int(s), spec_key=spec_key) for s in spec.seeds]


def batch_key(units: Sequence[WorkUnit]) -> str:
    """Content hash identifying a whole batch (the journal's file name).

    Derived from the ordered unit keys, so the same spec/grid/seed list maps
    to the same journal across runs while any change to the workload maps to
    a fresh one.
    """
    return content_key({"units": [unit.unit_key for unit in units]})


# ---------------------------------------------------------------------------
# chunks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Chunk:
    """A dispatchable group of same-spec units.

    ``start`` is the index of the chunk's first unit in the batch's unit
    list — results are re-assembled into batch order from it, whatever order
    chunks complete in.
    """

    index: int
    start: int
    spec_key: str
    spec_dict: Mapping[str, Any]
    seeds: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.seeds)

    # -- the JSON wire form (what the local-cluster workers speak) ----------

    def to_wire(self) -> str:
        """Encode for a JSON-only transport (queues, sockets, job files)."""
        return json.dumps(
            {
                "index": self.index,
                "start": self.start,
                "spec_key": self.spec_key,
                "spec": dict(self.spec_dict),
                "seeds": list(self.seeds),
            }
        )

    @classmethod
    def from_wire(cls, text: str) -> "Chunk":
        data = json.loads(text)
        return cls(
            index=int(data["index"]),
            start=int(data["start"]),
            spec_key=str(data["spec_key"]),
            spec_dict=data["spec"],
            seeds=tuple(int(s) for s in data["seeds"]),
        )


def auto_chunk_size(n_units: int, workers: int) -> int:
    """The default chunk size for ``n_units`` spread over ``workers``.

    Aims for a few chunks per worker (so stragglers re-balance) but caps the
    chunk size so journal/progress granularity stays useful; many-tiny-unit
    sweeps therefore get large chunks while small batches degrade to one unit
    per chunk.
    """
    if n_units <= 0:
        return 1
    target = math.ceil(n_units / max(1, workers * _CHUNKS_PER_WORKER))
    return max(1, min(_MAX_AUTO_CHUNK, target))


def build_chunks(units: Sequence[WorkUnit], chunk_size: int) -> List[Chunk]:
    """Split ``units`` into chunks of at most ``chunk_size``, in batch order.

    Chunks never span two specs: a contiguous same-spec run of units is
    chunked on its own, so every chunk carries exactly one spec dict.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks: List[Chunk] = []
    i = 0
    while i < len(units):
        j = i
        spec_key = units[i].spec_key
        while j < len(units) and j - i < chunk_size and units[j].spec_key == spec_key:
            j += 1
        chunks.append(
            Chunk(
                index=len(chunks),
                start=i,
                spec_key=spec_key,
                spec_dict=units[i].spec_dict,
                seeds=tuple(unit.seed for unit in units[i:j]),
            )
        )
        i = j
    return chunks


# ---------------------------------------------------------------------------
# execution (runs inside workers — every backend funnels through here)
# ---------------------------------------------------------------------------

#: Per-process cache of parsed specs, keyed by spec content hash.  Chunked
#: dispatch re-sends the same spec dict with every chunk; without the cache a
#: worker re-parses the identical spec once per *unit* (the dominant fixed
#: cost of many-tiny-unit sweeps next to IPC).  FIFO-bounded so pathological
#: grids cannot grow it without limit; the lock keeps eviction safe under the
#: thread backend, where worker threads share this process's cache.
_SPEC_CACHE: Dict[str, ScenarioSpec] = {}
_SPEC_CACHE_MAX = 64
_SPEC_CACHE_LOCK = threading.Lock()


def _cached_spec(spec_key: str, spec_dict: Mapping[str, Any]) -> ScenarioSpec:
    spec = _SPEC_CACHE.get(spec_key)
    if spec is None:
        spec = ScenarioSpec.from_dict(spec_dict)
        with _SPEC_CACHE_LOCK:
            while len(_SPEC_CACHE) >= _SPEC_CACHE_MAX:
                _SPEC_CACHE.pop(next(iter(_SPEC_CACHE)))
            _SPEC_CACHE[spec_key] = spec
    return spec


def execute_unit(spec_dict: Mapping[str, Any], seed: int, spec_key: Optional[str] = None) -> Row:
    """Execute one work unit and return its metric row.

    ``spec_key`` enables the per-process spec cache; without it the spec is
    hashed first (still cheaper than a parse for repeated specs).
    """
    from repro.scenarios.executor import run_scenario_seed

    if spec_key is None:
        spec_key = content_key(spec_dict)
    return run_scenario_seed(_cached_spec(spec_key, spec_dict), seed)


def execute_chunk(payload: Tuple[str, Mapping[str, Any], Tuple[int, ...]]) -> List[Row]:
    """Top-level (hence picklable) chunk entry point for pooled workers."""
    from repro.scenarios.executor import run_scenario_seed

    spec_key, spec_dict, seeds = payload
    spec = _cached_spec(spec_key, spec_dict)
    return [run_scenario_seed(spec, seed) for seed in seeds]


def execute_chunk_wire(text: str) -> str:
    """JSON-in / JSON-out chunk execution (the local-cluster worker loop body).

    This is deliberately the *only* code path of the cluster contract: a
    remote runner that can deliver the request string and return the response
    string is a complete backend.
    """
    chunk = Chunk.from_wire(text)
    rows = execute_chunk((chunk.spec_key, chunk.spec_dict, chunk.seeds))
    return json.dumps({"index": chunk.index, "rows": rows})


def spec_cache_info() -> Tuple[int, int]:
    """``(entries, capacity)`` of this process's spec cache (for tests/metrics)."""
    return len(_SPEC_CACHE), _SPEC_CACHE_MAX
