"""Execution policies: *how* a batch of work units runs.

An :class:`ExecutionPolicy` bundles every execution knob the pipeline
exposes — backend name, chunk size, worker count, checkpoint/resume and
progress reporting — separated from *what* runs (the specs).  Policies come
from three places, in increasing precedence:

1. built-in defaults (serial, auto chunking),
2. a config file's ``"execution"`` block (see ``configs/README.md``),
3. CLI flags (``--backend``, ``--chunk-size``, ``--workers``, ``--resume``,
   ``--progress``).

:func:`use_policy` installs a policy as the *ambient* policy for a code
region.  ``run_scenario(..., parallel=True)`` deep inside an experiment
function then picks it up without every call site growing new parameters —
that is how ``repro experiments --backend local-cluster`` reaches the
scenario runs of the E1–E13 implementations unchanged.

:class:`repro.verify.policy.VerificationPolicy` is the verification sibling
of this module: same defaults < config block < CLI flags precedence, same
ambient-context installation (``use_verification``), applied to the in-run
equivalence gates instead of the execution backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ExecutionPolicy",
    "current_policy",
    "default_workers",
    "policy_from_mapping",
    "resolve_policy",
    "use_policy",
]

#: Keys an ``"execution"`` config block may contain.
_POLICY_KEYS = {
    "backend",
    "chunk_size",
    "max_workers",
    "resume",
    "progress",
    "transport",
    "hosts",
}


@dataclass(frozen=True)
class ExecutionPolicy:
    """How to execute a batch of work units.

    Parameters
    ----------
    backend:
        Registered backend name (``serial`` / ``process`` / ``thread`` /
        ``local-cluster`` / plugins).
    chunk_size:
        Units per dispatch chunk; ``None`` auto-sizes from the batch and
        worker count (see :func:`~repro.exec.units.auto_chunk_size`).
    max_workers:
        Worker count for pooled backends; ``None`` uses the CPU count.  When
        left at ``None`` on a single-CPU host, pooled CPU-bound backends
        degrade to ``serial`` (pools cannot beat the serial loop there).
    resume:
        Reuse a matching sweep journal's completed units instead of
        recomputing them.
    progress:
        Report rows/sec and ETA to stderr while the batch runs.
    journal_dir:
        Directory for sweep journals; ``None`` disables checkpointing.
    transport:
        Remote transport name for the ``remote`` backend (``loopback`` /
        ``ssh``); ``None`` uses the backend default (``loopback``).
    hosts:
        Fleet member list for the ``remote`` backend: ``host`` or
        ``host=slots`` entries (``slots`` = that worker's in-flight limit).
    """

    backend: str = "serial"
    chunk_size: Optional[int] = None
    max_workers: Optional[int] = None
    resume: bool = False
    progress: bool = False
    journal_dir: Optional[str] = None
    transport: Optional[str] = None
    hosts: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(f"backend must be a non-empty string, got {self.backend!r}")
        for field_name in ("chunk_size", "max_workers"):
            value = getattr(self, field_name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{field_name} must be a positive integer or null, got {value!r}"
                )
        if self.transport is not None and (
            not isinstance(self.transport, str) or not self.transport
        ):
            raise ConfigurationError(
                f"transport must be a non-empty string or None, got {self.transport!r}"
            )
        if self.hosts is not None:
            hosts = tuple(str(h) for h in self.hosts)
            if not hosts:
                raise ConfigurationError("hosts must be a non-empty list or None")
            object.__setattr__(self, "hosts", hosts)

    def replace(self, **changes: Any) -> "ExecutionPolicy":
        """Field-level copy-and-update."""
        return replace(self, **changes)

    def backend_options(self) -> Dict[str, Any]:
        """The transport-level options this policy pins (for ``make_backend``).

        Only user-facing transport knobs belong here — ``make_backend`` fails
        loudly when a backend cannot consume them, so ``--transport ssh``
        with ``--backend process`` is an error rather than a silent no-op.
        """
        options: Dict[str, Any] = {}
        if self.transport is not None:
            options["transport"] = self.transport
        if self.hosts is not None:
            options["hosts"] = list(self.hosts)
        return options


def policy_from_mapping(
    data: Mapping[str, Any], *, where: str = "execution block"
) -> ExecutionPolicy:
    """Build a policy from a config file's ``"execution"`` block.

    Unknown keys and unregistered backend names fail loudly (with near-miss
    suggestions), matching the rest of the config validation story.
    """
    from repro.scenarios.registry import suggestion_hint
    from repro.exec.backends import BACKENDS

    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{where} must be a JSON object, got {data!r}")
    unknown = set(data) - _POLICY_KEYS
    if unknown:
        raise ConfigurationError(
            f"{where} has unknown keys {sorted(unknown)} (accepted: {sorted(_POLICY_KEYS)})"
        )
    backend = data.get("backend", "serial")
    if backend not in BACKENDS:
        hint = suggestion_hint(backend, BACKENDS.available())
        raise ConfigurationError(
            f"{where}: unknown execution backend {backend!r}{hint}; "
            f"available: {list(BACKENDS.available())}"
        )
    for flag in ("resume", "progress"):
        if flag in data and not isinstance(data[flag], bool):
            raise ConfigurationError(f"{where}: {flag!r} must be a boolean, got {data[flag]!r}")
    transport = data.get("transport")
    if transport is not None:
        from repro.exec.remote.transport import TRANSPORTS

        if transport not in TRANSPORTS:
            hint = suggestion_hint(transport, TRANSPORTS.available())
            raise ConfigurationError(
                f"{where}: unknown remote transport {transport!r}{hint}; "
                f"available: {list(TRANSPORTS.available())}"
            )
    hosts = data.get("hosts")
    if hosts is not None:
        if not isinstance(hosts, (list, tuple)) or not all(
            isinstance(h, str) and h for h in hosts
        ):
            raise ConfigurationError(
                f"{where}: 'hosts' must be a list of 'host' or 'host=slots' strings, "
                f"got {hosts!r}"
            )
        from repro.exec.remote.transport import parse_hosts

        parse_hosts(hosts)  # validates the host=slots syntax eagerly
    return ExecutionPolicy(
        backend=str(backend),
        chunk_size=data.get("chunk_size"),
        max_workers=data.get("max_workers"),
        resume=bool(data.get("resume", False)),
        progress=bool(data.get("progress", False)),
        transport=transport,
        hosts=tuple(hosts) if hosts else None,
    )


def default_workers(n_units: int) -> int:
    """Default worker count: one per CPU, capped by the batch size."""
    return max(1, min(n_units, os.cpu_count() or 1))


# ---------------------------------------------------------------------------
# the ambient policy
# ---------------------------------------------------------------------------

_CURRENT: ContextVar[Optional[ExecutionPolicy]] = ContextVar("repro_exec_policy", default=None)


def current_policy() -> Optional[ExecutionPolicy]:
    """The ambient policy installed by :func:`use_policy` (``None`` outside)."""
    return _CURRENT.get()


@contextmanager
def use_policy(policy: ExecutionPolicy) -> Iterator[ExecutionPolicy]:
    """Install ``policy`` as the ambient policy for the ``with`` region."""
    token = _CURRENT.set(policy)
    try:
        yield policy
    finally:
        _CURRENT.reset(token)


def resolve_policy(
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    execution: Optional[Any] = None,
) -> ExecutionPolicy:
    """The policy a ``run_scenario``/``sweep`` call actually runs under.

    Precedence: an explicit ``execution`` argument (policy object, backend
    name, or config-block mapping) wins; otherwise the ambient policy applies
    (gated to ``serial`` when ``parallel=False`` — the ``--serial`` escape
    hatch must win over an ambient parallel backend); otherwise the legacy
    flags map exactly onto PR-1 behaviour (``parallel=True`` → ``process``).
    """
    if execution is not None:
        if isinstance(execution, ExecutionPolicy):
            policy = execution
        elif isinstance(execution, str):
            policy = ExecutionPolicy(backend=execution)
        elif isinstance(execution, Mapping):
            policy = policy_from_mapping(execution)
        else:
            raise ConfigurationError(
                f"execution must be an ExecutionPolicy, backend name or mapping, "
                f"got {execution!r}"
            )
        if max_workers is not None and policy.max_workers is None:
            policy = policy.replace(max_workers=max_workers)
        return policy
    ambient = current_policy()
    if ambient is not None:
        if parallel:
            return ambient
        # The serial gate also drops transport options: they belong to the
        # remote backend the gate just overrode, and make_backend rejects
        # them on any other backend by design.
        return ambient.replace(backend="serial", transport=None, hosts=None)
    return ExecutionPolicy(backend="process" if parallel else "serial", max_workers=max_workers)
