"""Progress reporting for long batch runs: rows/sec and ETA on stderr.

Kept deliberately dependency-free (no tqdm): one carriage-return line on a
terminal, plain appended lines when stderr is a pipe (CI logs), silence when
disabled.  The reporter measures *units completed per second of wall time*,
which is the number the executor-scaling benchmark optimises, so the live
display and the committed benchmark speak the same unit.

When the runner hands over its :class:`~repro.exec.stats.RateEstimator`
(``rate_source``), the displayed rows/sec and ETA come from the estimator's
smoothed per-unit cost instead of the raw wall-clock average — the same
number the remote dispatcher uses to size chunks, so the live display and
the adaptive dispatcher agree — and the line gains a ``~X ms/unit`` figure.
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Optional, TextIO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats imports nothing here)
    from repro.exec.stats import RateEstimator

__all__ = ["ProgressReporter"]

#: Minimum seconds between repaints (keeps tiny-unit sweeps from spamming).
_MIN_INTERVAL = 0.2


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Throttled ``done/total | rows/sec | ETA`` reporting.

    Parameters
    ----------
    total:
        Number of work units in the batch.
    label:
        Short prefix (usually the scenario/sweep label).
    enabled:
        When ``False`` every method is a no-op (the default execution path
        stays byte-for-byte silent).
    already_done:
        Units restored from a resume journal — counted in the display but
        excluded from the rows/sec rate (they cost no wall time this run).
    stream:
        Defaults to ``sys.stderr``; parameterised for tests.
    rate_source:
        Optional :class:`~repro.exec.stats.RateEstimator` shared with the
        runner/dispatcher; when it has observations its smoothed rate wins
        over the wall-clock average.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "",
        enabled: bool = False,
        already_done: int = 0,
        stream: Optional[TextIO] = None,
        rate_source: Optional["RateEstimator"] = None,
    ) -> None:
        self.total = int(total)
        self.label = label
        self.enabled = bool(enabled)
        self._restored = int(already_done)
        self._done = int(already_done)
        self._stream = stream if stream is not None else sys.stderr
        self._rate_source = rate_source
        self._started = time.perf_counter()
        self._last_paint = 0.0
        self._isatty = bool(getattr(self._stream, "isatty", lambda: False)())
        if self.enabled and self._restored:
            self._paint(force=True)

    @property
    def done(self) -> int:
        """Units completed so far (including restored ones)."""
        return self._done

    def update(self, completed_units: int) -> None:
        """Record ``completed_units`` more finished units and maybe repaint."""
        self._done += int(completed_units)
        if self.enabled:
            self._paint()

    def finish(self) -> None:
        """Final repaint plus newline (terminal mode leaves the line behind)."""
        if not self.enabled:
            return
        self._paint(force=True)
        if self._isatty:
            self._stream.write("\n")
            self._stream.flush()

    # -- rendering ----------------------------------------------------------

    def _rate(self) -> float:
        if self._rate_source is not None:
            smoothed = self._rate_source.rate
            if smoothed is not None and smoothed > 0:
                return smoothed
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return (self._done - self._restored) / elapsed

    def _per_unit_ms(self) -> Optional[float]:
        if self._rate_source is None:
            return None
        cost = self._rate_source.seconds_per_unit
        return cost * 1000.0 if cost is not None else None

    def _paint(self, *, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_paint < _MIN_INTERVAL and self._done < self.total:
            return
        self._last_paint = now
        rate = self._rate()
        per_unit_ms = self._per_unit_ms()
        parts = [
            f"{self.label}: " if self.label else "",
            f"{self._done}/{self.total} units",
            f" | {rate:.1f} rows/s" if rate > 0 else "",
            f" | ~{per_unit_ms:.1f} ms/unit" if per_unit_ms is not None else "",
        ]
        if self._restored and self._done == self._restored:
            parts.append(f" | {self._restored} restored from journal")
        if 0 < rate and self._done < self.total:
            parts.append(f" | ETA {_format_eta((self.total - self._done) / rate)}")
        line = "".join(parts)
        if self._isatty:
            self._stream.write(f"\r{line:<79}")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
