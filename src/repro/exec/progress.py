"""Progress reporting for long batch runs: rows/sec and ETA on stderr.

Kept deliberately dependency-free (no tqdm): one carriage-return line on a
terminal, plain appended lines when stderr is a pipe (CI logs), silence when
disabled.  The reporter measures *units completed per second of wall time*,
which is the number the executor-scaling benchmark optimises, so the live
display and the committed benchmark speak the same unit.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]

#: Minimum seconds between repaints (keeps tiny-unit sweeps from spamming).
_MIN_INTERVAL = 0.2


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Throttled ``done/total | rows/sec | ETA`` reporting.

    Parameters
    ----------
    total:
        Number of work units in the batch.
    label:
        Short prefix (usually the scenario/sweep label).
    enabled:
        When ``False`` every method is a no-op (the default execution path
        stays byte-for-byte silent).
    already_done:
        Units restored from a resume journal — counted in the display but
        excluded from the rows/sec rate (they cost no wall time this run).
    stream:
        Defaults to ``sys.stderr``; parameterised for tests.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "",
        enabled: bool = False,
        already_done: int = 0,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = int(total)
        self.label = label
        self.enabled = bool(enabled)
        self._restored = int(already_done)
        self._done = int(already_done)
        self._stream = stream if stream is not None else sys.stderr
        self._started = time.perf_counter()
        self._last_paint = 0.0
        self._isatty = bool(getattr(self._stream, "isatty", lambda: False)())
        if self.enabled and self._restored:
            self._paint(force=True)

    @property
    def done(self) -> int:
        """Units completed so far (including restored ones)."""
        return self._done

    def update(self, completed_units: int) -> None:
        """Record ``completed_units`` more finished units and maybe repaint."""
        self._done += int(completed_units)
        if self.enabled:
            self._paint()

    def finish(self) -> None:
        """Final repaint plus newline (terminal mode leaves the line behind)."""
        if not self.enabled:
            return
        self._paint(force=True)
        if self._isatty:
            self._stream.write("\n")
            self._stream.flush()

    # -- rendering ----------------------------------------------------------

    def _rate(self) -> float:
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return (self._done - self._restored) / elapsed

    def _paint(self, *, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_paint < _MIN_INTERVAL and self._done < self.total:
            return
        self._last_paint = now
        rate = self._rate()
        parts = [
            f"{self.label}: " if self.label else "",
            f"{self._done}/{self.total} units",
            f" | {rate:.1f} rows/s" if rate > 0 else "",
        ]
        if self._restored and self._done == self._restored:
            parts.append(f" | {self._restored} restored from journal")
        if 0 < rate and self._done < self.total:
            parts.append(f" | ETA {_format_eta((self.total - self._done) / rate)}")
        line = "".join(parts)
        if self._isatty:
            self._stream.write(f"\r{line:<79}")
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
