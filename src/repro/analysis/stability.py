"""Output-stability statistics over execution traces.

The framework's selling point over "restart" style schemes is that outputs do
not churn when the graph does not: Theorem 1.1(2) pins the output of every
node whose α-neighbourhood is static.  The helpers here quantify churn so the
stability experiments (E5, E9, E13c) can compare algorithms numerically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.types import Interval, NodeId
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "output_change_counts",
    "changes_per_round",
    "region_change_count",
    "stability_summary",
]


def output_change_counts(
    trace: ExecutionTrace, *, start_round: int = 2, end_round: Optional[int] = None
) -> Dict[NodeId, int]:
    """Per-node number of rounds (in the given range) where the output changed."""
    end = trace.num_rounds if end_round is None else min(end_round, trace.num_rounds)
    counts: Dict[NodeId, int] = {}
    for r in range(max(2, start_round), end + 1):
        current = trace.outputs(r)
        previous = trace.outputs(r - 1)
        for v, value in current.items():
            if v in previous and previous[v] != value:
                counts[v] = counts.get(v, 0) + 1
    return counts


def changes_per_round(trace: ExecutionTrace) -> List[int]:
    """Number of nodes whose output changed, per round (round 1 counts first outputs)."""
    return [record.metrics.outputs_changed for record in trace]


def region_change_count(
    trace: ExecutionTrace, nodes: Iterable[NodeId], interval: Interval
) -> int:
    """Total output changes of the given nodes during ``interval`` (excluding its first round)."""
    total = 0
    for v in nodes:
        total += trace.output_changes_in(v, interval)
    return total


def stability_summary(
    trace: ExecutionTrace, *, warmup: int = 0
) -> Dict[str, float]:
    """Aggregate churn statistics after a warm-up prefix.

    Returns the mean and maximum number of per-round output changes and the
    fraction of (node, round) pairs whose output changed — the headline
    numbers of the baseline-comparison experiment E9.
    """
    start = max(2, warmup + 1)
    per_round: List[int] = []
    node_rounds = 0
    for r in range(start, trace.num_rounds + 1):
        current = trace.outputs(r)
        previous = trace.outputs(r - 1)
        # The trace's stored changed-node set is exactly {v ∈ current : v ∉
        # previous or differs}; filtering to nodes present in the previous
        # round reproduces the historical "awake both rounds and changed"
        # count in O(#changes) instead of O(n) per round.
        changed = sum(1 for v in trace.changed_nodes(r) if v in previous)
        per_round.append(changed)
        node_rounds += len(current)
    if not per_round:
        return {"mean_changes": 0.0, "max_changes": 0.0, "change_rate": 0.0, "rounds": 0.0}
    total = float(sum(per_round))
    return {
        "mean_changes": total / len(per_round),
        "max_changes": float(max(per_round)),
        "change_rate": total / node_rounds if node_rounds else 0.0,
        "rounds": float(len(per_round)),
    }
