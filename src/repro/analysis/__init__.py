"""Analysis and experiment harness.

* :mod:`repro.analysis.conflicts` — colour-conflict and MIS-violation counting.
* :mod:`repro.analysis.stability` — output-change statistics over traces.
* :mod:`repro.analysis.convergence` — rounds-to-completion measurements.
* :mod:`repro.analysis.quality` — solution-quality yardsticks (colour counts,
  MIS size, matching size) against sequential greedy references.
* :mod:`repro.analysis.sweep` — replicated parameter sweeps with aggregation.
* :mod:`repro.analysis.report` — plain-text tables for experiment rows.
* :mod:`repro.analysis.experiments` — the E1–E13 experiment implementations
  indexed in DESIGN.md / EXPERIMENTS.md (each returns structured rows; the
  ``benchmarks/`` tree wraps them in pytest-benchmark targets).
"""

from repro.analysis.conflicts import (
    count_monochromatic_edges,
    count_mis_violations,
    conflict_resolution_times,
)
from repro.analysis.stability import (
    output_change_counts,
    changes_per_round,
    region_change_count,
    stability_summary,
)
from repro.analysis.convergence import (
    first_round_all_decided,
    rounds_to_completion,
    completion_round_for_nodes,
)
from repro.analysis.quality import coloring_quality, mis_quality, matching_quality
from repro.analysis.sweep import Replication, aggregate_rows, replicate
from repro.analysis.report import format_table, rows_to_csv

__all__ = [
    "count_monochromatic_edges",
    "count_mis_violations",
    "conflict_resolution_times",
    "output_change_counts",
    "changes_per_round",
    "region_change_count",
    "stability_summary",
    "first_round_all_decided",
    "rounds_to_completion",
    "completion_round_for_nodes",
    "coloring_quality",
    "mis_quality",
    "matching_quality",
    "Replication",
    "replicate",
    "aggregate_rows",
    "format_table",
    "rows_to_csv",
    "experiments",
]


def __getattr__(name):
    # Imported lazily (PEP 562): the experiments build on repro.scenarios,
    # which itself imports this package — eager import would be a cycle.
    if name == "experiments":
        import importlib

        return importlib.import_module("repro.analysis.experiments")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
