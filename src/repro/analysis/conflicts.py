"""Conflict counting and conflict-resolution timing.

The colouring guarantee of Corollary 1.2 is often summarised as: "any conflict
between two nodes caused by a newly inserted edge is resolved within
T = O(log n) rounds".  :func:`conflict_resolution_times` measures exactly
that, given the attack log of a
:class:`~repro.dynamics.adversaries.targeted_coloring.TargetedColoringAdversary`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import Assignment, Edge
from repro.dynamics.topology import Topology
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "count_monochromatic_edges",
    "count_mis_violations",
    "conflict_resolution_times",
]


def count_monochromatic_edges(graph: Topology, assignment: Assignment) -> int:
    """Number of edges whose two endpoints carry the same (non-⊥) colour."""
    count = 0
    for u, v in graph.edges:
        cu = assignment.get(u)
        cv = assignment.get(v)
        if cu is not None and cu == cv:
            count += 1
    return count


def count_mis_violations(graph: Topology, assignment: Assignment) -> Tuple[int, int]:
    """Return ``(independence violations, domination violations)`` on ``graph``.

    Independence violations are edges with both endpoints in the MIS;
    domination violations are non-MIS, non-⊥ nodes without an MIS neighbour.
    """
    independence = 0
    for u, v in graph.edges:
        if assignment.get(u) == 1 and assignment.get(v) == 1:
            independence += 1
    domination = 0
    for v in graph.nodes:
        if assignment.get(v) == 0 and not any(
            assignment.get(u) == 1 for u in graph.neighbors(v)
        ):
            domination += 1
    return independence, domination


def conflict_resolution_times(
    trace: ExecutionTrace,
    attacks: Sequence[Tuple[int, Edge]],
    *,
    max_wait: Optional[int] = None,
) -> List[Dict[str, float]]:
    """For each attack ``(round, edge)``, how long the endpoints shared a colour.

    For an edge ``{u, v}`` inserted at round ``r`` the *conflict duration* is
    the number of consecutive rounds ``>= r`` in which both endpoints output
    the same non-⊥ colour.  A duration of 0 means the endpoints already
    differed when the edge appeared (the adversary attacked based on a stale
    output, or the combiner had already moved on).

    Attacks whose observation window is truncated by the end of the trace are
    flagged ``censored`` so aggregation can exclude them.
    """
    results: List[Dict[str, float]] = []
    horizon = trace.num_rounds
    for attack_round, (u, v) in attacks:
        if attack_round > horizon:
            continue
        limit = horizon if max_wait is None else min(horizon, attack_round + max_wait)
        duration = 0
        resolved = False
        for r in range(attack_round, limit + 1):
            cu = trace.output_of(u, r)
            cv = trace.output_of(v, r)
            if cu is not None and cu == cv:
                duration += 1
            else:
                resolved = True
                break
        results.append(
            {
                "attack_round": float(attack_round),
                "u": float(u),
                "v": float(v),
                "duration": float(duration),
                "censored": float(0.0 if resolved else 1.0),
            }
        )
    return results
