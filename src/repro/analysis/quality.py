"""Solution-quality yardsticks.

The paper's guarantees are about feasibility and stability, not optimality,
but a reproduction should still show that the produced solutions are sensible:
the number of colours stays near the (degree+1) bound of a sequential greedy,
the MIS is comparable in size to a greedy MIS, and the matching covers a
similar number of nodes.  These helpers compute those comparisons for the
experiment reports.
"""

from __future__ import annotations

from typing import Dict

from repro.types import Assignment
from repro.dynamics.topology import Topology
from repro.problems.coloring import num_colors_used
from repro.problems.matching import UNMATCHED, matched_pairs
from repro.algorithms.coloring.greedy import greedy_coloring
from repro.algorithms.mis.greedy import greedy_mis

__all__ = ["coloring_quality", "mis_quality", "matching_quality"]


def coloring_quality(graph: Topology, assignment: Assignment) -> Dict[str, float]:
    """Colour-count statistics compared against a sequential greedy colouring."""
    greedy = greedy_coloring(graph)
    max_degree = max((graph.degree(v) for v in graph.nodes), default=0)
    colored = [value for value in assignment.values() if value is not None]
    return {
        "colors_used": float(num_colors_used(assignment)),
        "greedy_colors": float(num_colors_used(greedy)),
        "max_color": float(max(colored)) if colored else 0.0,
        "max_degree_plus_one": float(max_degree + 1),
        "uncolored": float(sum(1 for v in graph.nodes if assignment.get(v) is None)),
    }


def mis_quality(graph: Topology, assignment: Assignment) -> Dict[str, float]:
    """MIS-size statistics compared against a sequential greedy MIS."""
    members = sum(1 for v in graph.nodes if assignment.get(v) == 1)
    greedy = greedy_mis(graph)
    return {
        "mis_size": float(members),
        "greedy_size": float(len(greedy)),
        "undecided": float(sum(1 for v in graph.nodes if assignment.get(v) is None)),
        "nodes": float(graph.num_nodes),
    }


def matching_quality(graph: Topology, assignment: Assignment) -> Dict[str, float]:
    """Matching-size statistics (matched pairs, unmatched and undecided nodes)."""
    pairs = matched_pairs(assignment)
    unmatched = sum(1 for v in graph.nodes if assignment.get(v) == UNMATCHED)
    undecided = sum(1 for v in graph.nodes if assignment.get(v) is None)
    return {
        "matched_pairs": float(len(pairs)),
        "matched_nodes": float(2 * len(pairs)),
        "unmatched": float(unmatched),
        "undecided": float(undecided),
        "nodes": float(graph.num_nodes),
    }
