"""Plain-text rendering of experiment rows.

The benchmark harness prints, for every experiment, the rows it regenerated —
the moral equivalent of the paper's tables/figures (the paper itself has none;
see DESIGN.md).  Keeping the renderer tiny and dependency-free means the same
tables show up in CI logs, EXPERIMENTS.md and interactive use.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

__all__ = ["format_table", "rows_to_csv"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value - round(value)) < 1e-9 and abs(value) < 1e12:
            return str(int(round(value)))
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str = "",
    columns: Sequence[str] | None = None,
    precision: int = 3,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as empty cells.
    title:
        Optional heading printed above the table.
    columns:
        Column order (defaults to the keys of the first row, in order).
    precision:
        Decimal places for float values.
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is not None:
        keys = list(columns)
    else:
        # Union of keys across all rows (first-seen order), so tables that mix
        # row schemas (e.g. the ablation experiment) do not drop columns.
        keys = []
        for row in rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
    rendered = [
        [_format_value(row.get(key, ""), precision) for key in keys] for row in rows
    ]
    widths = [
        max(len(key), *(len(line[i]) for line in rendered)) for i, key in enumerate(keys)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
    out.write(header + "\n")
    out.write("  ".join("-" * widths[i] for i in range(len(keys))) + "\n")
    for line in rendered:
        out.write("  ".join(line[i].ljust(widths[i]) for i in range(len(keys))) + "\n")
    return out.getvalue()


def rows_to_csv(rows: Sequence[Mapping[str, object]], *, columns: Sequence[str] | None = None) -> str:
    """Render rows as a minimal CSV string (for saving experiment outputs)."""
    if not rows:
        return ""
    keys = list(columns) if columns is not None else list(rows[0].keys())
    lines = [",".join(keys)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(key, ""), 6) for key in keys))
    return "\n".join(lines) + "\n"
