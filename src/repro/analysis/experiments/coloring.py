"""Colouring experiments E1–E4 (Lemmas 4.3/4.4/6.1/6.2, Corollary 1.2).

Each function returns a list of row dicts; see DESIGN.md §3 for the mapping
from experiment id to paper claim, and EXPERIMENTS.md for recorded outcomes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.utils.rng import RngFactory
from repro.dynamics.adversaries.targeted_coloring import TargetedColoringAdversary
from repro.problems.coloring import coloring_problem_pair
from repro.problems.dynamic_problem import TDynamicSpec
from repro.runtime.simulator import Simulator, run_simulation
from repro.core.windows import default_window
from repro.algorithms.coloring.basic_static import BasicColoring
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.coloring.dynamic_coloring import DynamicColoring
from repro.analysis.conflicts import conflict_resolution_times
from repro.analysis.convergence import rounds_to_completion
from repro.analysis.quality import coloring_quality
from repro.analysis.sweep import aggregate_rows, replicate
from repro.analysis.experiments.common import base_topology, churn_adversary, log2, static_adversary

__all__ = [
    "experiment_e01_coloring_convergence",
    "experiment_e02_palette_lemma",
    "experiment_e03_conflict_resolution",
    "experiment_e04_tdynamic_coloring",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E1 — rounds-to-completion of the randomized colouring grows like log n
# ---------------------------------------------------------------------------

def experiment_e01_coloring_convergence(
    *,
    sizes: Sequence[int] = (32, 64, 128, 256, 512),
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    max_round_factor: int = 20,
) -> List[Row]:
    """E1: completion rounds of BasicColoring (static) and DColor (under churn) vs ``n``.

    Paper claim (Lemmas 4.4 / 6.2): all nodes are coloured after ``O(log n)``
    rounds w.h.p.; the measured completion round divided by ``log₂ n`` should
    therefore stay bounded as ``n`` grows.
    """
    rows: List[Row] = []
    for n in sizes:
        max_rounds = int(max_round_factor * log2(n)) + 10

        def run_static(seed: int, n: int = n, max_rounds: int = max_rounds) -> Row:
            base = base_topology(n, seed)
            trace = run_simulation(
                n=n,
                algorithm=BasicColoring(),
                adversary=static_adversary(base),
                rounds=max_rounds,
                seed=seed,
                stop_when=lambda t: rounds_to_completion(t) is not None,
            )
            done = rounds_to_completion(trace)
            return {"rounds": float(done) if done is not None else float("nan")}

        def run_dynamic(seed: int, n: int = n, max_rounds: int = max_rounds) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            trace = run_simulation(
                n=n,
                algorithm=DColor(),
                adversary=adversary,
                rounds=max_rounds,
                seed=seed,
                stop_when=lambda t: rounds_to_completion(t) is not None,
            )
            done = rounds_to_completion(trace)
            return {"rounds": float(done) if done is not None else float("nan")}

        static_rep = replicate(run_static, seeds, label=f"static-n{n}")
        dynamic_rep = replicate(run_dynamic, seeds, label=f"dynamic-n{n}")
        rows.append(
            aggregate_rows(
                static_rep,
                mean_keys=("rounds",),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n), "algorithm": 0.0},
            )
            | {"setting": "basic-static", "rounds_over_log2n": static_rep.mean("rounds") / log2(n)}
        )
        rows.append(
            aggregate_rows(
                dynamic_rep,
                mean_keys=("rounds",),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n), "algorithm": 1.0},
            )
            | {"setting": "dcolor-churn", "rounds_over_log2n": dynamic_rep.mean("rounds") / log2(n)}
        )
    return rows


# ---------------------------------------------------------------------------
# E2 — Lemma 4.3 / 6.1: colour-or-shrink in every round
# ---------------------------------------------------------------------------

def experiment_e02_palette_lemma(
    *,
    n: int = 192,
    seeds: Sequence[int] = (0, 1, 2, 3),
    rounds: int = 40,
    flip_prob: float = 0.01,
) -> List[Row]:
    """E2: per-round, an uncoloured node either gets coloured or its palette shrinks by ≥ 1/4.

    Paper claim (Lemma 4.3 / 6.1): conditioned on the palette *not* shrinking
    by a factor ≥ 1/4 this round, the node is coloured with probability at
    least 1/64.  The experiment partitions uncoloured node-rounds accordingly
    and reports the empirical colouring rate of the "no big shrink" class —
    which must be ≥ 1/64 ≈ 0.0156 (in practice it is far larger).
    """
    rows: List[Row] = []
    for setting, dynamic in (("basic-static", False), ("dcolor-churn", True)):
        shrink_events = 0
        colored_given_no_shrink = 0
        no_shrink_events = 0
        for seed in seeds:
            base = base_topology(n, seed)
            algorithm = DColor() if dynamic else BasicColoring()
            adversary = (
                churn_adversary(base, seed, flip_prob=flip_prob)
                if dynamic
                else static_adversary(base)
            )
            sim = Simulator(n=n, algorithm=algorithm, adversary=adversary, seed=seed)
            previous_palette: Dict[int, frozenset] = {}
            previous_uncolored: set[int] = set()
            for _ in range(rounds):
                sim.run(1)
                outputs = sim.trace.outputs(sim.trace.num_rounds)
                for v in previous_uncolored:
                    before = previous_palette.get(v, frozenset())
                    after = algorithm.palette_of(v)
                    if not before:
                        continue
                    shrunk = len(after) <= 0.75 * len(before)
                    if shrunk:
                        shrink_events += 1
                    else:
                        no_shrink_events += 1
                        if outputs.get(v) is not None:
                            colored_given_no_shrink += 1
                previous_uncolored = {
                    v for v in sim.trace.topology(sim.trace.num_rounds).nodes
                    if outputs.get(v) is None
                }
                previous_palette = {v: algorithm.palette_of(v) for v in previous_uncolored}
                if not previous_uncolored:
                    break
        rate = colored_given_no_shrink / no_shrink_events if no_shrink_events else float("nan")
        rows.append(
            {
                "setting": setting,
                "n": float(n),
                "node_rounds_no_shrink": float(no_shrink_events),
                "node_rounds_shrink": float(shrink_events),
                "colored_rate_given_no_shrink": rate,
                "paper_lower_bound": 1.0 / 64.0,
                "satisfies_bound": float(rate >= 1.0 / 64.0) if no_shrink_events else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 — Corollary 1.2: conflicts from inserted edges resolve within O(log n) rounds
# ---------------------------------------------------------------------------

def experiment_e03_conflict_resolution(
    *,
    sizes: Sequence[int] = (64, 128, 256),
    seeds: Sequence[int] = (0, 1, 2),
    attacks_per_round: int = 2,
    rounds_factor: int = 6,
) -> List[Row]:
    """E3: a targeted adversary keeps inserting monochromatic edges; measure conflict duration.

    Paper claim (Corollary 1.2): after two nodes are joined by an edge they can
    only share a colour for ``T = O(log n)`` rounds.  The row reports the mean
    and maximum observed conflict duration and the window ``T1`` used.
    """
    rows: List[Row] = []
    for n in sizes:
        T1 = default_window(n)
        rounds = rounds_factor * T1

        def run(seed: int, n: int = n, T1: int = T1, rounds: int = rounds) -> Row:
            base = base_topology(n, seed)
            adversary = TargetedColoringAdversary(
                base,
                attacks_per_round=attacks_per_round,
                lifetime=2 * T1,
                rng=RngFactory(seed).stream("adversary", "targeted"),
            )
            algorithm = DynamicColoring(T1)
            trace = run_simulation(
                n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seed=seed
            )
            durations = conflict_resolution_times(trace, adversary.attack_log, max_wait=2 * T1)
            resolved = [d for d in durations if not d["censored"]]
            if not resolved:
                return {"attacks": 0.0, "mean_duration": float("nan"), "max_duration": float("nan")}
            values = [d["duration"] for d in resolved]
            return {
                "attacks": float(len(resolved)),
                "mean_duration": sum(values) / len(values),
                "max_duration": max(values),
            }

        rep = replicate(run, seeds, label=f"conflict-n{n}")
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("attacks", "mean_duration"),
                max_keys=("max_duration",),
                extra={"n": float(n), "window_T1": float(T1), "log2_n": log2(n)},
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E4 — sliding-window validity of the combined colouring under a churn sweep
# ---------------------------------------------------------------------------

def experiment_e04_tdynamic_coloring(
    *,
    n: int = 128,
    flip_probs: Sequence[float] = (0.001, 0.01, 0.05, 0.1),
    seeds: Sequence[int] = (0, 1, 2),
    rounds_factor: int = 5,
    window: Optional[int] = None,
) -> List[Row]:
    """E4: fraction of rounds whose output is a valid T-dynamic colouring, per churn rate.

    Paper claim (Theorem 1.1(1) + Corollary 1.2): *every* round's output is a
    T-dynamic solution w.h.p., independent of the churn rate; the colours stay
    within the union-graph degree + 1 bound.
    """
    T1 = window if window is not None else default_window(n)
    rounds = rounds_factor * T1
    pair = coloring_problem_pair()
    spec = TDynamicSpec(pair, T1)
    rows: List[Row] = []
    for flip_prob in flip_probs:

        def run(seed: int, flip_prob: float = flip_prob) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            algorithm = DynamicColoring(T1)
            trace = run_simulation(
                n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seed=seed
            )
            summary = spec.validity_summary(trace)
            quality = coloring_quality(
                trace.graph.union_graph(trace.num_rounds, T1), trace.outputs(trace.num_rounds)
            )
            return {
                "valid_fraction": summary["valid_fraction"],
                "mean_violations": summary["mean_violations"],
                "max_color": quality["max_color"],
                "colors_used": quality["colors_used"],
            }

        rep = replicate(run, seeds, label=f"flip{flip_prob}")
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("valid_fraction", "mean_violations", "max_color", "colors_used"),
                extra={"n": float(n), "flip_prob": float(flip_prob), "window_T1": float(T1)},
            )
        )
    return rows
