"""Colouring experiments E1–E4 (Lemmas 4.3/4.4/6.1/6.2, Corollary 1.2).

Each function returns a list of row dicts; see DESIGN.md §3 for the mapping
from experiment id to paper claim, and EXPERIMENTS.md for recorded outcomes.

All four experiments are expressed through the declarative scenario API
(:mod:`repro.scenarios`): a workload is a :class:`ScenarioSpec` whose
components are registry names, seed replication and grids run through
:func:`run_scenario` / :func:`sweep`, and the rows are aggregated from the
per-seed results.  The rng stream layout matches the pre-scenario harness, so
regenerated numbers are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.scenarios import ScenarioSpec, component, run_scenario, sweep
from repro.analysis.experiments.common import DEFAULT_FAMILY, log2

__all__ = [
    "experiment_e01_coloring_convergence",
    "experiment_e02_palette_lemma",
    "experiment_e03_conflict_resolution",
    "experiment_e04_tdynamic_coloring",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E1 — rounds-to-completion of the randomized colouring grows like log n
# ---------------------------------------------------------------------------

def experiment_e01_coloring_convergence(
    *,
    sizes: Sequence[int] = (32, 64, 128, 256, 512),
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    max_round_factor: int = 20,
    parallel: bool = False,
) -> List[Row]:
    """E1: completion rounds of BasicColoring (static) and DColor (under churn) vs ``n``.

    Paper claim (Lemmas 4.4 / 6.2): all nodes are coloured after ``O(log n)``
    rounds w.h.p.; the measured completion round divided by ``log₂ n`` should
    therefore stay bounded as ``n`` grows.
    """
    static_spec = ScenarioSpec(
        n=max(sizes),
        name="basic-static",
        topology=DEFAULT_FAMILY,
        algorithm="basic-coloring",
        adversary="static",
        rounds=f"{max_round_factor}*log2n + 10",
        seeds=tuple(seeds),
        stop="all-decided",
        metrics=(component("convergence", on_incomplete="nan"),),
    )
    dynamic_spec = static_spec.replace(
        name="dcolor-churn",
        algorithm=component("dcolor"),
        adversary=component("flip-churn", flip_prob=flip_prob),
    )
    static_results = sweep(static_spec, over={"n": list(sizes)}, parallel=parallel)
    dynamic_results = sweep(dynamic_spec, over={"n": list(sizes)}, parallel=parallel)

    rows: List[Row] = []
    for static_res, dynamic_res in zip(static_results, dynamic_results):
        n = static_res.spec.n
        rows.append(
            static_res.aggregate(
                mean_keys=("rounds",),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n), "algorithm": 0.0},
            )
            | {"setting": "basic-static", "rounds_over_log2n": static_res.mean("rounds") / log2(n)}
        )
        rows.append(
            dynamic_res.aggregate(
                mean_keys=("rounds",),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n), "algorithm": 1.0},
            )
            | {"setting": "dcolor-churn", "rounds_over_log2n": dynamic_res.mean("rounds") / log2(n)}
        )
    return rows


# ---------------------------------------------------------------------------
# E2 — Lemma 4.3 / 6.1: colour-or-shrink in every round
# ---------------------------------------------------------------------------

def experiment_e02_palette_lemma(
    *,
    n: int = 192,
    seeds: Sequence[int] = (0, 1, 2, 3),
    rounds: int = 40,
    flip_prob: float = 0.01,
    parallel: bool = False,
) -> List[Row]:
    """E2: per-round, an uncoloured node either gets coloured or its palette shrinks by ≥ 1/4.

    Paper claim (Lemma 4.3 / 6.1): conditioned on the palette *not* shrinking
    by a factor ≥ 1/4 this round, the node is coloured with probability at
    least 1/64.  The scenario attaches the ``palette-shrink`` probe, which
    partitions uncoloured node-rounds accordingly; the rates are pooled over
    all seeds — which must be ≥ 1/64 ≈ 0.0156 (in practice far larger).
    """
    rows: List[Row] = []
    for setting, algorithm, adversary in (
        ("basic-static", "basic-coloring", component("static")),
        ("dcolor-churn", "dcolor", component("flip-churn", flip_prob=flip_prob)),
    ):
        spec = ScenarioSpec(
            n=n,
            name=setting,
            topology=DEFAULT_FAMILY,
            algorithm=algorithm,
            adversary=adversary,
            rounds=rounds,
            seeds=tuple(seeds),
            probe="palette-shrink",
        )
        result = run_scenario(spec, parallel=parallel)
        shrink_events = sum(r["node_rounds_shrink"] for r in result.rows)
        no_shrink_events = sum(r["node_rounds_no_shrink"] for r in result.rows)
        colored_given_no_shrink = sum(r["colored_given_no_shrink"] for r in result.rows)
        rate = colored_given_no_shrink / no_shrink_events if no_shrink_events else float("nan")
        rows.append(
            {
                "setting": setting,
                "n": float(n),
                "node_rounds_no_shrink": float(no_shrink_events),
                "node_rounds_shrink": float(shrink_events),
                "colored_rate_given_no_shrink": rate,
                "paper_lower_bound": 1.0 / 64.0,
                "satisfies_bound": float(rate >= 1.0 / 64.0) if no_shrink_events else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E3 — Corollary 1.2: conflicts from inserted edges resolve within O(log n) rounds
# ---------------------------------------------------------------------------

def experiment_e03_conflict_resolution(
    *,
    sizes: Sequence[int] = (64, 128, 256),
    seeds: Sequence[int] = (0, 1, 2),
    attacks_per_round: int = 2,
    rounds_factor: int = 6,
    parallel: bool = False,
) -> List[Row]:
    """E3: a targeted adversary keeps inserting monochromatic edges; measure conflict duration.

    Paper claim (Corollary 1.2): after two nodes are joined by an edge they can
    only share a colour for ``T = O(log n)`` rounds.  The row reports the mean
    and maximum observed conflict duration and the window ``T1`` used.
    """
    spec = ScenarioSpec(
        n=max(sizes),
        name="conflict-resolution",
        topology=DEFAULT_FAMILY,
        algorithm="dynamic-coloring",
        adversary=component(
            "targeted-coloring", attacks_per_round=attacks_per_round, lifetime="2*T1"
        ),
        rounds=f"{rounds_factor}*T1",
        seeds=tuple(seeds),
        metrics=(component("conflict-durations", max_wait="2*T1"),),
    )
    rows: List[Row] = []
    for result in sweep(spec, over={"n": list(sizes)}, parallel=parallel):
        n = result.spec.n
        rows.append(
            result.aggregate(
                mean_keys=("attacks", "mean_duration"),
                max_keys=("max_duration",),
                extra={
                    "n": float(n),
                    "window_T1": float(result.spec.resolved_window()),
                    "log2_n": log2(n),
                },
            )
        )
    return rows


# ---------------------------------------------------------------------------
# E4 — sliding-window validity of the combined colouring under a churn sweep
# ---------------------------------------------------------------------------

def experiment_e04_tdynamic_coloring(
    *,
    n: int = 128,
    flip_probs: Sequence[float] = (0.001, 0.01, 0.05, 0.1),
    seeds: Sequence[int] = (0, 1, 2),
    rounds_factor: int = 5,
    window: Optional[int] = None,
    parallel: bool = False,
) -> List[Row]:
    """E4: fraction of rounds whose output is a valid T-dynamic colouring, per churn rate.

    Paper claim (Theorem 1.1(1) + Corollary 1.2): *every* round's output is a
    T-dynamic solution w.h.p., independent of the churn rate; the colours stay
    within the union-graph degree + 1 bound.
    """
    spec = ScenarioSpec(
        n=n,
        name="tdynamic-coloring",
        topology=DEFAULT_FAMILY,
        algorithm="dynamic-coloring",
        adversary=component("flip-churn", flip_prob=0.0),
        rounds=f"{rounds_factor}*T1",
        seeds=tuple(seeds),
        window=window,
        metrics=(
            component("validity", problem="coloring"),
            component("coloring-quality", graph="union"),
        ),
    )
    rows: List[Row] = []
    for result in sweep(
        spec, over={"adversary.params.flip_prob": list(flip_probs)}, parallel=parallel
    ):
        flip_prob = result.overrides["adversary.params.flip_prob"]
        rows.append(
            result.aggregate(
                mean_keys=("valid_fraction", "mean_violations", "max_color", "colors_used"),
                extra={
                    "n": float(n),
                    "flip_prob": float(flip_prob),
                    "window_T1": float(result.spec.resolved_window()),
                },
            )
        )
    return rows
