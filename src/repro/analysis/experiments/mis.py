"""MIS experiments E6–E8 (Lemmas 5.2/5.4/5.6, Corollary 1.3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dynamics.adversaries.composite import FreezeAfterAdversary
from repro.problems.mis import mis_problem_pair
from repro.problems.dynamic_problem import TDynamicSpec
from repro.runtime.simulator import run_simulation
from repro.core.windows import default_window
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.smis import SMis
from repro.algorithms.mis.dynamic_mis import DynamicMIS
from repro.analysis.convergence import rounds_to_completion
from repro.analysis.quality import mis_quality
from repro.analysis.sweep import aggregate_rows, replicate
from repro.analysis.experiments.common import base_topology, churn_adversary, log2, static_adversary

__all__ = [
    "experiment_e06_mis_edge_decay",
    "experiment_e07_mis_convergence",
    "experiment_e08_smis_freeze_decision",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E6 — Lemma 5.2: undecided-undecided edges in the intersection graph decay by 1/3 per 2 rounds
# ---------------------------------------------------------------------------

def experiment_e06_mis_edge_decay(
    *,
    n: int = 192,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
    flip_prob: float = 0.01,
    rounds: int = 30,
) -> List[Row]:
    """E6: measure ``|E(H_{r+2})| / |E(H_r)|`` for DMis under an oblivious churn adversary.

    Paper claim (Lemma 5.2): the expectation of that ratio is at most 2/3.
    ``H_r`` is the subgraph of the running intersection graph induced by the
    still-undecided nodes; the experiment reconstructs it from the recorded
    trace (intersection of all topologies since round 1, restricted to nodes
    whose output is still ⊥).
    """
    ratios: List[float] = []
    per_seed_rows: List[Row] = []
    for seed in seeds:
        base = base_topology(n, seed)
        adversary = churn_adversary(base, seed, flip_prob=flip_prob)
        trace = run_simulation(
            n=n, algorithm=DMis(), adversary=adversary, rounds=rounds, seed=seed
        )
        edge_counts: List[int] = []
        for r in range(1, trace.num_rounds + 1):
            intersection = trace.graph.intersection_graph(r, r)  # all rounds since start
            # H_r is defined over the nodes still undecided at the *beginning*
            # of round r, i.e. the outputs recorded at the end of round r - 1.
            if r == 1:
                undecided = set(intersection.nodes)
            else:
                previous = trace.outputs(r - 1)
                undecided = {v for v in intersection.nodes if previous.get(v) is None}
            edge_counts.append(len(intersection.induced_edges(undecided)))
        seed_ratios = [
            edge_counts[i + 2] / edge_counts[i]
            for i in range(len(edge_counts) - 2)
            if edge_counts[i] >= 4  # ignore the noisy tail with almost no edges left
        ]
        ratios.extend(seed_ratios)
        per_seed_rows.append(
            {
                "initial_edges": float(edge_counts[0]) if edge_counts else 0.0,
                "rounds_to_empty": float(
                    next((i + 1 for i, c in enumerate(edge_counts) if c == 0), float("nan"))
                ),
            }
        )
    mean_ratio = sum(ratios) / len(ratios) if ratios else float("nan")
    summary: Row = {
        "n": float(n),
        "flip_prob": float(flip_prob),
        "observations": float(len(ratios)),
        "mean_two_round_ratio": mean_ratio,
        "paper_upper_bound": 2.0 / 3.0,
        "satisfies_bound": float(mean_ratio <= 2.0 / 3.0 + 0.05) if ratios else float("nan"),
        "mean_initial_edges": sum(r["initial_edges"] for r in per_seed_rows) / len(per_seed_rows),
    }
    return [summary]


# ---------------------------------------------------------------------------
# E7 — Lemma 5.4 / Corollary 1.3: DMis convergence and DynamicMIS validity
# ---------------------------------------------------------------------------

def experiment_e07_mis_convergence(
    *,
    sizes: Sequence[int] = (32, 64, 128, 256, 512),
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    max_round_factor: int = 20,
    validity_rounds_factor: int = 4,
) -> List[Row]:
    """E7: DMis completion rounds vs ``n`` and the T-dynamic validity of DynamicMIS under churn."""
    rows: List[Row] = []
    pair = mis_problem_pair()
    for n in sizes:
        max_rounds = int(max_round_factor * log2(n)) + 10
        T1 = default_window(n)

        def run_convergence(seed: int, n: int = n, max_rounds: int = max_rounds) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            trace = run_simulation(
                n=n,
                algorithm=DMis(),
                adversary=adversary,
                rounds=max_rounds,
                seed=seed,
                stop_when=lambda t: rounds_to_completion(t) is not None,
            )
            done = rounds_to_completion(trace)
            quality = mis_quality(trace.topology(trace.num_rounds), trace.outputs(trace.num_rounds))
            return {
                "rounds": float(done) if done is not None else float("nan"),
                "mis_size": quality["mis_size"],
                "greedy_size": quality["greedy_size"],
            }

        def run_validity(seed: int, n: int = n, T1: int = T1) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            trace = run_simulation(
                n=n,
                algorithm=DynamicMIS(T1),
                adversary=adversary,
                rounds=validity_rounds_factor * T1,
                seed=seed,
            )
            return TDynamicSpec(pair, T1).validity_summary(trace)

        conv = replicate(run_convergence, seeds, label=f"dmis-n{n}")
        valid = replicate(run_validity, seeds, label=f"dynmis-n{n}")
        rows.append(
            aggregate_rows(
                conv,
                mean_keys=("rounds", "mis_size", "greedy_size"),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n), "window_T1": float(T1)},
            )
            | {
                "setting": "dmis-convergence",
                "rounds_over_log2n": conv.mean("rounds") / log2(n),
                "valid_fraction_mean": valid.mean("valid_fraction"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E8 — Lemma 5.6: SMis decides quickly once (a neighbourhood of) the graph freezes
# ---------------------------------------------------------------------------

def experiment_e08_smis_freeze_decision(
    *,
    sizes: Sequence[int] = (64, 128, 256),
    seeds: Sequence[int] = (0, 1, 2),
    churn_rounds: int = 20,
    flip_prob: float = 0.05,
    max_round_factor: int = 25,
) -> List[Row]:
    """E8: run SMis under churn, freeze the graph, measure rounds-to-all-decided after the freeze.

    Paper claim (Lemma 5.6): once a node's 2-neighbourhood is static, the node
    is decided within ``O(log n)`` rounds w.h.p. and never changes afterwards.
    Freezing the whole graph makes every 2-neighbourhood static, so the
    all-decided time after the freeze is the relevant measurement; the row also
    reports output changes observed after decision (paper: must be none).
    """
    rows: List[Row] = []
    for n in sizes:
        max_rounds = churn_rounds + int(max_round_factor * log2(n)) + 10

        def run(seed: int, n: int = n, max_rounds: int = max_rounds) -> Row:
            base = base_topology(n, seed)
            inner = churn_adversary(base, seed, flip_prob=flip_prob)
            adversary = FreezeAfterAdversary(inner, freeze_round=churn_rounds + 1)
            trace = run_simulation(
                n=n, algorithm=SMis(), adversary=adversary, rounds=max_rounds, seed=seed
            )
            decided_round = None
            for r in range(churn_rounds + 1, trace.num_rounds + 1):
                outputs = trace.outputs(r)
                if all(outputs.get(v) is not None for v in trace.topology(r).nodes):
                    decided_round = r
                    break
            changes_after = 0
            if decided_round is not None:
                for r in range(decided_round + 1, trace.num_rounds + 1):
                    changes_after += sum(
                        1
                        for v in trace.topology(r).nodes
                        if trace.output_of(v, r) != trace.output_of(v, r - 1)
                    )
            return {
                "rounds_after_freeze": float(decided_round - churn_rounds)
                if decided_round is not None
                else float("nan"),
                "changes_after_decided": float(changes_after),
            }

        rep = replicate(run, seeds, label=f"smis-n{n}")
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("rounds_after_freeze", "changes_after_decided"),
                max_keys=("rounds_after_freeze",),
                extra={"n": float(n), "log2_n": log2(n), "churn_rounds": float(churn_rounds)},
            )
            | {"rounds_over_log2n": rep.mean("rounds_after_freeze") / log2(n)}
        )
    return rows
