"""MIS experiments E6–E8 (Lemmas 5.2/5.4/5.6, Corollary 1.3).

Expressed through the declarative scenario API (:mod:`repro.scenarios`);
see :mod:`repro.analysis.experiments.coloring` for the conventions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.scenarios import ScenarioSpec, component, run_scenario, sweep
from repro.analysis.experiments.common import DEFAULT_FAMILY, log2

__all__ = [
    "experiment_e06_mis_edge_decay",
    "experiment_e07_mis_convergence",
    "experiment_e08_smis_freeze_decision",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E6 — Lemma 5.2: undecided-undecided edges in the intersection graph decay by 1/3 per 2 rounds
# ---------------------------------------------------------------------------

def experiment_e06_mis_edge_decay(
    *,
    n: int = 192,
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
    flip_prob: float = 0.01,
    rounds: int = 30,
    parallel: bool = False,
) -> List[Row]:
    """E6: measure ``|E(H_{r+2})| / |E(H_r)|`` for DMis under an oblivious churn adversary.

    Paper claim (Lemma 5.2): the expectation of that ratio is at most 2/3.
    ``H_r`` is the subgraph of the running intersection graph induced by the
    still-undecided nodes; the ``mis-edge-decay`` metric reconstructs it from
    the recorded trace and the ratios are pooled over all seeds.
    """
    spec = ScenarioSpec(
        n=n,
        name="mis-edge-decay",
        topology=DEFAULT_FAMILY,
        algorithm="dmis",
        adversary=component("flip-churn", flip_prob=flip_prob),
        rounds=rounds,
        seeds=tuple(seeds),
        metrics=(component("mis-edge-decay"),),
    )
    result = run_scenario(spec, parallel=parallel)
    ratio_sum = sum(row["ratio_sum"] for row in result.rows)
    ratio_count = sum(row["ratio_count"] for row in result.rows)
    mean_ratio = ratio_sum / ratio_count if ratio_count else float("nan")
    summary: Row = {
        "n": float(n),
        "flip_prob": float(flip_prob),
        "observations": float(ratio_count),
        "mean_two_round_ratio": mean_ratio,
        "paper_upper_bound": 2.0 / 3.0,
        "satisfies_bound": float(mean_ratio <= 2.0 / 3.0 + 0.05) if ratio_count else float("nan"),
        "mean_initial_edges": sum(row["initial_edges"] for row in result.rows) / len(result.rows),
    }
    return [summary]


# ---------------------------------------------------------------------------
# E7 — Lemma 5.4 / Corollary 1.3: DMis convergence and DynamicMIS validity
# ---------------------------------------------------------------------------

def experiment_e07_mis_convergence(
    *,
    sizes: Sequence[int] = (32, 64, 128, 256, 512),
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    max_round_factor: int = 20,
    validity_rounds_factor: int = 4,
    parallel: bool = False,
) -> List[Row]:
    """E7: DMis completion rounds vs ``n`` and the T-dynamic validity of DynamicMIS under churn."""
    convergence_spec = ScenarioSpec(
        n=max(sizes),
        name="dmis-convergence",
        topology=DEFAULT_FAMILY,
        algorithm="dmis",
        adversary=component("flip-churn", flip_prob=flip_prob),
        rounds=f"{max_round_factor}*log2n + 10",
        seeds=tuple(seeds),
        stop="all-decided",
        metrics=(component("convergence", on_incomplete="nan"), component("mis-quality")),
    )
    validity_spec = ScenarioSpec(
        n=max(sizes),
        name="dynamic-mis-validity",
        topology=DEFAULT_FAMILY,
        algorithm="dynamic-mis",
        adversary=component("flip-churn", flip_prob=flip_prob),
        rounds=f"{validity_rounds_factor}*T1",
        seeds=tuple(seeds),
        metrics=(component("validity", problem="mis"),),
    )
    convergence_results = sweep(convergence_spec, over={"n": list(sizes)}, parallel=parallel)
    validity_results = sweep(validity_spec, over={"n": list(sizes)}, parallel=parallel)

    rows: List[Row] = []
    for conv, valid in zip(convergence_results, validity_results):
        n = conv.spec.n
        rows.append(
            conv.aggregate(
                mean_keys=("rounds", "mis_size", "greedy_size"),
                max_keys=("rounds",),
                extra={
                    "n": float(n),
                    "log2_n": log2(n),
                    "window_T1": float(valid.spec.resolved_window()),
                },
            )
            | {
                "setting": "dmis-convergence",
                "rounds_over_log2n": conv.mean("rounds") / log2(n),
                "valid_fraction_mean": valid.mean("valid_fraction"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E8 — Lemma 5.6: SMis decides quickly once (a neighbourhood of) the graph freezes
# ---------------------------------------------------------------------------

def experiment_e08_smis_freeze_decision(
    *,
    sizes: Sequence[int] = (64, 128, 256),
    seeds: Sequence[int] = (0, 1, 2),
    churn_rounds: int = 20,
    flip_prob: float = 0.05,
    max_round_factor: int = 25,
    parallel: bool = False,
) -> List[Row]:
    """E8: run SMis under churn, freeze the graph, measure rounds-to-all-decided after the freeze.

    Paper claim (Lemma 5.6): once a node's 2-neighbourhood is static, the node
    is decided within ``O(log n)`` rounds w.h.p. and never changes afterwards.
    Freezing the whole graph (the ``freeze-after`` adversary wrapping churn)
    makes every 2-neighbourhood static, so the all-decided time after the
    freeze is the relevant measurement; the row also reports output changes
    observed after decision (paper: must be none).
    """
    spec = ScenarioSpec(
        n=max(sizes),
        name="smis-freeze",
        topology=DEFAULT_FAMILY,
        algorithm="smis",
        adversary=component(
            "freeze-after",
            inner={"name": "flip-churn", "params": {"flip_prob": flip_prob}},
            freeze_round=churn_rounds + 1,
        ),
        rounds=f"{churn_rounds} + {max_round_factor}*log2n + 10",
        seeds=tuple(seeds),
        metrics=(component("freeze-decision", churn_rounds=churn_rounds),),
    )
    rows: List[Row] = []
    for result in sweep(spec, over={"n": list(sizes)}, parallel=parallel):
        n = result.spec.n
        rows.append(
            result.aggregate(
                mean_keys=("rounds_after_freeze", "changes_after_decided"),
                max_keys=("rounds_after_freeze",),
                extra={"n": float(n), "log2_n": log2(n), "churn_rounds": float(churn_rounds)},
            )
            | {"rounds_over_log2n": result.mean("rounds_after_freeze") / log2(n)}
        )
    return rows
