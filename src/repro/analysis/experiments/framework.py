"""Framework-level experiments E5 and E9–E13.

These probe the properties of the ``Concat`` combiner itself (stability,
baseline comparison, adversary sensitivity, asynchronous wake-up, message
sizes) and the ablations of the design choices the paper argues for.

Expressed through the declarative scenario API (:mod:`repro.scenarios`);
see :mod:`repro.analysis.experiments.coloring` for the conventions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.scenarios import ScenarioSpec, component, run_scenario
from repro.analysis.experiments.common import DEFAULT_FAMILY, log2

__all__ = [
    "experiment_e05_local_stability",
    "experiment_e09_baseline_comparison",
    "experiment_e10_adversary_sensitivity",
    "experiment_e11_async_wakeup",
    "experiment_e12_message_size",
    "experiment_e13_ablations",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E5 — Theorem 1.1(2): locally static graph ⇒ locally static output
# ---------------------------------------------------------------------------

def experiment_e05_local_stability(
    *,
    n: int = 121,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.05,
    protected_radius: int = 3,
    rounds_factor: int = 6,
    family: str = "grid",
    parallel: bool = False,
) -> List[Row]:
    """E5: freeze a ball around a centre node, churn everything else, measure output changes.

    Paper claim (Theorem 1.1(2) with the Corollary 1.2/1.3 parameters): nodes
    whose 2-neighbourhood is static during ``[r, r2]`` keep a fixed output
    during ``[r + 2·T1, r2]``.  The row reports the number of output changes
    after the grace period inside the protected ball (expected: 0) and, as a
    control, outside it (expected: > 0 under churn).
    """
    rows: List[Row] = []
    for label in ("dynamic-coloring", "dynamic-mis"):
        spec = ScenarioSpec(
            n=n,
            name=label,
            topology=family,
            algorithm=label,
            adversary=component(
                "locally-static", flip_prob=flip_prob, protected_radius=protected_radius
            ),
            rounds=f"{rounds_factor}*T1",
            seeds=tuple(seeds),
            metrics=(component("region-stability", grace="2*T1+2"),),
        )
        result = run_scenario(spec, parallel=parallel)
        T1 = spec.resolved_window()
        rows.append(
            result.aggregate(
                mean_keys=("protected_nodes", "changes_protected", "changes_control"),
                max_keys=("changes_protected",),
                extra={"n": float(n), "window_T1": float(T1), "grace": float(2 * T1 + 2)},
            )
            | {"algorithm": label}
        )
    return rows


# ---------------------------------------------------------------------------
# E9 — framework vs recovery-style baselines under continuous churn
# ---------------------------------------------------------------------------

def experiment_e09_baseline_comparison(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.02,
    rounds_factor: int = 6,
    parallel: bool = False,
) -> List[Row]:
    """E9: T-dynamic validity and output churn of the framework vs restart / repair baselines.

    Paper motivation (Section 1): recovery-based schemes lose their guarantees
    under continuous churn.  Expected shape: the combined algorithms keep
    ``valid_fraction ≈ 1`` with low output churn; the restart baselines lose
    validity around every restart and churn heavily; the pure repair baselines
    (SColor / SMis alone) sit in between (few conflicts but many ⊥ outputs /
    changes).
    """
    configurations: Sequence[tuple[str, str, str]] = (
        ("dynamic-coloring", "coloring", "dynamic-coloring"),
        ("scolor-only", "coloring", "scolor"),
        ("restart-coloring", "coloring", "restart-coloring"),
        ("dynamic-mis", "mis", "dynamic-mis"),
        ("smis-only", "mis", "smis"),
        ("restart-mis", "mis", "restart-mis"),
    )
    rows: List[Row] = []
    for label, problem, algorithm in configurations:
        spec = ScenarioSpec(
            n=n,
            name=label,
            topology=DEFAULT_FAMILY,
            algorithm=algorithm,
            adversary=component("flip-churn", flip_prob=flip_prob),
            rounds=f"{rounds_factor}*T1",
            seeds=tuple(seeds),
            metrics=(
                component("validity", problem=problem, start_round="T1"),
                component("stability", warmup="T1"),
            ),
        )
        result = run_scenario(spec, parallel=parallel)
        rows.append(
            result.aggregate(
                mean_keys=("valid_fraction", "mean_violations", "mean_changes", "change_rate"),
                extra={
                    "n": float(n),
                    "window_T1": float(spec.resolved_window()),
                    "flip_prob": float(flip_prob),
                },
            )
            | {"algorithm": label}
        )
    return rows


# ---------------------------------------------------------------------------
# E10 — adversary sensitivity (2-oblivious vs adaptive)
# ---------------------------------------------------------------------------

def experiment_e10_adversary_sensitivity(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    attacks_per_round: int = 4,
    max_round_factor: int = 30,
    parallel: bool = False,
) -> List[Row]:
    """E10: DMis convergence under an oblivious churn adversary vs adaptive attackers.

    Paper remarks (after Lemma 5.2 and Section 4.3): the DMis analysis needs a
    2-oblivious adversary, while the colouring algorithms tolerate an adaptive
    offline adversary.  The experiment measures DMis's completion time under
    (a) oblivious churn, (b) an adaptive adversary that cuts the edges over
    which fresh MIS nodes would notify their neighbours, and (c) an adaptive
    adversary that joins MIS nodes (attacking the combined DynamicMIS's
    stability).  Colouring under its targeted adversary is covered by E3.
    """
    rows: List[Row] = []
    for label, adversary in (
        ("oblivious-churn", component("flip-churn", flip_prob=0.01)),
        (
            "adaptive-cut-notification",
            component(
                "targeted-mis",
                mode="cut_notification",
                attacks_per_round=attacks_per_round,
                lifetime=2,
            ),
        ),
    ):
        spec = ScenarioSpec(
            n=n,
            name=f"dmis/{label}",
            topology=DEFAULT_FAMILY,
            algorithm="dmis",
            adversary=adversary,
            rounds=f"{max_round_factor}*log2n + 10",
            seeds=tuple(seeds),
            stop="all-decided",
            metrics=(component("convergence", on_incomplete="rounds"),),
        )
        result = run_scenario(spec, parallel=parallel)
        rows.append(
            result.aggregate(
                mean_keys=("rounds", "completed"),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n)},
            )
            | {"setting": f"dmis/{label}"}
        )

    # (c) adaptive join-MIS attack against the combined algorithm's stability.
    join_spec = ScenarioSpec(
        n=n,
        name="dynamic-mis/adaptive-join-mis",
        topology=DEFAULT_FAMILY,
        algorithm="dynamic-mis",
        adversary=component(
            "targeted-mis", mode="join_mis", attacks_per_round=attacks_per_round, lifetime="T1"
        ),
        rounds="4*T1",
        seeds=tuple(seeds),
        metrics=(
            component("validity", problem="mis", start_round="T1"),
            component("stability", warmup="T1"),
        ),
    )
    join = run_scenario(join_spec, parallel=parallel)
    agg = join.aggregate(
        mean_keys=("valid_fraction", "mean_changes"),
        extra={"n": float(n), "log2_n": log2(n)},
    )
    agg["completed_mean"] = agg.pop("valid_fraction_mean")
    rows.append(
        agg | {"setting": "dynamic-mis/adaptive-join-mis (valid_fraction in 'completed_mean')"}
    )
    return rows


# ---------------------------------------------------------------------------
# E11 — asynchronous wake-up
# ---------------------------------------------------------------------------

def experiment_e11_async_wakeup(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    rounds_factor: int = 8,
    parallel: bool = False,
) -> List[Row]:
    """E11: the combined algorithms keep their guarantees under gradual wake-up schedules.

    Paper claim (Sections 2 / 7.2): all algorithms have a single round type and
    therefore work with asynchronous wake-up; constrained nodes are only those
    awake for a full window.
    """
    schedules = (
        ("all-at-once", None),
        ("staggered", component("staggered", interval=1)),
        ("uniform-random", component("uniform-random", spread="2*T1")),
    )
    rows: List[Row] = []
    for label, wakeup in schedules:
        for alg_label, problem in (("dynamic-coloring", "coloring"), ("dynamic-mis", "mis")):
            spec = ScenarioSpec(
                n=n,
                name=f"{label}/{alg_label}",
                topology=DEFAULT_FAMILY,
                algorithm=alg_label,
                adversary=component("flip-churn", flip_prob=flip_prob),
                wakeup=wakeup,
                rounds=f"{rounds_factor}*T1",
                seeds=tuple(seeds),
                metrics=(component("validity", problem=problem),),
            )
            result = run_scenario(spec, parallel=parallel)
            rows.append(
                result.aggregate(
                    mean_keys=("valid_fraction", "mean_violations"),
                    extra={"n": float(n), "window_T1": float(spec.resolved_window())},
                )
                | {"schedule": label, "algorithm": alg_label}
            )
    return rows


# ---------------------------------------------------------------------------
# E12 — message sizes stay polylogarithmic
# ---------------------------------------------------------------------------

def experiment_e12_message_size(
    *,
    sizes: Sequence[int] = (32, 128, 512),
    seed: int = 0,
    flip_prob: float = 0.01,
    rounds_factor: int = 3,
    parallel: bool = False,
) -> List[Row]:
    """E12: maximum estimated message size (bits) per algorithm vs ``n``.

    Paper claim (Section 2): all presented algorithms work with ``poly log n``
    bits per message.  Single algorithms send O(log n)-bit messages (a colour,
    a random number, a mark); the ``Concat`` combiner bundles ``T1 = Θ(log n)``
    sub-messages, i.e. Θ(log² n) bits — both polylogarithmic.
    """
    rows: List[Row] = []
    for n in sizes:
        for label in ("scolor", "dcolor", "smis", "dmis", "dynamic-coloring", "dynamic-mis"):
            spec = ScenarioSpec(
                n=n,
                name=label,
                topology=DEFAULT_FAMILY,
                algorithm=label,
                adversary=component("flip-churn", flip_prob=flip_prob),
                rounds=f"{rounds_factor}*T1",
                seeds=(seed,),
                metrics=(component("message-size"),),
            )
            result = run_scenario(spec, parallel=parallel)
            max_bits = result.rows[0]["max_message_bits"]
            rows.append(
                {
                    "algorithm": label,
                    "n": float(n),
                    "window_T1": float(spec.resolved_window()),
                    "max_message_bits": float(max_bits),
                    "log2_n": log2(n),
                    "bits_over_log2n_sq": float(max_bits) / (log2(n) ** 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E13 — ablations of the paper's design choices
# ---------------------------------------------------------------------------

def experiment_e13_ablations(
    *,
    n: int = 96,
    seeds: Sequence[int] = (0, 1, 2),
    rounds_factor: int = 5,
    insertions_per_round: int = 3,
    parallel: bool = False,
) -> List[Row]:
    """E13: remove one design choice at a time and measure what breaks.

    (a) DColor on the current graph vs the intersection graph, under an
        edge-insertion workload: the ``palette-invariant`` probe checks the
        Lemma 4.2 invariant ``|P_v| >= |U(v)| + 1`` every round (the paper's
        choice never violates it, the ablation does).
    (b) SColor / SMis without the un-decide rules: number of rounds whose
        output violates the partial-solution property B.1 under churn.
    (c) Concat without the SAlg backbone on a *static* graph: mean output
        changes per round after warm-up (the paper's combiner: ~0; the naive
        restart-every-round scheme: large).
    """
    rows: List[Row] = []

    # (a) intersection-graph restriction (palette invariant).
    for label, algorithm, restricted in (
        ("dcolor", "dcolor", True),
        ("dcolor-current-graph", "dcolor-current-graph", False),
    ):
        spec = ScenarioSpec(
            n=n,
            name=label,
            topology=DEFAULT_FAMILY,
            algorithm=algorithm,
            adversary=component(
                "edge-insertion", insertions_per_round=insertions_per_round, lifetime=3
            ),
            rounds=f"{rounds_factor}*T1",
            seeds=tuple(seeds),
            probe=component("palette-invariant", restricted=restricted),
        )
        result = run_scenario(spec, parallel=parallel)
        rows.append(
            result.aggregate(
                mean_keys=("palette_invariant_violation_fraction", "uncolored_fraction"),
                extra={"n": float(n)},
            )
            | {"ablation": "a:intersection-graph", "variant": label}
        )

    # (b) un-decide rules.
    for label, problem, algorithm in (
        ("scolor", "coloring", "scolor"),
        ("scolor-no-uncolor", "coloring", "scolor-no-uncolor"),
        ("smis", "mis", "smis"),
        ("smis-no-undecide", "mis", "smis-no-undecide"),
    ):
        spec = ScenarioSpec(
            n=n,
            name=label,
            topology=DEFAULT_FAMILY,
            algorithm=algorithm,
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=f"{rounds_factor}*T1",
            seeds=tuple(seeds),
            metrics=(component("b1-violations", problem=problem, start_round="T1"),),
        )
        result = run_scenario(spec, parallel=parallel)
        rows.append(
            result.aggregate(mean_keys=("b1_violation_fraction",), extra={"n": float(n)})
            | {"ablation": "b:un-decide-rule", "variant": label}
        )

    # (c) SAlg backbone.
    for label, algorithm in (
        ("dynamic-coloring", "dynamic-coloring"),
        ("coloring-no-backbone", "coloring-no-backbone"),
    ):
        spec = ScenarioSpec(
            n=n,
            name=label,
            topology=DEFAULT_FAMILY,
            algorithm=algorithm,
            adversary="static",
            rounds=f"{rounds_factor}*T1",
            seeds=tuple(seeds),
            metrics=(component("stability", warmup="2*T1"),),
        )
        result = run_scenario(spec, parallel=parallel)
        rows.append(
            result.aggregate(mean_keys=("mean_changes", "change_rate"), extra={"n": float(n)})
            | {"ablation": "c:backbone", "variant": label}
        )
    return rows
