"""Framework-level experiments E5 and E9–E13.

These probe the properties of the ``Concat`` combiner itself (stability,
baseline comparison, adversary sensitivity, asynchronous wake-up, message
sizes) and the ablations of the design choices the paper argues for.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.utils.rng import RngFactory
from repro.types import Interval
from repro.dynamics.adversaries.locally_static import LocallyStaticAdversary
from repro.dynamics.adversaries.targeted_mis import TargetedMisAdversary
from repro.dynamics.churn import EdgeInsertionChurn, FlipChurn
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.wakeup import StaggeredWakeup, UniformRandomWakeup
from repro.problems.coloring import coloring_problem_pair
from repro.problems.mis import mis_problem_pair
from repro.problems.dynamic_problem import TDynamicSpec
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.simulator import run_simulation
from repro.core.windows import default_window
from repro.core.properties import verify_partial_solution_every_round
from repro.algorithms.coloring.dynamic_coloring import DynamicColoring
from repro.algorithms.coloring.scolor import SColor
from repro.algorithms.coloring.baselines import RestartColoring
from repro.algorithms.coloring.ablations import (
    DColorCurrentGraphAblation,
    SColorNoUncolorAblation,
    concat_without_backbone,
)
from repro.algorithms.coloring.dcolor import DColor
from repro.algorithms.mis.dynamic_mis import DynamicMIS
from repro.algorithms.mis.smis import SMis
from repro.algorithms.mis.dmis import DMis
from repro.algorithms.mis.baselines import RestartMis
from repro.algorithms.mis.ablations import SMisNoUndecideAblation
from repro.analysis.convergence import rounds_to_completion
from repro.analysis.stability import region_change_count, stability_summary
from repro.analysis.sweep import aggregate_rows, replicate
from repro.analysis.experiments.common import base_topology, churn_adversary, log2, static_adversary

__all__ = [
    "experiment_e05_local_stability",
    "experiment_e09_baseline_comparison",
    "experiment_e10_adversary_sensitivity",
    "experiment_e11_async_wakeup",
    "experiment_e12_message_size",
    "experiment_e13_ablations",
]

Row = Dict[str, float]


# ---------------------------------------------------------------------------
# E5 — Theorem 1.1(2): locally static graph ⇒ locally static output
# ---------------------------------------------------------------------------

def experiment_e05_local_stability(
    *,
    n: int = 121,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.05,
    protected_radius: int = 3,
    rounds_factor: int = 6,
    family: str = "grid",
) -> List[Row]:
    """E5: freeze a ball around a centre node, churn everything else, measure output changes.

    Paper claim (Theorem 1.1(2) with the Corollary 1.2/1.3 parameters): nodes
    whose 2-neighbourhood is static during ``[r, r2]`` keep a fixed output
    during ``[r + 2·T1, r2]``.  The row reports the number of output changes
    after the grace period inside the protected ball (expected: 0) and, as a
    control, outside it (expected: > 0 under churn).
    """
    rows: List[Row] = []
    T1 = default_window(n)
    rounds = rounds_factor * T1
    grace = 2 * T1 + 2

    for label, factory in (
        ("dynamic-coloring", lambda: DynamicColoring(T1)),
        ("dynamic-mis", lambda: DynamicMIS(T1)),
    ):

        def run(seed: int, factory: Callable[[], DistributedAlgorithm] = factory) -> Row:
            base = base_topology(n, seed, family=family)
            center = max(base.nodes, key=lambda v: base.degree(v))
            churn = FlipChurn(base, flip_prob)
            adversary = LocallyStaticAdversary(
                base,
                center=center,
                protected_radius=protected_radius,
                churn=churn,
                rng=RngFactory(seed).stream("adversary", "locally-static"),
            )
            trace = run_simulation(
                n=n, algorithm=factory(), adversary=adversary, rounds=rounds, seed=seed
            )
            # Nodes whose entire 2-neighbourhood lies inside the protected set.
            protected = adversary.protected_nodes
            inner = {
                v for v in protected if base.ball(v, 2) <= protected
            }
            outer = set(base.nodes) - protected
            window = Interval(grace, rounds)
            return {
                "protected_nodes": float(len(inner)),
                "changes_protected": float(region_change_count(trace, inner, window)),
                "changes_control": float(region_change_count(trace, outer, window)),
            }

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("protected_nodes", "changes_protected", "changes_control"),
                max_keys=("changes_protected",),
                extra={"n": float(n), "window_T1": float(T1), "grace": float(grace)},
            )
            | {"algorithm": label}
        )
    return rows


# ---------------------------------------------------------------------------
# E9 — framework vs recovery-style baselines under continuous churn
# ---------------------------------------------------------------------------

def experiment_e09_baseline_comparison(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.02,
    rounds_factor: int = 6,
) -> List[Row]:
    """E9: T-dynamic validity and output churn of the framework vs restart / repair baselines.

    Paper motivation (Section 1): recovery-based schemes lose their guarantees
    under continuous churn.  Expected shape: the combined algorithms keep
    ``valid_fraction ≈ 1`` with low output churn; the restart baselines lose
    validity around every restart and churn heavily; the pure repair baselines
    (SColor / SMis alone) sit in between (few conflicts but many ⊥ outputs /
    changes).
    """
    T1 = default_window(n)
    rounds = rounds_factor * T1
    configurations: Sequence[tuple[str, ProblemPair, Callable[[], DistributedAlgorithm]]] = (
        ("dynamic-coloring", coloring_problem_pair(), lambda: DynamicColoring(T1)),
        ("scolor-only", coloring_problem_pair(), SColor),
        ("restart-coloring", coloring_problem_pair(), lambda: RestartColoring(T1)),
        ("dynamic-mis", mis_problem_pair(), lambda: DynamicMIS(T1)),
        ("smis-only", mis_problem_pair(), SMis),
        ("restart-mis", mis_problem_pair(), lambda: RestartMis(T1)),
    )
    rows: List[Row] = []
    for label, pair, factory in configurations:
        spec = TDynamicSpec(pair, T1)

        def run(seed: int, factory: Callable[[], DistributedAlgorithm] = factory, spec: TDynamicSpec = spec) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            trace = run_simulation(
                n=n, algorithm=factory(), adversary=adversary, rounds=rounds, seed=seed
            )
            validity = spec.validity_summary(trace, start_round=T1)
            stability = stability_summary(trace, warmup=T1)
            return {
                "valid_fraction": validity["valid_fraction"],
                "mean_violations": validity["mean_violations"],
                "mean_changes": stability["mean_changes"],
                "change_rate": stability["change_rate"],
            }

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("valid_fraction", "mean_violations", "mean_changes", "change_rate"),
                extra={"n": float(n), "window_T1": float(T1), "flip_prob": float(flip_prob)},
            )
            | {"algorithm": label}
        )
    return rows


# ---------------------------------------------------------------------------
# E10 — adversary sensitivity (2-oblivious vs adaptive)
# ---------------------------------------------------------------------------

def experiment_e10_adversary_sensitivity(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    attacks_per_round: int = 4,
    max_round_factor: int = 30,
) -> List[Row]:
    """E10: DMis convergence under an oblivious churn adversary vs adaptive attackers.

    Paper remarks (after Lemma 5.2 and Section 4.3): the DMis analysis needs a
    2-oblivious adversary, while the colouring algorithms tolerate an adaptive
    offline adversary.  The experiment measures DMis's completion time under
    (a) oblivious churn, (b) an adaptive adversary that cuts the edges over
    which fresh MIS nodes would notify their neighbours, and (c) an adaptive
    adversary that joins MIS nodes (attacking the combined DynamicMIS's
    stability).  Colouring under its targeted adversary is covered by E3.
    """
    rows: List[Row] = []
    max_rounds = int(max_round_factor * log2(n)) + 10
    T1 = default_window(n)

    def adversary_oblivious(seed: int, base):
        return churn_adversary(base, seed, flip_prob=0.01)

    def adversary_cut(seed: int, base):
        return TargetedMisAdversary(
            base,
            mode="cut_notification",
            attacks_per_round=attacks_per_round,
            rng=RngFactory(seed).stream("adversary", "cut"),
            lifetime=2,
        )

    for label, adversary_factory in (
        ("oblivious-churn", adversary_oblivious),
        ("adaptive-cut-notification", adversary_cut),
    ):

        def run(seed: int, adversary_factory=adversary_factory) -> Row:
            base = base_topology(n, seed)
            adversary = adversary_factory(seed, base)
            trace = run_simulation(
                n=n,
                algorithm=DMis(),
                adversary=adversary,
                rounds=max_rounds,
                seed=seed,
                stop_when=lambda t: rounds_to_completion(t) is not None,
            )
            done = rounds_to_completion(trace)
            return {
                "rounds": float(done) if done is not None else float(max_rounds),
                "completed": float(done is not None),
            }

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("rounds", "completed"),
                max_keys=("rounds",),
                extra={"n": float(n), "log2_n": log2(n)},
            )
            | {"setting": f"dmis/{label}"}
        )

    # (c) adaptive join-MIS attack against the combined algorithm's stability.
    def run_join(seed: int) -> Row:
        base = base_topology(n, seed)
        adversary = TargetedMisAdversary(
            base,
            mode="join_mis",
            attacks_per_round=attacks_per_round,
            rng=RngFactory(seed).stream("adversary", "join"),
            lifetime=T1,
        )
        trace = run_simulation(
            n=n, algorithm=DynamicMIS(T1), adversary=adversary, rounds=4 * T1, seed=seed
        )
        validity = TDynamicSpec(mis_problem_pair(), T1).validity_summary(trace, start_round=T1)
        stability = stability_summary(trace, warmup=T1)
        return {
            "rounds": float(trace.num_rounds),
            "completed": validity["valid_fraction"],
            "mean_changes": stability["mean_changes"],
        }

    rep = replicate(run_join, seeds, label="join")
    rows.append(
        aggregate_rows(
            rep,
            mean_keys=("completed", "mean_changes"),
            extra={"n": float(n), "log2_n": log2(n)},
        )
        | {"setting": "dynamic-mis/adaptive-join-mis (valid_fraction in 'completed_mean')"}
    )
    return rows


# ---------------------------------------------------------------------------
# E11 — asynchronous wake-up
# ---------------------------------------------------------------------------

def experiment_e11_async_wakeup(
    *,
    n: int = 128,
    seeds: Sequence[int] = (0, 1, 2),
    flip_prob: float = 0.01,
    rounds_factor: int = 8,
) -> List[Row]:
    """E11: the combined algorithms keep their guarantees under gradual wake-up schedules.

    Paper claim (Sections 2 / 7.2): all algorithms have a single round type and
    therefore work with asynchronous wake-up; constrained nodes are only those
    awake for a full window.
    """
    T1 = default_window(n)
    rounds = rounds_factor * T1
    schedules = (
        ("all-at-once", None),
        ("staggered", "staggered"),
        ("uniform-random", "uniform"),
    )
    rows: List[Row] = []
    for label, kind in schedules:
        for alg_label, pair, factory in (
            ("dynamic-coloring", coloring_problem_pair(), lambda: DynamicColoring(T1)),
            ("dynamic-mis", mis_problem_pair(), lambda: DynamicMIS(T1)),
        ):
            spec = TDynamicSpec(pair, T1)

            def run(seed: int, kind=kind, factory=factory, spec=spec) -> Row:
                base = base_topology(n, seed)
                if kind == "staggered":
                    wakeup = StaggeredWakeup(n, batch_size=max(1, n // (2 * T1)), interval=1)
                elif kind == "uniform":
                    wakeup = UniformRandomWakeup(n, spread=2 * T1, rng=RngFactory(seed).stream("wakeup"))
                else:
                    wakeup = None
                adversary = churn_adversary(base, seed, flip_prob=flip_prob, wakeup=wakeup)
                trace = run_simulation(
                    n=n, algorithm=factory(), adversary=adversary, rounds=rounds, seed=seed
                )
                summary = spec.validity_summary(trace)
                return {"valid_fraction": summary["valid_fraction"], "mean_violations": summary["mean_violations"]}

            rep = replicate(run, seeds, label=f"{label}/{alg_label}")
            rows.append(
                aggregate_rows(
                    rep,
                    mean_keys=("valid_fraction", "mean_violations"),
                    extra={"n": float(n), "window_T1": float(T1)},
                )
                | {"schedule": label, "algorithm": alg_label}
            )
    return rows


# ---------------------------------------------------------------------------
# E12 — message sizes stay polylogarithmic
# ---------------------------------------------------------------------------

def experiment_e12_message_size(
    *,
    sizes: Sequence[int] = (32, 128, 512),
    seed: int = 0,
    flip_prob: float = 0.01,
    rounds_factor: int = 3,
) -> List[Row]:
    """E12: maximum estimated message size (bits) per algorithm vs ``n``.

    Paper claim (Section 2): all presented algorithms work with ``poly log n``
    bits per message.  Single algorithms send O(log n)-bit messages (a colour,
    a random number, a mark); the ``Concat`` combiner bundles ``T1 = Θ(log n)``
    sub-messages, i.e. Θ(log² n) bits — both polylogarithmic.
    """
    rows: List[Row] = []
    for n in sizes:
        T1 = default_window(n)
        rounds = rounds_factor * T1
        for label, factory in (
            ("scolor", SColor),
            ("dcolor", DColor),
            ("smis", SMis),
            ("dmis", DMis),
            ("dynamic-coloring", lambda: DynamicColoring(T1)),
            ("dynamic-mis", lambda: DynamicMIS(T1)),
        ):
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=flip_prob)
            trace = run_simulation(
                n=n, algorithm=factory(), adversary=adversary, rounds=rounds, seed=seed
            )
            max_bits = max(record.metrics.max_message_bits for record in trace)
            rows.append(
                {
                    "algorithm": label,
                    "n": float(n),
                    "window_T1": float(T1),
                    "max_message_bits": float(max_bits),
                    "log2_n": log2(n),
                    "bits_over_log2n_sq": float(max_bits) / (log2(n) ** 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E13 — ablations of the paper's design choices
# ---------------------------------------------------------------------------

def experiment_e13_ablations(
    *,
    n: int = 96,
    seeds: Sequence[int] = (0, 1, 2),
    rounds_factor: int = 5,
    insertions_per_round: int = 3,
) -> List[Row]:
    """E13: remove one design choice at a time and measure what breaks.

    (a) DColor on the current graph vs the intersection graph, under an
        edge-insertion workload: fraction of nodes left uncoloured after the
        window (paper's choice keeps it at 0, the ablation does not have the
        Lemma 4.2 palette invariant).
    (b) SColor / SMis without the un-decide rules: number of rounds whose
        output violates the partial-solution property B.1 under churn.
    (c) Concat without the SAlg backbone on a *static* graph: mean output
        changes per round after warm-up (the paper's combiner: ~0; the naive
        restart-every-round scheme: large).
    """
    T1 = default_window(n)
    rounds = rounds_factor * T1
    rows: List[Row] = []

    # (a) intersection-graph restriction: measure the Lemma 4.2 palette
    # invariant |P_v| >= |U(v)| + 1, where U(v) are the uncoloured neighbours
    # in the algorithm's communication graph.  The paper's DColor never
    # violates it; the current-graph ablation does once inserted edges deliver
    # foreign fixed colours into the palette.
    for label, factory, restricted in (
        ("dcolor", DColor, True),
        ("dcolor-current-graph", DColorCurrentGraphAblation, False),
    ):

        def run(seed: int, factory=factory, restricted=restricted) -> Row:
            from repro.runtime.simulator import Simulator  # local import to avoid cycle noise

            base = base_topology(n, seed)
            churn = EdgeInsertionChurn(base, insertions_per_round=insertions_per_round, lifetime=3)
            adversary = ChurnAdversary(n, churn, RngFactory(seed).stream("adversary", "insert"))
            algorithm = factory()
            sim = Simulator(n=n, algorithm=algorithm, adversary=adversary, seed=seed)
            violations = 0
            observations = 0
            for _ in range(rounds):
                sim.run(1)
                r = sim.trace.num_rounds
                outputs = sim.trace.outputs(r)
                topo = sim.trace.topology(r)
                for v in topo.nodes:
                    if outputs.get(v) is not None:
                        continue
                    palette = algorithm.palette_of(v)
                    if restricted:
                        comm_neighbors = algorithm.live_neighbors_of(v)
                    else:
                        comm_neighbors = topo.neighbors(v)
                    uncolored_neighbors = sum(1 for u in comm_neighbors if outputs.get(u) is None)
                    observations += 1
                    if len(palette) < uncolored_neighbors + 1:
                        violations += 1
            final = sim.trace.outputs(sim.trace.num_rounds)
            uncolored = sum(1 for v in sim.trace.topology(sim.trace.num_rounds).nodes if final.get(v) is None)
            return {
                "palette_invariant_violation_fraction": violations / observations if observations else 0.0,
                "uncolored_fraction": uncolored / n,
            }

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(
                rep,
                mean_keys=("palette_invariant_violation_fraction", "uncolored_fraction"),
                extra={"n": float(n)},
            )
            | {"ablation": "a:intersection-graph", "variant": label}
        )

    # (b) un-decide rules.
    for label, pair, factory in (
        ("scolor", coloring_problem_pair(), SColor),
        ("scolor-no-uncolor", coloring_problem_pair(), SColorNoUncolorAblation),
        ("smis", mis_problem_pair(), SMis),
        ("smis-no-undecide", mis_problem_pair(), SMisNoUndecideAblation),
    ):

        def run(seed: int, pair=pair, factory=factory) -> Row:
            base = base_topology(n, seed)
            adversary = churn_adversary(base, seed, flip_prob=0.05)
            trace = run_simulation(
                n=n, algorithm=factory(), adversary=adversary, rounds=rounds, seed=seed
            )
            violations = verify_partial_solution_every_round(trace, pair, start_round=T1)
            checked = max(1, trace.num_rounds - T1 + 1)
            return {"b1_violation_fraction": len(violations) / checked}

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(rep, mean_keys=("b1_violation_fraction",), extra={"n": float(n)})
            | {"ablation": "b:un-decide-rule", "variant": label}
        )

    # (c) SAlg backbone.
    for label, factory in (
        ("dynamic-coloring", lambda: DynamicColoring(T1)),
        ("coloring-no-backbone", lambda: concat_without_backbone(T1)),
    ):

        def run(seed: int, factory=factory) -> Row:
            base = base_topology(n, seed)
            trace = run_simulation(
                n=n, algorithm=factory(), adversary=static_adversary(base), rounds=rounds, seed=seed
            )
            stability = stability_summary(trace, warmup=2 * T1)
            return {"mean_changes": stability["mean_changes"], "change_rate": stability["change_rate"]}

        rep = replicate(run, seeds, label=label)
        rows.append(
            aggregate_rows(rep, mean_keys=("mean_changes", "change_rate"), extra={"n": float(n)})
            | {"ablation": "c:backbone", "variant": label}
        )
    return rows
