"""Shared workload builders for the experiment suite.

Every experiment derives its randomness from an experiment-level seed through
:class:`~repro.utils.rng.RngFactory` streams, so rows are reproducible and the
adversary, topology and algorithm randomness never alias.

Since the experiments moved onto the declarative scenario API
(:mod:`repro.scenarios`), the builders here are no longer on the experiment
hot path — the registries of :mod:`repro.scenarios.components` construct the
same objects from the same streams.  They remain the convenient imperative
shortcuts for tests and ad-hoc scripts.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.utils.rng import RngFactory
from repro.dynamics.adversary import Adversary
from repro.dynamics.adversaries.random_churn import ChurnAdversary
from repro.dynamics.adversaries.scripted import StaticAdversary
from repro.dynamics.churn import FlipChurn, MarkovEdgeChurn, StaticChurn
from repro.dynamics.generators import by_name
from repro.dynamics.topology import Topology
from repro.dynamics.wakeup import WakeupSchedule

__all__ = [
    "base_topology",
    "churn_adversary",
    "static_adversary",
    "log2",
    "DEFAULT_FAMILY",
]

#: Topology family used by default throughout the experiments: a sparse
#: Erdős–Rényi graph with expected average degree 8, the regime the paper's
#: wireless / overlay motivation cares about.
DEFAULT_FAMILY = "gnp_sparse"


def log2(n: int) -> float:
    """``log₂ n`` (the yardstick every O(log n) claim is measured against)."""
    return math.log2(max(n, 2))


def base_topology(n: int, seed: int, *, family: str = DEFAULT_FAMILY) -> Topology:
    """The base graph of a configuration (derived from the experiment seed)."""
    rng = RngFactory(seed).stream("topology", family, n)
    return by_name(family, n, rng)


def churn_adversary(
    base: Topology,
    seed: int,
    *,
    flip_prob: float = 0.01,
    p_off: Optional[float] = None,
    p_on: Optional[float] = None,
    wakeup: Optional[WakeupSchedule] = None,
) -> Adversary:
    """A fully oblivious churn adversary over ``base``.

    By default every base edge flips state with probability ``flip_prob`` per
    round; passing ``p_off`` / ``p_on`` switches to the asymmetric Markov
    model.
    """
    n = max(base.nodes) + 1 if base.nodes else 0
    rng = RngFactory(seed).stream("adversary", "churn")
    if p_off is None and p_on is None:
        churn = FlipChurn(base, flip_prob) if flip_prob > 0 else StaticChurn(base)
    else:
        churn = MarkovEdgeChurn(base, p_off=p_off or 0.0, p_on=p_on or 0.0)
    return ChurnAdversary(n, churn, rng, wakeup=wakeup)


def static_adversary(base: Topology, *, wakeup: Optional[WakeupSchedule] = None) -> Adversary:
    """A static adversary that repeats ``base`` every round."""
    return StaticAdversary(base, wakeup=wakeup)
