"""The E1–E13 experiment catalog: stable ids for the pipeline.

The experiment implementations are ordinary functions; the catalog gives each
one a short stable id ("e01" … "e13") so that config files
(``configs/experiments/*.json``), the ``repro`` CLI and the benchmark harness
all refer to the same entry point by name — the same move the scenario
registries made for components.

:func:`run_experiment` is the single execution path: every consumer (CLI,
benchmarks, tests) goes through it, so config-driven runs are byte-identical
to direct function calls by construction.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.scenarios.registry import suggestion_hint
from repro.analysis.experiments.coloring import (
    experiment_e01_coloring_convergence,
    experiment_e02_palette_lemma,
    experiment_e03_conflict_resolution,
    experiment_e04_tdynamic_coloring,
)
from repro.analysis.experiments.framework import (
    experiment_e05_local_stability,
    experiment_e09_baseline_comparison,
    experiment_e10_adversary_sensitivity,
    experiment_e11_async_wakeup,
    experiment_e12_message_size,
    experiment_e13_ablations,
)
from repro.analysis.experiments.mis import (
    experiment_e06_mis_edge_decay,
    experiment_e07_mis_convergence,
    experiment_e08_smis_freeze_decision,
)

__all__ = ["EXPERIMENTS", "ExperimentDef", "experiment_defaults", "run_experiment"]

Row = Dict[str, float]


@dataclass(frozen=True)
class ExperimentDef:
    """One catalogued experiment: its id and the function that runs it."""

    id: str
    fn: Callable[..., List[Row]]

    @property
    def doc(self) -> str:
        """First line of the experiment function's docstring."""
        docstring = inspect.getdoc(self.fn) or ""
        return docstring.splitlines()[0] if docstring else ""


#: Every experiment the paper's claims are validated by, keyed by stable id.
EXPERIMENTS: Dict[str, ExperimentDef] = {
    definition.id: definition
    for definition in (
        ExperimentDef("e01", experiment_e01_coloring_convergence),
        ExperimentDef("e02", experiment_e02_palette_lemma),
        ExperimentDef("e03", experiment_e03_conflict_resolution),
        ExperimentDef("e04", experiment_e04_tdynamic_coloring),
        ExperimentDef("e05", experiment_e05_local_stability),
        ExperimentDef("e06", experiment_e06_mis_edge_decay),
        ExperimentDef("e07", experiment_e07_mis_convergence),
        ExperimentDef("e08", experiment_e08_smis_freeze_decision),
        ExperimentDef("e09", experiment_e09_baseline_comparison),
        ExperimentDef("e10", experiment_e10_adversary_sensitivity),
        ExperimentDef("e11", experiment_e11_async_wakeup),
        ExperimentDef("e12", experiment_e12_message_size),
        ExperimentDef("e13", experiment_e13_ablations),
    )
}


def _lookup(experiment_id: str) -> ExperimentDef:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        hint = suggestion_hint(experiment_id, EXPERIMENTS)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}{hint} "
            f"(available: {', '.join(sorted(EXPERIMENTS))})"
        ) from None


def experiment_defaults(experiment_id: str) -> Dict[str, Any]:
    """The keyword parameters (with defaults) the experiment accepts.

    ``parallel`` is an execution knob, not part of the workload, and is
    excluded — it never belongs in a config's parameter set.
    """
    signature = inspect.signature(_lookup(experiment_id).fn)
    return {
        name: parameter.default
        for name, parameter in signature.parameters.items()
        if name != "parallel"
    }


def run_experiment(
    experiment_id: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    parallel: bool = False,
) -> List[Row]:
    """Run one catalogued experiment with ``params`` and return its rows.

    Unknown parameter names raise :class:`ConfigurationError` with near-miss
    suggestions instead of a bare ``TypeError`` from the call.
    """
    definition = _lookup(experiment_id)
    params = dict(params or {})
    known = experiment_defaults(experiment_id)
    for name in params:
        if name not in known:
            hint = suggestion_hint(name, known)
            raise ConfigurationError(
                f"experiment {experiment_id!r} has no parameter {name!r}{hint} "
                f"(accepted: {', '.join(sorted(known))})"
            )
    # Sequence-valued parameters arrive as JSON lists; the experiment
    # functions accept any sequence, so pass them through unchanged.
    return definition.fn(**params, parallel=parallel)
