"""The E1–E13 experiment implementations (see DESIGN.md §3 for the index).

Every experiment is an ordinary function that returns a list of row dicts; the
``benchmarks/`` tree wraps each one in a pytest-benchmark target that runs it
and prints the regenerated table.  Default parameters are sized so the whole
suite completes on a laptop in minutes; every knob (sizes, rounds, seeds,
churn rates) is exposed so EXPERIMENTS.md-scale runs just pass bigger values.
"""

from repro.analysis.experiments.coloring import (
    experiment_e01_coloring_convergence,
    experiment_e02_palette_lemma,
    experiment_e03_conflict_resolution,
    experiment_e04_tdynamic_coloring,
)
from repro.analysis.experiments.mis import (
    experiment_e06_mis_edge_decay,
    experiment_e07_mis_convergence,
    experiment_e08_smis_freeze_decision,
)
from repro.analysis.experiments.framework import (
    experiment_e05_local_stability,
    experiment_e09_baseline_comparison,
    experiment_e10_adversary_sensitivity,
    experiment_e11_async_wakeup,
    experiment_e12_message_size,
    experiment_e13_ablations,
)
from repro.analysis.experiments.catalog import (
    EXPERIMENTS,
    ExperimentDef,
    experiment_defaults,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentDef",
    "experiment_defaults",
    "run_experiment",
    "experiment_e01_coloring_convergence",
    "experiment_e02_palette_lemma",
    "experiment_e03_conflict_resolution",
    "experiment_e04_tdynamic_coloring",
    "experiment_e05_local_stability",
    "experiment_e06_mis_edge_decay",
    "experiment_e07_mis_convergence",
    "experiment_e08_smis_freeze_decision",
    "experiment_e09_baseline_comparison",
    "experiment_e10_adversary_sensitivity",
    "experiment_e11_async_wakeup",
    "experiment_e12_message_size",
    "experiment_e13_ablations",
]
