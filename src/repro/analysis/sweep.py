"""Replicated parameter sweeps and row aggregation.

Every experiment in :mod:`repro.analysis.experiments` repeats each
configuration over several seeds and reports means (and standard deviations
where meaningful).  The helpers here keep that boilerplate in one place and
make the aggregation rules explicit and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["Replication", "replicate", "aggregate_rows"]

Row = Dict[str, float]


@dataclass(frozen=True)
class Replication:
    """The per-seed results of one experiment configuration."""

    label: str
    rows: Sequence[Row]

    def mean(self, key: str) -> float:
        """Mean of ``key`` over the replicas (NaN entries are skipped)."""
        values = [row[key] for row in self.rows if key in row and not math.isnan(row[key])]
        return sum(values) / len(values) if values else float("nan")

    def std(self, key: str) -> float:
        """Population standard deviation of ``key`` over the replicas."""
        values = [row[key] for row in self.rows if key in row and not math.isnan(row[key])]
        if not values:
            return float("nan")
        mean = sum(values) / len(values)
        return math.sqrt(sum((value - mean) ** 2 for value in values) / len(values))

    def max(self, key: str) -> float:
        """Maximum of ``key`` over the replicas."""
        values = [row[key] for row in self.rows if key in row and not math.isnan(row[key])]
        return max(values) if values else float("nan")


def replicate(
    run: Callable[[int], Row],
    seeds: Iterable[int],
    *,
    label: str = "",
) -> Replication:
    """Run ``run(seed)`` for every seed and collect the per-seed rows."""
    rows = [run(int(seed)) for seed in seeds]
    if not rows:
        raise ConfigurationError("replicate() needs at least one seed")
    return Replication(label=label, rows=tuple(rows))


def aggregate_rows(
    replication: Replication,
    *,
    mean_keys: Sequence[str] = (),
    std_keys: Sequence[str] = (),
    max_keys: Sequence[str] = (),
    extra: Mapping[str, float] | None = None,
) -> Row:
    """Collapse a replication into one row of means / stds / maxima."""
    row: Row = dict(extra or {})
    for key in mean_keys:
        row[f"{key}_mean"] = replication.mean(key)
    for key in std_keys:
        row[f"{key}_std"] = replication.std(key)
    for key in max_keys:
        row[f"{key}_max"] = replication.max(key)
    row["replicas"] = float(len(replication.rows))
    return row
