"""Convergence (rounds-to-completion) measurements.

Used by the E1/E7/E8 experiments that validate the ``O(log n)`` completion
claims (Lemmas 4.4, 5.4, 5.6, 6.2): how many rounds until every (awake,
relevant) node has produced a non-⊥ output.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.types import NodeId
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "first_round_all_decided",
    "rounds_to_completion",
    "completion_round_for_nodes",
]


def first_round_all_decided(trace: ExecutionTrace, *, start_round: int = 1) -> Optional[int]:
    """First round in which every awake node outputs a value ≠ ⊥ (or ``None``)."""
    for r in range(start_round, trace.num_rounds + 1):
        outputs = trace.outputs(r)
        nodes = trace.topology(r).nodes
        if nodes and all(outputs.get(v) is not None for v in nodes):
            return r
    return None


def rounds_to_completion(trace: ExecutionTrace, *, start_round: int = 1) -> Optional[int]:
    """Number of rounds from ``start_round`` until all awake nodes are decided.

    Returns ``None`` when the trace ends before completion (the caller should
    treat this as a censored observation, not as a huge value).
    """
    done = first_round_all_decided(trace, start_round=start_round)
    if done is None:
        return None
    return done - start_round + 1


def completion_round_for_nodes(
    trace: ExecutionTrace, nodes: Iterable[NodeId], *, start_round: int = 1
) -> Optional[int]:
    """First round from which on every node in ``nodes`` is decided."""
    node_list = list(nodes)
    for r in range(start_round, trace.num_rounds + 1):
        outputs = trace.outputs(r)
        if all(outputs.get(v) is not None for v in node_list):
            return r
    return None
