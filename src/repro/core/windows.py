"""Window-size defaults.

The paper's analyses give ``T ∈ O(log n)`` with large worst-case constants
(e.g. ``T2 = 64·(b+1)·ln n`` in Lemma 4.4); those constants are artifacts of
the union-bound style proofs, not of the algorithms, whose empirical
convergence is a small multiple of ``log₂ n`` (experiments E1/E7 measure it).
For the experiments we therefore use a *practical* default window

    ``T(n) = max(minimum, ceil(multiplier · log₂(max(n, 2))) + additive)``

with ``multiplier = 4`` and ``additive = 4`` — comfortably above every
empirically observed convergence time at the evaluated sizes while still
``Θ(log n)``.  Every experiment that depends on the window size exposes it as
a parameter, and EXPERIMENTS.md records both the default and the measured
convergence times so the slack is visible.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["default_window", "window_for"]

#: Default multiplier of ``log2 n`` in the practical window size.
DEFAULT_MULTIPLIER = 4.0
#: Default additive slack.
DEFAULT_ADDITIVE = 4
#: Default lower bound on any window.
DEFAULT_MINIMUM = 8


def default_window(
    n: int,
    *,
    multiplier: float = DEFAULT_MULTIPLIER,
    additive: int = DEFAULT_ADDITIVE,
    minimum: int = DEFAULT_MINIMUM,
) -> int:
    """Practical ``Θ(log n)`` window size used throughout the experiments."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if multiplier <= 0:
        raise ConfigurationError(f"multiplier must be > 0, got {multiplier}")
    value = int(math.ceil(multiplier * math.log2(max(n, 2)))) + int(additive)
    return max(int(minimum), value)


def window_for(n: int, scale: float = 1.0) -> int:
    """Scaled variant of :func:`default_window` (scale < 1 for stress tests)."""
    return max(2, int(round(default_window(n) * scale)))
