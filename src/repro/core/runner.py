"""High-level one-call helpers for running framework algorithms.

These wrap the common pattern "build a Concat of the right SAlg/DAlg pair for
problem X, run it against adversary Y for R rounds, and hand back the trace
plus validity statistics" so examples and experiments stay short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.types import Assignment
from repro.dynamics.adversary import Adversary
from repro.problems.dynamic_problem import TDynamicSpec
from repro.problems.packing_covering import ProblemPair
from repro.runtime.simulator import _UNSET, _merge_deprecated_input, run_simulation
from repro.runtime.trace import ExecutionTrace
from repro.core.concat import Concat
from repro.core.interfaces import DynamicAlgorithm, NetworkStaticAlgorithm
from repro.core.windows import default_window

__all__ = ["CombinedRunResult", "run_combined", "run_dynamic_problem"]


@dataclass(frozen=True)
class CombinedRunResult:
    """Trace plus T-dynamic validity summary of one combined-algorithm run."""

    trace: ExecutionTrace
    window: int
    pair: ProblemPair
    validity: Dict[str, float]

    @property
    def valid_fraction(self) -> float:
        """Fraction of rounds whose output was a valid T-dynamic solution."""
        return self.validity.get("valid_fraction", float("nan"))


def run_combined(
    *,
    n: int,
    static_factory: Callable[[], NetworkStaticAlgorithm],
    dynamic_factory: Callable[[], DynamicAlgorithm],
    adversary: Adversary,
    rounds: int,
    seed: int = 0,
    window: Optional[int] = None,
    input_assignment: Optional[Assignment] = None,
    input=_UNSET,
) -> CombinedRunResult:
    """Run ``Concat(SAlg, DAlg)`` against ``adversary`` and summarise validity.

    The removed ``input`` keyword (superseded by ``input_assignment``) is
    still declared so stale call sites get the loud
    :class:`~repro.errors.ConfigurationError` instead of a ``TypeError``.
    """
    T1 = window if window is not None else default_window(n)
    algorithm = Concat(static_factory, dynamic_factory, T1)
    trace = run_simulation(
        n=n,
        algorithm=algorithm,
        adversary=adversary,
        rounds=rounds,
        seed=seed,
        input_assignment=_merge_deprecated_input(input_assignment, input),
    )
    pair = algorithm.problem_pair()
    spec = TDynamicSpec(pair, T1)
    return CombinedRunResult(
        trace=trace,
        window=T1,
        pair=pair,
        validity=spec.validity_summary(trace),
    )


def run_dynamic_problem(
    *,
    n: int,
    algorithm,
    pair: ProblemPair,
    adversary: Adversary,
    rounds: int,
    seed: int = 0,
    window: Optional[int] = None,
    input_assignment: Optional[Assignment] = None,
    input=_UNSET,
) -> CombinedRunResult:
    """Run any algorithm (combined, baseline or ablation) and summarise T-dynamic validity.

    Unlike :func:`run_combined` this does not construct the algorithm — it is
    the entry point the baseline-comparison experiment (E9) uses so baselines
    are judged by exactly the same checker as the framework algorithms.
    """
    T = window if window is not None else default_window(n)
    trace = run_simulation(
        n=n,
        algorithm=algorithm,
        adversary=adversary,
        rounds=rounds,
        seed=seed,
        input_assignment=_merge_deprecated_input(input_assignment, input),
    )
    spec = TDynamicSpec(pair, T)
    return CombinedRunResult(
        trace=trace,
        window=T,
        pair=pair,
        validity=spec.validity_summary(trace),
    )
