"""Abstract roles of the framework's two algorithm types (Definition 3.3).

A **T-dynamic algorithm** ``DAlg`` for a pair ``(P, C)`` must be

* A.1 (*input-extending*): its output is always an extension of its input
  vector — it never deletes or changes a value that was already decided;
* A.2 (*finalizing*): started on a partial solution for ``G_j``, after
  ``T - 1`` further rounds its output is a solution of ``P`` on ``G^{T∩}`` and
  of ``C`` on ``G^{T∪}``.

A **(T, α)-network-static algorithm** ``SAlg`` must

* B.1 (*partial solution*): output a partial solution for ``(P, C)`` on the
  *current* graph ``G_r`` at the end of every round;
* B.2 (*locally static*): whenever the α-neighbourhood of a node is static
  over an interval ``[r, r2]``, output a fixed non-⊥ value for that node
  throughout ``[r + T, r2]``.

These are behavioural contracts — they cannot be enforced by the type system,
so the classes below only carry the metadata (window size, locality radius,
problem pair) and the shared plumbing; the contracts themselves are verified
empirically on traces by :mod:`repro.core.properties` and by the test-suite.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import DistributedAlgorithm
from repro.core.windows import default_window

__all__ = ["DynamicAlgorithm", "NetworkStaticAlgorithm"]


class DynamicAlgorithm(DistributedAlgorithm):
    """Base class for ``T``-dynamic algorithms (properties A.1 / A.2)."""

    #: Locality radius is not relevant for dynamic algorithms, but the paper's
    #: window parameter T is: subclasses report their practical window via
    #: :meth:`window`.
    name = "dynamic-algorithm"

    @abstractmethod
    def problem_pair(self) -> ProblemPair:
        """The packing/covering pair this algorithm solves."""

    def window(self, n: int) -> int:
        """The practical window size ``T(n)`` for which A.2 empirically holds.

        Defaults to :func:`repro.core.windows.default_window`; subclasses with
        different constants override this.
        """
        return default_window(n)


class NetworkStaticAlgorithm(DistributedAlgorithm):
    """Base class for ``(T, α)``-network-static algorithms (properties B.1 / B.2)."""

    name = "network-static-algorithm"

    #: The locality radius α in property B.2 (both paper algorithms use α = 2).
    alpha: int = 2

    @abstractmethod
    def problem_pair(self) -> ProblemPair:
        """The packing/covering pair this algorithm solves."""

    def window(self, n: int) -> int:
        """The practical stabilisation time ``T(n)`` of property B.2."""
        return default_window(n)
